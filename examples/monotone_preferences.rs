//! Beyond linear preferences: the paper's model admits *any* monotone
//! scoring function (§II). This example matches users with non-linear
//! utilities — maximin fairness, Cobb–Douglas, and power-law emphasis —
//! against the same inventory, using the generalized skyline-based
//! matcher.
//!
//! ```text
//! cargo run --release --example monotone_preferences
//! ```

use mpq::core::monotone::{
    reference_monotone_matching, CobbDouglas, MinAttribute, MonotoneFunction,
    MonotoneSkylineMatcher, WeightedPower,
};
use mpq::datagen::objects::independent;

fn main() {
    // 20,000 apartments scored on (space, location, condition).
    let apartments = independent(20_000, 3, 77);

    // Six tenants with structurally different utilities.
    let balanced = MinAttribute; // "my worst attribute decides"
    let space_power = WeightedPower {
        weights: vec![0.8, 0.1, 0.1],
        k: 2.0, // strongly rewards outstanding space
    };
    let location_power = WeightedPower {
        weights: vec![0.1, 0.8, 0.1],
        k: 2.0,
    };
    let cobb = CobbDouglas {
        exponents: vec![0.4, 0.4, 0.2],
        epsilon: 1e-3, // classic diminishing-returns utility
    };
    let sqrt_mix = |p: &[f64]| 0.5 * p[0].sqrt() + 0.3 * p[1].sqrt() + 0.2 * p[2].sqrt();
    let linearish = |p: &[f64]| 0.2 * p[0] + 0.3 * p[1] + 0.5 * p[2];

    let names = [
        "maximin (balanced)",
        "space^2 enthusiast",
        "location^2 enthusiast",
        "cobb-douglas",
        "sqrt-mix (risk averse)",
        "linear",
    ];
    let tenants: Vec<&dyn MonotoneFunction> = vec![
        &balanced,
        &space_power,
        &location_power,
        &cobb,
        &sqrt_mix,
        &linearish,
    ];

    let matching = MonotoneSkylineMatcher {
        multi_pair: true,
        ..Default::default()
    }
    .run(&apartments, &tenants);

    println!("stable assignment over {} apartments:", apartments.len());
    for pair in matching.pairs() {
        let apt = apartments.get(pair.oid as usize);
        println!(
            "  {:<24} -> apartment {:>5} (space {:.2}, location {:.2}, condition {:.2}; \
             utility {:.4})",
            names[pair.fid as usize], pair.oid, apt[0], apt[1], apt[2], pair.score
        );
    }
    let met = matching.metrics();
    println!(
        "\n{} loops, {} physical page accesses, {:.3}s",
        met.loops,
        met.io.physical(),
        met.elapsed.as_secs_f64()
    );

    // exactness check against the quadratic reference
    let expect = reference_monotone_matching(&apartments, &tenants);
    let mut got: Vec<(u32, u64)> = matching.pairs().iter().map(|p| (p.fid, p.oid)).collect();
    let mut want: Vec<(u32, u64)> = expect.iter().map(|p| (p.fid, p.oid)).collect();
    got.sort_unstable();
    want.sort_unstable();
    assert_eq!(got, want);
    println!("matches the exhaustive reference ✓");
}
