//! The paper's motivating scenario at booking-site scale: thousands of
//! users simultaneously searching for hotel rooms, where room *types*
//! have limited inventory (the capacity extension of `mpq-core`).
//!
//! ```text
//! cargo run --release --example hotel_booking
//! ```

use mpq::core::capacity::{verify_capacity_stable, CapacityMatching};
use mpq::core::Engine;
use mpq::datagen::functions::skewed_weights;
use mpq::datagen::objects::clustered;

fn main() {
    // 2,000 room types across ~40 hotels (clusters in attribute space:
    // rooms of one hotel resemble each other). Attributes: size, price
    // attractiveness, beach distance attractiveness, rating.
    let n_room_types = 2_000;
    let rooms = clustered(n_room_types, 4, 40, 42);

    // Each room type has 1–8 physical rooms.
    let capacities: Vec<u32> = (0..n_room_types).map(|i| 1 + (i as u32 * 7) % 8).collect();
    let total_inventory: u32 = capacities.iter().sum();

    // 5,000 users; most shoppers care predominantly about one attribute
    // (price hunters, beach lovers, ...), which `skewed_weights` models.
    let users = skewed_weights(5_000, 4, 7);

    println!(
        "inventory: {n_room_types} room types, {total_inventory} rooms; demand: {} users",
        users.n_alive()
    );

    let engine = Engine::builder().objects(&rooms).build().unwrap();
    let matching = engine
        .request(&users)
        .capacities(&capacities)
        .evaluate()
        .unwrap();
    let result = CapacityMatching::from_matching(matching);

    println!(
        "assigned {} users in {} loops ({:.2}s matching, {} physical I/Os)",
        result.pairs.len(),
        result.metrics.loops,
        result.metrics.elapsed.as_secs_f64(),
        result.metrics.io.physical(),
    );

    // How contended was the inventory?
    let mut fill: Vec<(u64, usize, u32)> = result
        .residents
        .iter()
        .map(|(&oid, fids)| (oid, fids.len(), capacities[oid as usize]))
        .collect();
    fill.sort_by_key(|&(_, n, _)| std::cmp::Reverse(n));
    println!("\nmost contended room types:");
    for (oid, n, cap) in fill.iter().take(5) {
        println!("  room type {oid:>5}: {n}/{cap} rooms booked");
    }

    let full: usize = fill.iter().filter(|&&(_, n, c)| n == c as usize).count();
    println!(
        "\n{} room types fully booked; {} users served of {} rooms available",
        full,
        result.pairs.len(),
        total_inventory
    );

    // The assignment is provably fair: no user and no hotel would both
    // prefer a different pairing.
    verify_capacity_stable(&rooms, &users, &capacities, &result.pairs)
        .expect("assignment must be stable");
    println!("stability verified ✓");
}
