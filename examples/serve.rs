//! End-to-end serving: a long-lived [`EngineService`] fed by concurrent
//! clients, the way a network front-end would drive the engine.
//!
//! The paper's deployment (§I) is a reservation site where preference
//! batches arrive *continuously*. Instead of pre-collecting them into
//! synchronous `evaluate_batch` calls, this example spawns a worker pool
//! over one shared engine and has several producer threads stream
//! requests in — with deadlines, one cancellation, deliberate
//! backpressure, and a graceful drain at the end.
//!
//! ```text
//! cargo run --release --example serve
//! ```

use std::sync::Arc;
use std::time::Duration;

use mpq::core::{Algorithm, ServiceConfig, SubmitOptions};
use mpq::datagen::{Distribution, WorkloadBuilder};
use mpq::prelude::*;

fn main() {
    // One shared inventory: 50k objects, indexed exactly once.
    let w = WorkloadBuilder::new()
        .objects(50_000)
        .functions(1)
        .dim(3)
        .distribution(Distribution::Independent)
        .seed(2009)
        .build();
    let engine = Arc::new(
        Engine::builder()
            .objects(&w.objects)
            .buffer_shards(4)
            .build()
            .expect("generated objects are valid"),
    );
    println!(
        "engine: {} objects, {} pages",
        engine.n_objects(),
        engine.tree().page_count()
    );

    // The blessed serving entry point: a worker pool behind a bounded
    // submission queue. Queue depth 32 + block backpressure = natural
    // rate limiting for in-process producers.
    let service = engine
        .clone()
        .serve(ServiceConfig::default().workers(4).queue_capacity(32));
    println!("service: {} workers", service.workers());

    // Three front-end threads, each streaming its own request mix.
    let producers: Vec<_> = (0..3)
        .map(|p| {
            let client = service.client();
            std::thread::spawn(move || {
                let algo = [Algorithm::Sb, Algorithm::BruteForce, Algorithm::Chain][p % 3];
                let mut confirmed = 0usize;
                for i in 0..8u64 {
                    let functions = WorkloadBuilder::new()
                        .objects(1)
                        .functions(40)
                        .dim(3)
                        .seed(1_000 * p as u64 + i)
                        .build()
                        .functions;
                    // Every request carries a deadline: evaluation must
                    // *start* within a second of submission.
                    let ticket = client
                        .submit_with(
                            client.engine().request(&functions).algorithm(algo),
                            SubmitOptions::default().deadline(Duration::from_secs(1)),
                        )
                        .expect("service is accepting");
                    match ticket.wait() {
                        Ok(matching) => confirmed += matching.len(),
                        Err(MpqError::DeadlineExceeded) => {
                            println!("producer {p}: request {i} expired in the queue")
                        }
                        Err(e) => panic!("unexpected service error: {e}"),
                    }
                }
                (p, algo, confirmed)
            })
        })
        .collect();

    // Meanwhile: submit one more request and cancel it — a user closed
    // the tab. A winning cancel resolves the ticket to MpqError::Cancelled.
    let client = service.client();
    let regret = WorkloadBuilder::new()
        .objects(1)
        .functions(25)
        .dim(3)
        .seed(99)
        .build()
        .functions;
    let ticket = client.submit(client.engine().request(&regret)).unwrap();
    if ticket.cancel() {
        assert!(matches!(ticket.wait(), Err(MpqError::Cancelled)));
        println!("cancelled one request before a worker reached it");
    } else {
        // The pool was faster than our regret; the result just arrives.
        let matching = ticket.wait().unwrap();
        println!("cancel lost the race; {} pairs anyway", matching.len());
    }

    for producer in producers {
        let (p, algo, confirmed) = producer.join().unwrap();
        println!("producer {p} ({algo}): {confirmed} assignments confirmed");
    }

    // Repeat-heavy traffic: the same search form submitted over and
    // over. The first submission evaluates; every identical one after
    // it is a cache hit (or an in-flight dedupe attach) — bit-identical
    // result, no second evaluation.
    let popular = WorkloadBuilder::new()
        .objects(1)
        .functions(40)
        .dim(3)
        .seed(7_777)
        .build()
        .functions;
    let evals_before = engine.evaluation_count();
    let first = client
        .submit(client.engine().request(&popular))
        .unwrap()
        .wait()
        .unwrap();
    for _ in 0..9 {
        let repeat = client
            .submit(client.engine().request(&popular))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(repeat.sorted_pairs(), first.sorted_pairs());
    }
    let m = client.metrics();
    println!(
        "popular request x10: {} evaluation(s), {} cache hits, {} attaches (hit rate {:.0}%)",
        engine.evaluation_count() - evals_before,
        m.cache.hits,
        m.cache.attaches,
        m.cache.hit_rate() * 100.0
    );

    // Graceful shutdown: drains anything still queued, joins workers.
    // Snapshotting after the drain makes the queue/in-flight gauges
    // deterministically zero (clients stay usable for metrics).
    service.shutdown();
    println!(
        "--- service metrics (after drain) ---\n{}",
        client.metrics()
    );
    println!("service drained and stopped");
}
