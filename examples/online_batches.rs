//! Online operation: preference-query batches arriving over time
//! against a persistent inventory — the paper's motivating deployment.
//! The R-tree and the incrementally-maintained skyline live across
//! batches, so each batch pays only for its own matching plus the
//! skyline maintenance its reservations cause.
//!
//! ```text
//! cargo run --release --example online_batches
//! ```

use mpq::core::Engine;
use mpq::datagen::functions::uniform_weights;
use mpq::datagen::objects::independent;

fn main() {
    // Monday morning: 200,000 rooms are listed. The engine validates
    // the inventory and builds the index exactly once.
    let inventory = independent(200_000, 4, 11);
    let engine = Engine::builder().objects(&inventory).build().unwrap();
    println!(
        "inventory indexed: {} objects, {} pages",
        inventory.len(),
        engine.tree().page_count()
    );

    let mut session = engine.session();
    println!(
        "initial skyline: {} objects ({} page reads)\n",
        session.skyline_len(),
        session.io_stats().physical_reads
    );

    // Batches of users arrive through the day.
    for (hour, batch_size) in [(9, 800), (11, 1_500), (14, 2_500), (18, 4_000), (21, 1_200)] {
        let batch = uniform_weights(batch_size, 4, hour as u64);
        let result = session.submit(&batch).unwrap();
        let met = result.metrics();
        println!(
            "{hour:>2}:00  {batch_size:>5} users -> {:>5} rooms reserved \
             ({:>6.3}s, {:>5} physical I/Os, {:>4} loops, skyline now {:>4}, \
             {} rooms left)",
            result.len(),
            met.elapsed.as_secs_f64(),
            met.io.physical(),
            met.loops,
            session.skyline_len(),
            session.objects_remaining(),
        );
    }

    println!(
        "\nday's total: {} batches, {} rooms reserved, {} remaining",
        session.batches_processed(),
        inventory.len() as u64 - session.objects_remaining(),
        session.objects_remaining()
    );
}
