//! Progressive evaluation: the paper's algorithms are *progressive* —
//! stable pairs are reported as soon as they are identified, so a
//! booking site can confirm the luckiest users immediately while the
//! rest of the batch is still being matched.
//!
//! This example streams pairs out of [`mpq::core::SbStream`] and shows
//! how much of the answer is available after reading only a fraction of
//! the object index.
//!
//! ```text
//! cargo run --release --example progressive
//! ```

use std::time::Instant;

use mpq::core::Engine;
use mpq::datagen::{Distribution, WorkloadBuilder};

fn main() {
    let w = WorkloadBuilder::new()
        .objects(100_000)
        .functions(2_000)
        .dim(4)
        .distribution(Distribution::Independent)
        .seed(5)
        .build();

    let engine = Engine::builder().objects(&w.objects).build().unwrap();
    println!(
        "index: {} pages over {} objects; buffer {} pages",
        engine.tree().page_count(),
        w.objects.len(),
        engine.tree().buffer_capacity()
    );

    let start = Instant::now();
    let mut stream = engine.stream(&w.functions).unwrap();

    let mut emitted = 0usize;
    let checkpoints = [1usize, 10, 100, 500, 1000, 2000];
    let mut next_cp = 0;
    while let Some(pair) = stream.next() {
        emitted += 1;
        if next_cp < checkpoints.len() && emitted == checkpoints[next_cp] {
            let io = stream.metrics().io;
            println!(
                "after {:>6.3}s: {:>5} pairs confirmed (last score {:.4}), \
                 {:>5} physical reads, skyline holds {:>4} objects, {:>4} users waiting",
                start.elapsed().as_secs_f64(),
                emitted,
                pair.score,
                io.physical_reads,
                stream.skyline_len(),
                stream.unassigned_functions()
            );
            next_cp += 1;
        }
    }
    let met = stream.into_metrics();
    println!(
        "\ndone: {} pairs in {:.3}s, {} loops, {} physical page reads total",
        emitted,
        start.elapsed().as_secs_f64(),
        met.loops,
        met.io.physical_reads
    );
}
