//! Real-estate matching on the Zillow-style surrogate dataset: 50,000
//! listings with realistic skew (bedrooms, bathrooms, living area,
//! price, lot), matched against 2,000 simultaneous buyers. Compares all
//! three algorithms of the paper on the same workload and prints a few
//! example assignments in raw units.
//!
//! ```text
//! cargo run --release --example real_estate
//! ```

use mpq::core::{Algorithm, Engine};
use mpq::datagen::functions::uniform_weights;
use mpq::datagen::{record_to_preference, zillow_records};
use mpq::rtree::PointSet;

fn main() {
    let n_listings = 50_000;
    let n_buyers = 2_000;

    let records = zillow_records(n_listings, 1234);
    let mut listings = PointSet::new(5);
    for r in &records {
        listings.push(&record_to_preference(r));
    }
    // attribute order: bathrooms, bedrooms, living, cheapness, lot
    let buyers = uniform_weights(n_buyers, 5, 99);

    println!("{n_listings} listings, {n_buyers} simultaneous buyers\n");
    // One engine, one index build — all three algorithms share it.
    let engine = Engine::builder().objects(&listings).build().unwrap();
    let algorithms = [Algorithm::Sb, Algorithm::BruteForce, Algorithm::Chain];

    let mut reference: Option<Vec<(u32, u64)>> = None;
    for algo in algorithms {
        let result = engine.request(&buyers).algorithm(algo).evaluate().unwrap();
        let met = result.metrics();
        println!(
            "{:<12} {:>9} physical I/Os, {:>8.3}s CPU, {} pairs",
            algo.name(),
            met.io.physical(),
            met.elapsed.as_secs_f64(),
            result.len()
        );
        let pairs: Vec<(u32, u64)> = result
            .sorted_pairs()
            .iter()
            .map(|p| (p.fid, p.oid))
            .collect();
        match &reference {
            None => {
                // show the three best-served buyers
                println!("\n  top assignments:");
                for p in result.pairs().iter().take(3) {
                    let r = &records[p.oid as usize];
                    let w = buyers.weights(p.fid);
                    println!(
                        "    buyer {:>4} (weights bath/bed/area/cheap/lot = \
                         {:.2}/{:.2}/{:.2}/{:.2}/{:.2})",
                        p.fid, w[0], w[1], w[2], w[3], w[4]
                    );
                    println!(
                        "      -> listing {:>5}: {} bd / {} ba, {:>5.0} sqft on {:>6.0} sqft, \
                         ${:>9.0}  (score {:.3})",
                        p.oid, r.bedrooms, r.bathrooms, r.living_sqft, r.lot_sqft, r.price, p.score
                    );
                }
                println!();
                reference = Some(pairs);
            }
            Some(expect) => {
                assert_eq!(&pairs, expect, "{} diverged from SB", algo.name());
            }
        }
    }
    println!("\nall three algorithms produced the identical stable matching ✓");
}
