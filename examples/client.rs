//! The network loop end to end, in one process: start a two-tenant
//! [`mpq::net::Server`] on a loopback port, then talk to it over a real
//! socket with the bundled [`mpq::net::HttpClient`] — match requests,
//! load shedding with `Retry-After`, and the `/metrics` endpoint.
//!
//! In production the two halves are separate processes: the server side
//! of this file is `mpq serve --listen 0.0.0.0:8080 --tenant ...`, and
//! the client side is any HTTP client (`curl` included).
//!
//! ```text
//! cargo run --release --example client
//! ```

use std::thread;

use mpq::core::json::Json;
use mpq::net::decode_pairs;
use mpq::prelude::*;

fn main() {
    // --- server side -----------------------------------------------------
    // Two inventories behind one listener. Each tenant owns its own
    // service (queue, workers, cache): "hotels" is a normal tenant,
    // "kiosk" is deliberately tiny — one worker, a two-slot queue, no
    // cache — so we can watch it shed load later.
    let hotels = WorkloadBuilder::new()
        .objects(2_000)
        .functions(1)
        .dim(3)
        .distribution(Distribution::Independent)
        .seed(2009)
        .build();
    let kiosk = WorkloadBuilder::new()
        .objects(4_000)
        .functions(1)
        .dim(3)
        .distribution(Distribution::Independent)
        .seed(777)
        .build();

    let mut registry = TenantRegistry::new();
    registry
        .add_objects("hotels", &hotels.objects, TenantConfig::default())
        .expect("hotels tenant");
    registry
        .add_objects(
            "kiosk",
            &kiosk.objects,
            TenantConfig {
                workers: 1,
                queue_capacity: 2,
                cache_capacity: 0,
                ..TenantConfig::default()
            },
        )
        .expect("kiosk tenant");
    let server = Server::bind("127.0.0.1:0", registry, ServerConfig::default()).expect("bind");
    let addr = server.local_addr();
    println!("serving 2 tenants on http://{addr}");

    // --- client side -----------------------------------------------------
    // A matching over the wire: POST raw weight rows, get pairs back.
    // JSON numbers render in shortest-roundtrip form, so the scores are
    // bit-identical to a direct `engine.request(..).evaluate()`.
    let mut client = HttpClient::connect(addr).expect("connect");
    let body = r#"{"functions":[[0.7,0.2,0.1],[0.1,0.3,0.6],[0.4,0.3,0.3]]}"#;
    let resp = client.post_json("/t/hotels/match", body).expect("match");
    assert_eq!(resp.status, 200, "{}", resp.text());
    let pairs = decode_pairs(&resp.body).expect("pairs");
    println!("\nPOST /t/hotels/match -> {} pairs", pairs.len());
    for p in &pairs {
        println!(
            "  user {} gets hotel {} (score {:.4})",
            p.fid, p.oid, p.score
        );
    }

    // Flood the kiosk tenant from a few threads. Its two-slot queue
    // fills and the excess answers `429 Too Many Requests` with a
    // `Retry-After` estimate — load shedding, not a stalled socket.
    // The hotels tenant is completely unaffected (own queue, own
    // workers): that is the multi-tenant isolation contract.
    let mut floods = Vec::new();
    for t in 0..4u64 {
        floods.push(thread::spawn(move || {
            let mut client = HttpClient::connect(addr).expect("connect flood");
            let (mut served, mut shed) = (0u32, 0u32);
            let mut retry_after = None;
            for i in 0..25u64 {
                // Distinct `exclude` values defeat in-flight dedupe so
                // every request really occupies a queue slot.
                let body = format!(
                    r#"{{"functions":[[0.5,0.3,0.2]],"algorithm":"bf","exclude":[{}]}}"#,
                    1_000_000 + t * 1_000 + i
                );
                let resp = client.post_json("/t/kiosk/match", &body).expect("flood");
                match resp.status {
                    200 => served += 1,
                    429 => {
                        shed += 1;
                        retry_after = resp.header("retry-after").map(str::to_string);
                    }
                    s => panic!("unexpected status {s}: {}", resp.text()),
                }
            }
            (served, shed, retry_after)
        }));
    }
    let (mut served, mut shed, mut retry_after) = (0, 0, None);
    for f in floods {
        let (ok, dropped, ra) = f.join().expect("flood thread");
        served += ok;
        shed += dropped;
        retry_after = ra.or(retry_after);
    }
    println!("\nflooded /t/kiosk/match: {served} served, {shed} shed with 429");
    if let Some(ra) = retry_after {
        println!("  last 429 said Retry-After: {ra}s");
    }

    // Metrics for every tenant, one JSON document.
    let resp = client.get("/metrics").expect("metrics");
    let doc = Json::parse(&resp.text()).expect("metrics json");
    println!(
        "\nGET /metrics (schema {:?}):",
        doc.get("schema").unwrap().as_str().unwrap()
    );
    for name in ["hotels", "kiosk"] {
        let t = doc.get("tenants").unwrap().get(name).unwrap();
        let n = |k: &str| t.get(k).and_then(Json::as_f64).unwrap_or(0.0);
        println!(
            "  {name:<7} completed={:<4} rejected={:<4} p50={:.2}ms",
            n("completed"),
            n("rejected"),
            n("latency_p50_ms"),
        );
    }

    server.shutdown(); // drains connections; Drop would do the same
    println!("\nserver drained and stopped.");
}
