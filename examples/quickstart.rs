//! Quickstart: match a handful of users against a handful of hotel
//! rooms and print the stable assignment.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mpq::prelude::*;

fn main() {
    // Six rooms, each scored on (size, cheapness, beach proximity),
    // larger is better, all in [0, 1].
    let rooms = [
        ("Grand Suite", [0.95, 0.10, 0.80]),
        ("Budget Single", [0.20, 0.95, 0.30]),
        ("Sea-View Double", [0.60, 0.40, 0.95]),
        ("Garden Double", [0.55, 0.60, 0.40]),
        ("Attic Single", [0.30, 0.80, 0.20]),
        ("Family Room", [0.85, 0.35, 0.50]),
    ];
    let mut objects = PointSet::new(3);
    for (_, attrs) in &rooms {
        objects.push(attrs);
    }

    // Four users with different priorities. Weights are normalized
    // automatically (they express relative importance).
    let users = [
        ("Ana (space!)", vec![0.7, 0.1, 0.2]),
        ("Boris (cheap!)", vec![0.1, 0.8, 0.1]),
        ("Chloé (beach!)", vec![0.1, 0.2, 0.7]),
        ("Dmitri (balanced)", vec![1.0, 1.0, 1.0]),
    ];
    let functions =
        FunctionSet::from_rows(3, &users.iter().map(|(_, w)| w.clone()).collect::<Vec<_>>());

    // Build the engine once: it validates the inventory and bulk-loads
    // the object R-tree. Every request below shares that index.
    let engine = Engine::builder().objects(&objects).build().unwrap();

    // The paper's skyline-based matcher (the default algorithm).
    let matching = engine.request(&functions).evaluate().unwrap();

    println!("stable assignment (in order of decreasing score):");
    for pair in matching.pairs() {
        println!(
            "  {:<18} -> {:<16} (score {:.3})",
            users[pair.fid as usize].0, rooms[pair.oid as usize].0, pair.score
        );
    }
    println!(
        "\n{} pairs, total welfare {:.3}, {} physical page accesses",
        matching.len(),
        matching.total_score(),
        matching.metrics().io.physical()
    );

    // Every algorithm produces the same assignment — and reuses the
    // same prepared index, no rebuild:
    let bf = engine
        .request(&functions)
        .algorithm(Algorithm::BruteForce)
        .evaluate()
        .unwrap();
    let chain = engine
        .request(&functions)
        .algorithm(Algorithm::Chain)
        .evaluate()
        .unwrap();
    assert_eq!(matching.sorted_pairs(), bf.sorted_pairs());
    assert_eq!(matching.sorted_pairs(), chain.sorted_pairs());
    println!("BruteForce and Chain agree with SB ✓");
}
