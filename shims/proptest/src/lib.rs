//! Offline stand-in for `proptest`, covering the API subset this
//! workspace's property tests use: the [`proptest!`] macro with an
//! optional `#![proptest_config(..)]` attribute, range / tuple /
//! [`collection::vec`] strategies, [`Strategy::prop_map`], `any::<T>()`
//! and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest, deliberately accepted for an
//! offline build: no shrinking (a failing case reports its case index
//! and message only) and a fixed per-test deterministic seed derived
//! from the test name, so failures reproduce exactly across runs.

use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// Deterministic generator driving all strategies; delegates to the
/// `rand` shim's `SmallRng` so the two shims share one RNG core.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// Seed deterministically from a test name.
    pub fn deterministic(name: &str) -> TestRng {
        // FNV-1a over the name selects the seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            inner: SmallRng::seed_from_u64(h),
        }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.inner.gen_range(0..bound)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }
}

/// Why a test case did not pass: a genuine failure or a rejected
/// (assumption-violating) input.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property does not hold; carries the failure message.
    Fail(String),
    /// The generated input violated a `prop_assume!`; retried silently.
    Reject(String),
}

impl TestCaseError {
    /// Construct a failure.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// Construct a rejection.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Per-proptest-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of an output type.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `f`, retrying generation. Unlike real
    /// proptest this does not track global rejection budgets; it panics
    /// after 1000 consecutive rejections (an over-restrictive filter is
    /// a test bug either way).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

/// Strategy adapter returned by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({}) rejected 1000 candidates in a row",
            self.whence
        );
    }
}

/// One boxed variant generator inside a [`Union`].
pub type UnionVariant<T> = Box<dyn Fn(&mut TestRng) -> T>;

/// Uniform choice among boxed strategies of one output type; built by
/// the [`prop_oneof!`] macro. Weights are not supported (the real
/// `w => strategy` syntax is not accepted by the shim's macro).
pub struct Union<T> {
    variants: Vec<UnionVariant<T>>,
}

impl<T> Union<T> {
    /// Wrap pre-boxed variant generators (used by [`prop_oneof!`]).
    pub fn new(variants: Vec<UnionVariant<T>>) -> Union<T> {
        assert!(!variants.is_empty(), "prop_oneof! needs at least one arm");
        Union { variants }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.variants.len() as u64) as usize;
        (self.variants[i])(rng)
    }
}

/// Choose uniformly among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        $crate::Union::new(vec![
            $(
                {
                    let s = $strategy;
                    Box::new(move |rng: &mut $crate::TestRng| $crate::Strategy::generate(&s, rng))
                        as Box<dyn Fn(&mut $crate::TestRng) -> _>
                }
            ),+
        ])
    }};
}

/// Strategy adapter returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )+};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        assert!(
            (self.end - self.start).is_finite(),
            "strategy range span overflows f64"
        );
        // lo + u*(hi-lo) can round up to exactly hi (probability ~2^-53
        // per draw); redraw to keep the half-open contract.
        loop {
            let v = self.start + rng.unit_f64() * (self.end - self.start);
            if v < self.end {
                return v;
            }
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty strategy range");
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // finite, sign-symmetric; adversarial NaN/inf cases are not part
        // of the contract these tests exercise
        (rng.unit_f64() - 0.5) * 2e12
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Default)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Number of elements a [`vec()`] strategy may produce.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for vectors whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Assert a condition inside a proptest body; returns a
/// [`TestCaseError::Fail`] instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
        let _ = r;
    }};
}

/// Reject the current case (input does not satisfy a precondition).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(format!(
                "assumption failed: {}",
                stringify!($cond)
            )));
        }
    };
}

/// Declare property tests. Mirrors proptest's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0u8..=6, v in proptest::collection::vec(any::<u64>(), 0..40)) {
///         prop_assert!(v.len() < 40 || x <= 6);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])+ fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )+ ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                let mut passed: u32 = 0;
                let mut rejected: u32 = 0;
                while passed < config.cases {
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $( let $pat = $crate::Strategy::generate(&($strat), &mut rng); )+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            assert!(
                                rejected <= config.cases.saturating_mul(16).max(1024),
                                "proptest '{}': too many rejected cases ({} rejects for {} passes)",
                                stringify!($name), rejected, passed
                            );
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest '{}' failed at case {}:\n{}",
                                stringify!($name), passed, msg
                            );
                        }
                    }
                }
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs((xs, flag) in (crate::collection::vec(0u8..=6, 1..50), any::<bool>())) {
            prop_assert!(!xs.is_empty() && xs.len() < 50);
            prop_assert!(xs.iter().all(|&x| x <= 6));
            let _ = flag;
        }

        #[test]
        fn map_and_assume(n in 1usize..40, f in -1e9f64..1e9) {
            prop_assume!(n != 13);
            let doubled = crate::Just(n).prop_map(|v| v * 2);
            let mut rng = TestRng::deterministic("inner");
            prop_assert_eq!(doubled.generate(&mut rng), n * 2);
            prop_assert!((-1e9..1e9).contains(&f));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let s = crate::collection::vec(0u32..=100, 5usize);
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
