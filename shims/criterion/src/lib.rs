//! Offline stand-in for `criterion`, covering the API subset the bench
//! targets use: `criterion_group!` / `criterion_main!` (both forms),
//! `Criterion::{benchmark_group, bench_function}`, groups with
//! `sample_size` / `warm_up_time` / `measurement_time` / `throughput` /
//! `bench_with_input`, and `Bencher::{iter, iter_batched}`.
//!
//! Measurement is a simple mean over `sample_size` timed iterations
//! after one warm-up call — enough to compare configurations locally;
//! it makes no statistical claims. Results print as
//! `bench <id> ... <mean>/iter` lines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle, passed to every bench function.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    #[allow(dead_code)]
    warm_up_time: Duration,
    #[allow(dead_code)]
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Set the warm-up duration (accepted for API compatibility).
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Set the measurement duration (accepted for API compatibility).
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Run a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; the shim times a fixed iteration
    /// count rather than a wall-clock budget.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility (see [`BenchmarkGroup::warm_up_time`]).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Record the per-iteration workload size (printed, not analyzed).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        let (n, unit) = match t {
            Throughput::Elements(n) => (n, "elements"),
            Throughput::Bytes(n) => (n, "bytes"),
        };
        eprintln!("bench group {}: throughput {n} {unit}/iter", self.name);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.label()),
            self.sample_size,
            f,
        );
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I, P, F>(&mut self, id: I, input: &P, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        P: ?Sized,
        F: FnMut(&mut Bencher, &P),
    {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.label()),
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A `function/parameter` id.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("?"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            function: Some(s.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId {
            function: Some(s),
            parameter: None,
        }
    }
}

/// How per-iteration workload size is expressed to [`BenchmarkGroup::throughput`].
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Items processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Strategy for amortizing setup cost in [`Bencher::iter_batched`];
/// the shim runs one setup per timed routine call regardless.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// Fresh state each iteration.
    PerIteration,
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    iterations: usize,
    total: Duration,
    timed: u64,
}

impl Bencher {
    /// Time `routine` for the configured number of iterations.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        black_box(routine()); // warm-up, untimed
        for _ in 0..self.iterations {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
            self.timed += 1;
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup is untimed.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up, untimed
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.timed += 1;
        }
    }
}

fn run_one<F>(id: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        iterations: sample_size,
        total: Duration::ZERO,
        timed: 0,
    };
    f(&mut b);
    if b.timed == 0 {
        eprintln!("bench {id:<50} (no timed iterations)");
        return;
    }
    let mean = b.total / b.timed as u32;
    eprintln!("bench {id:<50} {mean:>12.3?}/iter ({} iters)", b.timed);
}

/// Group bench functions, with or without an explicit config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3).throughput(Throughput::Elements(4));
        group.bench_function("iter", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::from_parameter(7usize), &7usize, |b, &n| {
            b.iter_batched(
                || vec![1u64; n],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    criterion_group!(plain, sample_bench);
    criterion_group! {
        name = configured;
        config = Criterion::default()
            .sample_size(2)
            .warm_up_time(std::time::Duration::from_millis(1))
            .measurement_time(std::time::Duration::from_millis(1));
        targets = sample_bench
    }

    #[test]
    fn both_group_forms_run() {
        plain();
        configured();
    }
}
