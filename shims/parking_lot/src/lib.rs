//! Offline stand-in for `parking_lot`: wraps `std::sync` primitives and
//! exposes the poison-free `lock()` signature the workspace relies on.
//! Poisoning is neutralized by unwrapping into the inner guard — a
//! panicked writer leaves data in a consistent-enough state for the
//! simulation (all guarded state here is plain counters and buffers).

use std::sync::PoisonError;

/// Mutual exclusion, `parking_lot`-style: `lock()` returns the guard
/// directly instead of a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock with the `parking_lot` signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap `value` in a new rwlock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the rwlock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(5usize);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }
}
