//! Offline stand-in for the `rand` crate, implementing the 0.8 API
//! subset this workspace uses: `Rng::{gen, gen_range, gen_bool}`,
//! `SeedableRng::seed_from_u64` and `rngs::SmallRng`.
//!
//! The container building this repository has no registry access, so
//! external crates are vendored as minimal shims (see `shims/`). The
//! generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! given a seed, which is all the datagen contract requires.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit word (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (the one constructor this workspace uses).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the "standard" distribution:
    /// uniform in `[0,1)` for floats, uniform over all values for
    /// integers and `bool`.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait StandardSample {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),+) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer sampling in `[0, bound)` via Lemire-style rejection.
fn uniform_below(rng: &mut (impl RngCore + ?Sized), bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // full u64 domain
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )+};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        assert!(
            (self.end - self.start).is_finite(),
            "gen_range: span overflows f64"
        );
        // lo + u*(hi-lo) can round up to exactly hi (probability ~2^-53
        // per draw); redraw to keep the half-open contract.
        loop {
            let u = f64::sample(rng);
            let v = self.start + u * (self.end - self.start);
            if v < self.end {
                return v;
            }
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        let u = f64::sample(rng);
        lo + u * (hi - lo)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // SplitMix64 expansion, as rand does for small seeds.
            let mut state = seed;
            let mut next = move || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let i = rng.gen_range(3..17usize);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(0.5..0.95);
            assert!((0.5..0.95).contains(&f));
            let k = rng.gen_range(0u8..=6);
            assert!(k <= 6);
        }
    }
}
