//! Offline stand-in for the `bytes` crate: the [`Buf`]/[`BufMut`]
//! cursor traits implemented over plain byte slices, which is how the
//! R-tree node codec consumes them. Reads and writes advance the slice
//! in place, so `let mut r = &page[..]` behaves as a cursor.

/// Sequential reader over a byte buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Read `n` bytes into `dst` and advance.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }
    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }
    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Sequential writer over a byte buffer.
pub trait BufMut {
    /// Bytes left to write.
    fn remaining_mut(&self) -> usize;
    /// Write all of `src` and advance.
    fn put_slice(&mut self, src: &[u8]);

    /// Write one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Write a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Write a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Write a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Write a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for &mut [u8] {
    fn remaining_mut(&self) -> usize {
        self.len()
    }

    fn put_slice(&mut self, src: &[u8]) {
        assert!(self.len() >= src.len(), "buffer overflow");
        let (head, tail) = std::mem::take(self).split_at_mut(src.len());
        head.copy_from_slice(src);
        *self = tail;
    }
}

impl BufMut for Vec<u8> {
    fn remaining_mut(&self) -> usize {
        usize::MAX - self.len()
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut};

    #[test]
    fn roundtrip_through_slice_cursor() {
        let mut page = [0u8; 32];
        let mut w = &mut page[..];
        w.put_u8(7);
        w.put_u16_le(513);
        w.put_u32_le(70_000);
        w.put_u64_le(1 << 40);
        w.put_f64_le(-0.25);

        let mut r = &page[..];
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 513);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_f64_le(), -0.25);
        assert_eq!(r.remaining(), 32 - 1 - 2 - 4 - 8 - 8);
    }
}
