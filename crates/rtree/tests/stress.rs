//! Stress and property tests for the R-tree substrate beyond the
//! per-module unit tests: codec round-trips over arbitrary values,
//! pathological buffer capacities, minimum-fanout pages, and large
//! mixed-operation sequences.

use proptest::prelude::*;

use mpq_rtree::node::{InnerNode, LeafNode, Node};
use mpq_rtree::pager::PageId;
use mpq_rtree::{PointSet, RTree, RTreeParams};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn leaf_codec_roundtrip(
        rows in proptest::collection::vec(
            (proptest::collection::vec(-1e9f64..1e9, 3), any::<u64>()),
            0..40,
        )
    ) {
        let mut leaf = LeafNode::new(3);
        for (p, oid) in &rows {
            leaf.push(p, *oid);
        }
        let node = Node::Leaf(leaf);
        let mut page = vec![0u8; node.encoded_len()];
        node.encode(&mut page);
        prop_assert_eq!(Node::decode(3, &page), node);
    }

    #[test]
    fn inner_codec_roundtrip(
        rows in proptest::collection::vec(
            (
                proptest::collection::vec(0f64..1.0, 2),
                proptest::collection::vec(0f64..1.0, 2),
                any::<u32>(),
            ),
            0..40,
        ),
        level in 1u8..10,
    ) {
        let mut inner = InnerNode::new(2, level);
        for (lo, hi, child) in &rows {
            // normalize so lo <= hi
            let l: Vec<f64> = lo.iter().zip(hi.iter()).map(|(&a, &b)| a.min(b)).collect();
            let h: Vec<f64> = lo.iter().zip(hi.iter()).map(|(&a, &b)| a.max(b)).collect();
            inner.push(&l, &h, PageId(*child));
        }
        let node = Node::Inner(inner);
        let mut page = vec![0u8; node.encoded_len()];
        node.encode(&mut page);
        prop_assert_eq!(Node::decode(2, &page), node);
    }
}

fn seeded_points(n: usize, dim: usize, seed: u64) -> PointSet {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut ps = PointSet::with_capacity(dim, n);
    for _ in 0..n {
        let p: Vec<f64> = (0..dim).map(|_| next()).collect();
        ps.push(&p);
    }
    ps
}

#[test]
fn buffer_capacity_one_still_correct() {
    // every access evicts: maximal thrash, identical results
    let ps = seeded_points(2_000, 2, 1);
    let tree = RTree::bulk_load(
        &ps,
        RTreeParams {
            page_size: 512,
            min_fill_ratio: 0.4,
            buffer_capacity: 1,
        },
    );
    tree.check_invariants();
    let hits = tree.top_k(&[0.5, 0.5], 50);
    assert_eq!(hits.len(), 50);
    assert!(hits.windows(2).all(|w| w[0].score >= w[1].score));
    let io = tree.io_stats();
    assert!(
        io.physical_reads as f64 > io.logical as f64 * 0.9,
        "capacity-1 buffer should miss almost always"
    );
}

#[test]
fn minimum_fanout_page_size_works() {
    // page so small that nodes hold only a handful of entries: maximal
    // height, splits and condenses everywhere
    let ps = seeded_points(500, 2, 2);
    let tree = RTree::new(
        2,
        RTreeParams {
            page_size: 128, // leaf cap (128-8)/24 = 5, inner cap (128-8)/36 = 3
            min_fill_ratio: 0.4,
            buffer_capacity: 64,
        },
    );
    for (i, p) in ps.iter() {
        tree.insert(p, i as u64);
        if i % 100 == 0 {
            tree.check_invariants();
        }
    }
    assert!(tree.height() >= 4, "tiny pages must force a tall tree");
    for (i, p) in ps.iter() {
        assert!(tree.delete(p, i as u64));
    }
    tree.check_invariants();
    assert!(tree.is_empty());
}

#[test]
fn alternating_insert_delete_churn() {
    let ps = seeded_points(3_000, 3, 3);
    let tree = RTree::new(
        3,
        RTreeParams {
            page_size: 256,
            min_fill_ratio: 0.4,
            buffer_capacity: 128,
        },
    );
    // insert evens, then alternate: delete an even, insert an odd
    for (i, p) in ps.iter() {
        if i % 2 == 0 {
            tree.insert(p, i as u64);
        }
    }
    for (i, p) in ps.iter() {
        if i % 2 == 1 {
            tree.insert(p, i as u64);
            let j = i - 1;
            assert!(tree.delete(ps.get(j), j as u64));
        }
    }
    tree.check_invariants();
    assert_eq!(tree.len(), 1_500);
    let mut seen: Vec<u64> = Vec::new();
    tree.for_each_point(|oid, _| seen.push(oid));
    seen.sort_unstable();
    let expect: Vec<u64> = (0..3_000).filter(|i| i % 2 == 1).collect();
    assert_eq!(seen, expect);
}

#[test]
fn bulk_load_scales_and_stays_valid() {
    let ps = seeded_points(60_000, 4, 4);
    let tree = RTree::bulk_load(&ps, RTreeParams::default());
    tree.check_invariants();
    assert_eq!(tree.len(), 60_000);
    // a handful of spot queries against scans
    let w = [0.1, 0.2, 0.3, 0.4];
    let top = tree.top1(&w).unwrap();
    let best_scan = ps
        .iter()
        .map(|(i, p)| (i as u64, w.iter().zip(p).map(|(a, b)| a * b).sum::<f64>()))
        .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)))
        .unwrap();
    assert_eq!(top.oid, best_scan.0);
}

#[test]
fn io_stats_are_deterministic_for_identical_runs() {
    let ps = seeded_points(10_000, 2, 5);
    let run = || {
        let tree = RTree::bulk_load(
            &ps,
            RTreeParams {
                page_size: 1024,
                min_fill_ratio: 0.4,
                buffer_capacity: 16,
            },
        );
        for k in 0..50 {
            let w = [k as f64 / 50.0, 1.0 - k as f64 / 50.0];
            let _ = tree.top_k(&w, 10);
        }
        tree.io_stats()
    };
    assert_eq!(run(), run());
}
