//! Minimum bounding rectangles (MBRs) and the geometric primitives used by
//! tree construction, ranked search, and skyline pruning.
//!
//! All primitives are written against plain `&[f64]` slices so that they
//! work both on the owned [`Mbr`] type and on the flat, stride-packed MBR
//! arrays stored inside [`crate::node::InnerNode`] without copying.

/// An owned, axis-aligned minimum bounding rectangle.
///
/// `lo[i] <= hi[i]` holds for every dimension `i`.
#[derive(Debug, Clone, PartialEq)]
pub struct Mbr {
    /// Lower corner (component-wise minimum).
    pub lo: Box<[f64]>,
    /// Upper corner (component-wise maximum).
    pub hi: Box<[f64]>,
}

impl Mbr {
    /// A degenerate MBR covering exactly one point.
    pub fn from_point(p: &[f64]) -> Mbr {
        Mbr {
            lo: p.into(),
            hi: p.into(),
        }
    }

    /// An "empty" MBR that acts as the identity for union: every union
    /// with it yields the other operand.
    pub fn empty(dim: usize) -> Mbr {
        Mbr {
            lo: vec![f64::INFINITY; dim].into(),
            hi: vec![f64::NEG_INFINITY; dim].into(),
        }
    }

    /// Dimensionality of the rectangle.
    #[inline]
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Grow this MBR to cover `p`.
    pub fn union_point(&mut self, p: &[f64]) {
        debug_assert_eq!(p.len(), self.dim());
        for (i, &c) in p.iter().enumerate() {
            if c < self.lo[i] {
                self.lo[i] = c;
            }
            if c > self.hi[i] {
                self.hi[i] = c;
            }
        }
    }

    /// Grow this MBR to cover the rectangle `(lo, hi)`.
    pub fn union_rect(&mut self, lo: &[f64], hi: &[f64]) {
        for i in 0..self.lo.len() {
            if lo[i] < self.lo[i] {
                self.lo[i] = lo[i];
            }
            if hi[i] > self.hi[i] {
                self.hi[i] = hi[i];
            }
        }
    }

    /// True iff `p` lies inside the rectangle (boundaries inclusive).
    #[inline]
    pub fn contains_point(&self, p: &[f64]) -> bool {
        rect_contains_point(&self.lo, &self.hi, p)
    }

    /// Hyper-volume of the rectangle.
    #[inline]
    pub fn area(&self) -> f64 {
        rect_area(&self.lo, &self.hi)
    }
}

/// True iff the rectangle `(lo, hi)` contains point `p` (inclusive).
#[inline]
pub fn rect_contains_point(lo: &[f64], hi: &[f64], p: &[f64]) -> bool {
    debug_assert_eq!(lo.len(), p.len());
    p.iter()
        .zip(lo.iter().zip(hi.iter()))
        .all(|(&x, (&l, &h))| l <= x && x <= h)
}

/// True iff rectangles `(alo, ahi)` and `(blo, bhi)` intersect (inclusive).
#[inline]
pub fn rects_intersect(alo: &[f64], ahi: &[f64], blo: &[f64], bhi: &[f64]) -> bool {
    alo.iter()
        .zip(ahi.iter())
        .zip(blo.iter().zip(bhi.iter()))
        .all(|((&al, &ah), (&bl, &bh))| al <= bh && bl <= ah)
}

/// Hyper-volume of rectangle `(lo, hi)`.
#[inline]
pub fn rect_area(lo: &[f64], hi: &[f64]) -> f64 {
    lo.iter()
        .zip(hi.iter())
        .map(|(&l, &h)| (h - l).max(0.0))
        .product()
}

/// Margin (sum of edge lengths) of rectangle `(lo, hi)`; the R\*-tree split
/// heuristic minimizes this quantity when choosing a split axis.
#[inline]
pub fn rect_margin(lo: &[f64], hi: &[f64]) -> f64 {
    lo.iter()
        .zip(hi.iter())
        .map(|(&l, &h)| (h - l).max(0.0))
        .sum()
}

/// Hyper-volume of the intersection of two rectangles (0 if disjoint).
#[inline]
pub fn rect_overlap(alo: &[f64], ahi: &[f64], blo: &[f64], bhi: &[f64]) -> f64 {
    let mut v = 1.0;
    for i in 0..alo.len() {
        let l = alo[i].max(blo[i]);
        let h = ahi[i].min(bhi[i]);
        if h <= l {
            return 0.0;
        }
        v *= h - l;
    }
    v
}

/// Area increase required for rectangle `(lo, hi)` to absorb `(plo, phi)`.
#[inline]
pub fn enlargement(lo: &[f64], hi: &[f64], plo: &[f64], phi: &[f64]) -> f64 {
    let mut enlarged = 1.0;
    for i in 0..lo.len() {
        enlarged *= (hi[i].max(phi[i]) - lo[i].min(plo[i])).max(0.0);
    }
    enlarged - rect_area(lo, hi)
}

/// Upper bound of the linear score `w · x` over all points `x` in the
/// rectangle `(lo, hi)`, assuming non-negative weights: the score of the
/// upper corner. This is the bound used by branch-and-bound ranked search.
#[inline]
pub fn upper_score(w: &[f64], hi: &[f64]) -> f64 {
    debug_assert_eq!(w.len(), hi.len());
    dot(w, hi)
}

/// Inner product `w · p`.
#[inline]
pub fn dot(w: &[f64], p: &[f64]) -> f64 {
    debug_assert_eq!(w.len(), p.len());
    let mut s = 0.0;
    for i in 0..w.len() {
        s += w[i] * p[i];
    }
    s
}

/// L1 distance from the *upper corner* of a rectangle to the best corner
/// of the data space (`(1, ..., 1)` under the larger-is-better
/// convention). This is the BBS priority: entries closest to the best
/// corner are expanded first, which guarantees progressive skyline output.
#[inline]
pub fn mindist_to_best(hi: &[f64]) -> f64 {
    hi.iter().map(|&h| 1.0 - h).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_point_grows_in_both_directions() {
        let mut m = Mbr::from_point(&[0.5, 0.5]);
        m.union_point(&[0.2, 0.9]);
        assert_eq!(&*m.lo, &[0.2, 0.5]);
        assert_eq!(&*m.hi, &[0.5, 0.9]);
    }

    #[test]
    fn empty_mbr_is_union_identity() {
        let mut m = Mbr::empty(3);
        m.union_point(&[0.1, 0.2, 0.3]);
        assert_eq!(&*m.lo, &[0.1, 0.2, 0.3]);
        assert_eq!(&*m.hi, &[0.1, 0.2, 0.3]);
    }

    #[test]
    fn union_rect_covers_both() {
        let mut m = Mbr::from_point(&[0.4, 0.4]);
        m.union_rect(&[0.1, 0.5], &[0.2, 0.9]);
        assert_eq!(&*m.lo, &[0.1, 0.4]);
        assert_eq!(&*m.hi, &[0.4, 0.9]);
    }

    #[test]
    fn contains_point_is_inclusive() {
        let m = Mbr {
            lo: vec![0.0, 0.0].into(),
            hi: vec![1.0, 1.0].into(),
        };
        assert!(m.contains_point(&[0.0, 1.0]));
        assert!(m.contains_point(&[0.5, 0.5]));
        assert!(!m.contains_point(&[1.1, 0.5]));
    }

    #[test]
    fn area_and_margin() {
        let lo = [0.0, 0.0, 0.0];
        let hi = [2.0, 3.0, 4.0];
        assert_eq!(rect_area(&lo, &hi), 24.0);
        assert_eq!(rect_margin(&lo, &hi), 9.0);
    }

    #[test]
    fn degenerate_rect_has_zero_area() {
        assert_eq!(rect_area(&[0.5, 0.5], &[0.5, 0.9]), 0.0);
    }

    #[test]
    fn overlap_of_disjoint_rects_is_zero() {
        assert_eq!(rect_overlap(&[0.0], &[1.0], &[2.0], &[3.0]), 0.0);
        assert_eq!(rect_overlap(&[0.0], &[1.0], &[1.0], &[3.0]), 0.0); // touching
    }

    #[test]
    fn overlap_of_nested_rects_is_inner_area() {
        let v = rect_overlap(&[0.0, 0.0], &[4.0, 4.0], &[1.0, 1.0], &[2.0, 3.0]);
        assert!((v - 2.0).abs() < 1e-12);
    }

    #[test]
    fn enlargement_zero_when_contained() {
        let e = enlargement(&[0.0, 0.0], &[2.0, 2.0], &[0.5, 0.5], &[1.0, 1.0]);
        assert_eq!(e, 0.0);
    }

    #[test]
    fn enlargement_positive_when_outside() {
        let e = enlargement(&[0.0, 0.0], &[1.0, 1.0], &[2.0, 0.0], &[2.0, 1.0]);
        assert!((e - 1.0).abs() < 1e-12); // grows to [0,2]x[0,1], area 2 from 1
    }

    #[test]
    fn upper_score_is_dot_with_upper_corner() {
        assert!((upper_score(&[0.3, 0.7], &[1.0, 0.5]) - 0.65).abs() < 1e-12);
    }

    #[test]
    fn mindist_to_best_is_l1_gap() {
        assert!((mindist_to_best(&[1.0, 1.0]) - 0.0).abs() < 1e-12);
        assert!((mindist_to_best(&[0.25, 0.5]) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn intersect_detects_touching_edges() {
        assert!(rects_intersect(&[0.0], &[1.0], &[1.0], &[2.0]));
        assert!(!rects_intersect(&[0.0], &[0.9], &[1.0], &[2.0]));
    }
}
