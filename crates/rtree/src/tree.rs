//! The paged R\*-tree.
//!
//! [`RTree`] ties the substrate together: nodes live on pages
//! ([`crate::pager`]), all traffic flows through the LRU buffer pool
//! ([`crate::buffer`]), construction uses STR packing ([`crate::bulk`]),
//! overflow handling uses the R\* topological split ([`crate::split`]),
//! and deletion uses Guttman's condense-tree with re-insertion.
//!
//! The tree stores points (objects with `D` attributes in `[0,1]`), keyed
//! by a `u64` object id. Duplicate points and duplicate ids are allowed;
//! a deletion removes the entry matching both the coordinates and the id.

use std::sync::Arc;

use crate::buffer::BufferPool;
use crate::bulk::str_bulk_load;
use crate::geometry::{enlargement, rect_area, rect_contains_point, rect_overlap, Mbr};
use crate::node::{InnerNode, LeafNode, Node};
use crate::pager::{MemPager, PageId};
use crate::points::PointSet;
use crate::split::{rstar_split, SplitEntry};
use crate::stats::IoStats;

/// Construction parameters for an [`RTree`].
#[derive(Debug, Clone)]
pub struct RTreeParams {
    /// Page (node) size in bytes. The paper uses 4096.
    pub page_size: usize,
    /// Minimum node fill as a fraction of capacity (R\* default 0.4).
    pub min_fill_ratio: f64,
    /// Buffer-pool capacity in pages. Experiments typically override this
    /// to 2% of the tree size after bulk loading
    /// (see [`RTree::set_buffer_capacity`]).
    pub buffer_capacity: usize,
}

impl Default for RTreeParams {
    fn default() -> Self {
        RTreeParams {
            page_size: 4096,
            min_fill_ratio: 0.4,
            buffer_capacity: 128,
        }
    }
}

/// A disk-simulated R\*-tree over `D`-dimensional points.
///
/// See the [crate docs](crate) for an example.
pub struct RTree {
    dim: usize,
    leaf_cap: usize,
    inner_cap: usize,
    leaf_min: usize,
    inner_min: usize,
    buf: BufferPool,
    root: PageId,
    height: u32,
    len: u64,
}

impl std::fmt::Debug for RTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RTree")
            .field("dim", &self.dim)
            .field("len", &self.len)
            .field("height", &self.height)
            .field("pages", &self.buf.live_pages())
            .finish()
    }
}

/// An entry waiting to be (re-)inserted at a specific level.
#[derive(Debug, Clone)]
enum Pending {
    Point { p: Box<[f64]>, oid: u64 },
    Child { pid: PageId, level: u8, mbr: Mbr },
}

impl Pending {
    /// Level of the node that should *host* this entry.
    fn host_level(&self) -> u8 {
        match self {
            Pending::Point { .. } => 0,
            Pending::Child { level, .. } => level + 1,
        }
    }

    fn lo(&self) -> &[f64] {
        match self {
            Pending::Point { p, .. } => p,
            Pending::Child { mbr, .. } => &mbr.lo,
        }
    }

    fn hi(&self) -> &[f64] {
        match self {
            Pending::Point { p, .. } => p,
            Pending::Child { mbr, .. } => &mbr.hi,
        }
    }
}

struct RecResult {
    /// Tight MBR of the visited node after the insertion.
    mbr: Mbr,
    /// Set when the visited node split: the new sibling and its MBR.
    split: Option<(Mbr, PageId)>,
}

impl RTree {
    /// Create an empty tree.
    ///
    /// # Panics
    /// Panics if `dim == 0` or the page size cannot hold at least two
    /// entries per node.
    pub fn new(dim: usize, params: RTreeParams) -> RTree {
        let (leaf_cap, inner_cap) = Self::capacities(params.page_size, dim);
        let buf = BufferPool::new(MemPager::new(params.page_size), dim, params.buffer_capacity);
        let root = buf.allocate();
        buf.put(root, Node::Leaf(LeafNode::new(dim)));
        let (leaf_min, inner_min) = Self::min_fills(leaf_cap, inner_cap, params.min_fill_ratio);
        RTree {
            dim,
            leaf_cap,
            inner_cap,
            leaf_min,
            inner_min,
            buf,
            root,
            height: 1,
            len: 0,
        }
    }

    /// Build a tree over `points` with STR bulk loading. Object ids are
    /// the point indices. The buffer is flushed, emptied and the I/O
    /// counters reset afterwards, so subsequent queries are measured from
    /// a cold buffer.
    pub fn bulk_load(points: &PointSet, params: RTreeParams) -> RTree {
        let dim = points.dim();
        let (leaf_cap, inner_cap) = Self::capacities(params.page_size, dim);
        let buf = BufferPool::new(MemPager::new(params.page_size), dim, params.buffer_capacity);
        let res = str_bulk_load(&buf, points, leaf_cap, inner_cap);
        buf.clear();
        buf.reset_stats();
        let (leaf_min, inner_min) = Self::min_fills(leaf_cap, inner_cap, params.min_fill_ratio);
        RTree {
            dim,
            leaf_cap,
            inner_cap,
            leaf_min,
            inner_min,
            buf,
            root: res.root,
            height: res.height,
            len: res.len,
        }
    }

    fn capacities(page_size: usize, dim: usize) -> (usize, usize) {
        assert!(dim > 0, "dimensionality must be positive");
        let leaf_cap = (page_size - 8) / (8 * dim + 8);
        let inner_cap = (page_size - 8) / (16 * dim + 4);
        assert!(
            leaf_cap >= 2 && inner_cap >= 2,
            "page size {page_size} too small for dimensionality {dim}"
        );
        (leaf_cap, inner_cap)
    }

    fn min_fills(leaf_cap: usize, inner_cap: usize, ratio: f64) -> (usize, usize) {
        assert!(
            (0.0..=0.5).contains(&ratio),
            "min fill ratio must be in [0, 0.5]"
        );
        let lf = ((leaf_cap as f64 * ratio) as usize).max(1);
        let inf = ((inner_cap as f64 * ratio) as usize).max(1);
        (lf, inf)
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Dimensionality of the indexed space.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True iff the tree holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of levels (1 = the root is a leaf).
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Root page id (for external traversals such as BBS skyline).
    #[inline]
    pub fn root_page(&self) -> PageId {
        self.root
    }

    /// Maximum entries per leaf node.
    #[inline]
    pub fn leaf_capacity(&self) -> usize {
        self.leaf_cap
    }

    /// Maximum entries per inner node.
    #[inline]
    pub fn inner_capacity(&self) -> usize {
        self.inner_cap
    }

    /// Number of live pages ("size of the tree on disk").
    pub fn page_count(&self) -> usize {
        self.buf.live_pages()
    }

    /// Fetch a node through the buffer pool (costs I/O on a miss). This
    /// is the access path external algorithms (skyline, ranked search)
    /// must use so their page accesses are accounted.
    #[inline]
    pub fn read_node(&self, pid: PageId) -> Arc<Node> {
        self.buf.get(pid)
    }

    /// Like [`RTree::read_node`], additionally reporting whether the
    /// access missed the buffer. This is the hook run-scoped
    /// [`crate::IoSession`] accounting builds on.
    #[inline]
    pub fn read_node_probe(&self, pid: PageId) -> (Arc<Node>, bool) {
        self.buf.get_probe(pid)
    }

    /// Snapshot of the I/O counters.
    pub fn io_stats(&self) -> IoStats {
        self.buf.stats()
    }

    /// Zero the I/O counters.
    pub fn reset_io_stats(&self) {
        self.buf.reset_stats();
    }

    /// Resize the LRU buffer. The paper sizes it at 2% of the tree:
    /// `tree.set_buffer_capacity((tree.page_count() as f64 * 0.02) as usize)`.
    pub fn set_buffer_capacity(&self, pages: usize) {
        self.buf.set_capacity(pages);
    }

    /// Flush dirty pages and drop all cached frames (cold buffer).
    pub fn clear_buffer(&self) {
        self.buf.clear();
    }

    /// Current buffer capacity in pages.
    pub fn buffer_capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Number of lock shards in the buffer pool (1 = the classic
    /// single-LRU of the paper's experiments).
    pub fn buffer_shards(&self) -> usize {
        self.buf.shard_count()
    }

    /// Rebuild the buffer pool with `shards` lock shards (clamped to
    /// ≥ 1), so concurrent readers of distinct pages stop contending on
    /// one mutex (see the [`crate::buffer`] docs for the sharding
    /// model). The global capacity is preserved, dirty pages are flushed
    /// and the buffer restarts cold; the aggregate I/O counters carry
    /// over.
    ///
    /// Takes `&mut self`: re-sharding is a (re)configuration step done
    /// before a tree is shared, never during concurrent traffic.
    pub fn set_buffer_shards(&mut self, shards: usize) {
        let shards = shards.max(1);
        if shards == self.buf.shard_count() {
            return;
        }
        let cap = self.buf.capacity();
        // Flush *before* snapshotting the counters: the write-backs of
        // dirty pages are physical writes and must stay in the carried-
        // over stats (into_pager's own flush then finds nothing dirty).
        self.buf.flush();
        let stats = self.buf.stats();
        let placeholder = BufferPool::new(MemPager::new(64), 1, 1);
        let old = std::mem::replace(&mut self.buf, placeholder);
        let pager = old.into_pager();
        self.buf = BufferPool::with_shards(pager, self.dim, cap, shards);
        self.buf.seed_stats(stats);
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Collect all `(oid, point)` entries whose point lies in the
    /// rectangle `[lo, hi]` (inclusive).
    pub fn range(&self, lo: &[f64], hi: &[f64]) -> Vec<(u64, Box<[f64]>)> {
        assert_eq!(lo.len(), self.dim);
        assert_eq!(hi.len(), self.dim);
        let mut out = Vec::new();
        self.range_rec(self.root, lo, hi, &mut out);
        out
    }

    fn range_rec(&self, pid: PageId, lo: &[f64], hi: &[f64], out: &mut Vec<(u64, Box<[f64]>)>) {
        let node = self.buf.get(pid);
        match &*node {
            Node::Leaf(leaf) => {
                for (oid, p) in leaf.iter() {
                    if rect_contains_point(lo, hi, p) {
                        out.push((oid, p.into()));
                    }
                }
            }
            Node::Inner(inner) => {
                for i in 0..inner.len() {
                    if crate::geometry::rects_intersect(inner.lo(i), inner.hi(i), lo, hi) {
                        self.range_rec(inner.child(i), lo, hi, out);
                    }
                }
            }
        }
    }

    /// True iff the exact entry `(p, oid)` is indexed.
    pub fn contains(&self, p: &[f64], oid: u64) -> bool {
        let mut path = Vec::new();
        self.find_leaf(self.root, p, oid, &mut path).is_some()
    }

    /// Visit every `(oid, point)` entry (full scan; for tests and
    /// reference algorithms).
    pub fn for_each_point(&self, mut f: impl FnMut(u64, &[f64])) {
        self.scan_rec(self.root, &mut f);
    }

    fn scan_rec(&self, pid: PageId, f: &mut impl FnMut(u64, &[f64])) {
        let node = self.buf.get(pid);
        match &*node {
            Node::Leaf(leaf) => {
                for (oid, p) in leaf.iter() {
                    f(oid, p);
                }
            }
            Node::Inner(inner) => {
                for i in 0..inner.len() {
                    self.scan_rec(inner.child(i), f);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Insertion
    // ------------------------------------------------------------------

    /// Insert a point with the given object id.
    ///
    /// # Panics
    /// Panics if `p.len() != self.dim()` or any coordinate is not finite.
    pub fn insert(&mut self, p: &[f64], oid: u64) {
        assert_eq!(p.len(), self.dim, "point dimensionality mismatch");
        assert!(
            p.iter().all(|c| c.is_finite()),
            "point coordinates must be finite"
        );
        self.insert_pending(Pending::Point { p: p.into(), oid });
        self.len += 1;
    }

    fn insert_pending(&mut self, ent: Pending) {
        let res = self.insert_rec(self.root, &ent);
        if let Some((smbr, spid)) = res.split {
            let old_root = self.root;
            let old_level = self.buf.get(old_root).level();
            let mut root = InnerNode::new(self.dim, old_level + 1);
            root.push(&res.mbr.lo, &res.mbr.hi, old_root);
            root.push(&smbr.lo, &smbr.hi, spid);
            let new_pid = self.buf.allocate();
            self.buf.put(new_pid, Node::Inner(root));
            self.root = new_pid;
            self.height += 1;
        }
    }

    fn insert_rec(&mut self, pid: PageId, ent: &Pending) -> RecResult {
        let node_arc = self.buf.get(pid);
        let host = ent.host_level();
        debug_assert!(node_arc.level() >= host, "descended below host level");
        if node_arc.level() == host {
            let mut node = (*node_arc).clone();
            drop(node_arc);
            match (&mut node, ent) {
                (Node::Leaf(leaf), Pending::Point { p, oid }) => leaf.push(p, *oid),
                (Node::Inner(inner), Pending::Child { pid: cpid, mbr, .. }) => {
                    inner.push(&mbr.lo, &mbr.hi, *cpid)
                }
                _ => unreachable!("host level and entry kind disagree"),
            }
            let cap = match &node {
                Node::Leaf(_) => self.leaf_cap,
                Node::Inner(_) => self.inner_cap,
            };
            if node.len() > cap {
                self.split_node(pid, node)
            } else {
                let mbr = node.mbr();
                self.buf.put(pid, node);
                RecResult { mbr, split: None }
            }
        } else {
            let (ci, child_pid) = {
                let inner = node_arc.as_inner();
                let ci = self.choose_subtree(inner, ent);
                (ci, inner.child(ci))
            };
            let res = self.insert_rec(child_pid, ent);
            let mut node = (*node_arc).clone();
            drop(node_arc);
            let inner = node.as_inner_mut();
            inner.set_mbr(ci, &res.mbr.lo, &res.mbr.hi);
            if let Some((smbr, spid)) = res.split {
                inner.push(&smbr.lo, &smbr.hi, spid);
                if inner.len() > self.inner_cap {
                    return self.split_node(pid, node);
                }
            }
            let mbr = node.mbr();
            self.buf.put(pid, node);
            RecResult { mbr, split: None }
        }
    }

    /// R\* subtree choice: minimal overlap enlargement directly above the
    /// host level, minimal area enlargement higher up.
    fn choose_subtree(&self, inner: &InnerNode, ent: &Pending) -> usize {
        let (elo, ehi) = (ent.lo(), ent.hi());
        let n = inner.len();
        debug_assert!(n > 0, "choose_subtree on empty node");
        if inner.level() == ent.host_level() + 1 {
            // children host the entry: minimize overlap enlargement
            let mut best = 0usize;
            let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
            for j in 0..n {
                let mut enlarged = Mbr {
                    lo: inner.lo(j).into(),
                    hi: inner.hi(j).into(),
                };
                enlarged.union_rect(elo, ehi);
                let mut d_overlap = 0.0;
                for k in 0..n {
                    if k == j {
                        continue;
                    }
                    d_overlap += rect_overlap(&enlarged.lo, &enlarged.hi, inner.lo(k), inner.hi(k))
                        - rect_overlap(inner.lo(j), inner.hi(j), inner.lo(k), inner.hi(k));
                }
                let d_area = enlargement(inner.lo(j), inner.hi(j), elo, ehi);
                let area = rect_area(inner.lo(j), inner.hi(j));
                let key = (d_overlap, d_area, area);
                if key < best_key {
                    best_key = key;
                    best = j;
                }
            }
            best
        } else {
            let mut best = 0usize;
            let mut best_key = (f64::INFINITY, f64::INFINITY);
            for j in 0..n {
                let d_area = enlargement(inner.lo(j), inner.hi(j), elo, ehi);
                let area = rect_area(inner.lo(j), inner.hi(j));
                let key = (d_area, area);
                if key < best_key {
                    best_key = key;
                    best = j;
                }
            }
            best
        }
    }

    /// Split an overflowing node in place: `pid` keeps the left group, a
    /// new page receives the right group.
    fn split_node(&mut self, pid: PageId, node: Node) -> RecResult {
        let new_pid = self.buf.allocate();
        let (left, right, left_mbr, right_mbr) = match node {
            Node::Leaf(leaf) => {
                let entries: Vec<SplitEntry> = (0..leaf.len())
                    .map(|i| SplitEntry::from_point(leaf.point(i)))
                    .collect();
                let (li, ri) = rstar_split(&entries, self.leaf_min);
                let mut l = LeafNode::new(self.dim);
                let mut r = LeafNode::new(self.dim);
                let mut lm = Mbr::empty(self.dim);
                let mut rm = Mbr::empty(self.dim);
                for &i in &li {
                    l.push(leaf.point(i), leaf.oid(i));
                    lm.union_point(leaf.point(i));
                }
                for &i in &ri {
                    r.push(leaf.point(i), leaf.oid(i));
                    rm.union_point(leaf.point(i));
                }
                (Node::Leaf(l), Node::Leaf(r), lm, rm)
            }
            Node::Inner(inner) => {
                let entries: Vec<SplitEntry> = (0..inner.len())
                    .map(|i| SplitEntry::from_rect(inner.lo(i), inner.hi(i)))
                    .collect();
                let (li, ri) = rstar_split(&entries, self.inner_min);
                let mut l = InnerNode::new(self.dim, inner.level());
                let mut r = InnerNode::new(self.dim, inner.level());
                let mut lm = Mbr::empty(self.dim);
                let mut rm = Mbr::empty(self.dim);
                for &i in &li {
                    l.push(inner.lo(i), inner.hi(i), inner.child(i));
                    lm.union_rect(inner.lo(i), inner.hi(i));
                }
                for &i in &ri {
                    r.push(inner.lo(i), inner.hi(i), inner.child(i));
                    rm.union_rect(inner.lo(i), inner.hi(i));
                }
                (Node::Inner(l), Node::Inner(r), lm, rm)
            }
        };
        self.buf.put(pid, left);
        self.buf.put(new_pid, right);
        RecResult {
            mbr: left_mbr,
            split: Some((right_mbr, new_pid)),
        }
    }

    // ------------------------------------------------------------------
    // Deletion
    // ------------------------------------------------------------------

    /// Delete the entry matching both `p` and `oid`. Returns `true` if an
    /// entry was removed. Underflowing nodes are dissolved and their
    /// entries re-inserted (Guttman's condense-tree).
    pub fn delete(&mut self, p: &[f64], oid: u64) -> bool {
        assert_eq!(p.len(), self.dim, "point dimensionality mismatch");
        let mut path: Vec<(PageId, usize)> = Vec::new();
        let Some(leaf_pid) = self.find_leaf(self.root, p, oid, &mut path) else {
            return false;
        };

        let leaf_arc = self.buf.get(leaf_pid);
        let mut leaf = leaf_arc.as_leaf().clone();
        drop(leaf_arc);
        let ei = leaf
            .find(p, oid)
            .expect("find_leaf returned a leaf without the entry");
        leaf.swap_remove(ei);
        self.len -= 1;

        let mut orphans: Vec<Pending> = Vec::new();
        let mut child_pid = leaf_pid;
        let mut child_node = Node::Leaf(leaf);

        for &(ppid, cidx) in path.iter().rev() {
            let parent_arc = self.buf.get(ppid);
            let mut parent = parent_arc.as_inner().clone();
            drop(parent_arc);
            debug_assert_eq!(parent.child(cidx), child_pid, "stale deletion path");
            let underflow = match &child_node {
                Node::Leaf(l) => l.len() < self.leaf_min,
                Node::Inner(n) => n.len() < self.inner_min,
            };
            if underflow {
                parent.swap_remove(cidx);
                match &child_node {
                    Node::Leaf(l) => {
                        for (o, pt) in l.iter() {
                            orphans.push(Pending::Point {
                                p: pt.into(),
                                oid: o,
                            });
                        }
                    }
                    Node::Inner(n) => {
                        for i in 0..n.len() {
                            orphans.push(Pending::Child {
                                pid: n.child(i),
                                level: n.level() - 1,
                                mbr: Mbr {
                                    lo: n.lo(i).into(),
                                    hi: n.hi(i).into(),
                                },
                            });
                        }
                    }
                }
                self.buf.free(child_pid);
            } else {
                let mbr = child_node.mbr();
                parent.set_mbr(cidx, &mbr.lo, &mbr.hi);
                self.buf.put(child_pid, child_node);
            }
            child_pid = ppid;
            child_node = Node::Inner(parent);
        }
        self.buf.put(child_pid, child_node);

        // A root left with no children can only host points again.
        let root_arc = self.buf.get(self.root);
        if let Node::Inner(n) = &*root_arc {
            if n.is_empty() {
                drop(root_arc);
                self.buf.put(self.root, Node::Leaf(LeafNode::new(self.dim)));
                self.height = 1;
                // all surviving data is in `orphans`; demote subtrees to points
                let mut points: Vec<Pending> = Vec::new();
                for o in orphans {
                    match o {
                        Pending::Point { .. } => points.push(o),
                        Pending::Child { pid, .. } => self.drain_subtree(pid, &mut points),
                    }
                }
                orphans = points;
            }
        }

        // Re-insert orphans, subtrees before points so host levels exist.
        orphans.sort_by_key(|e| std::cmp::Reverse(e.host_level()));
        for ent in orphans {
            self.insert_pending(ent);
        }

        // Collapse chains of single-child roots.
        loop {
            let root_arc = self.buf.get(self.root);
            match &*root_arc {
                Node::Inner(n) if n.len() == 1 => {
                    let child = n.child(0);
                    drop(root_arc);
                    self.buf.free(self.root);
                    self.root = child;
                    self.height -= 1;
                }
                _ => break,
            }
        }
        true
    }

    /// Read all points under `pid` into `out` and free the subtree's
    /// pages (used only on the degenerate empty-root path).
    fn drain_subtree(&mut self, pid: PageId, out: &mut Vec<Pending>) {
        let node = self.buf.get(pid);
        match &*node {
            Node::Leaf(l) => {
                for (o, pt) in l.iter() {
                    out.push(Pending::Point {
                        p: pt.into(),
                        oid: o,
                    });
                }
            }
            Node::Inner(n) => {
                let children: Vec<PageId> = (0..n.len()).map(|i| n.child(i)).collect();
                drop(node);
                for c in children {
                    self.drain_subtree(c, out);
                }
                self.buf.free(pid);
                return;
            }
        }
        drop(node);
        self.buf.free(pid);
    }

    fn find_leaf(
        &self,
        pid: PageId,
        p: &[f64],
        oid: u64,
        path: &mut Vec<(PageId, usize)>,
    ) -> Option<PageId> {
        let node = self.buf.get(pid);
        match &*node {
            Node::Leaf(leaf) => {
                if leaf.find(p, oid).is_some() {
                    Some(pid)
                } else {
                    None
                }
            }
            Node::Inner(inner) => {
                for i in 0..inner.len() {
                    if rect_contains_point(inner.lo(i), inner.hi(i), p) {
                        path.push((pid, i));
                        if let Some(found) = self.find_leaf(inner.child(i), p, oid, path) {
                            return Some(found);
                        }
                        path.pop();
                    }
                }
                None
            }
        }
    }

    // ------------------------------------------------------------------
    // Validation (for tests)
    // ------------------------------------------------------------------

    /// Exhaustively verify structural invariants: level consistency,
    /// capacity bounds, exact (tight) parent MBRs, and the entry count.
    /// Panics on violation; intended for tests.
    pub fn check_invariants(&self) {
        let root = self.buf.get(self.root);
        assert_eq!(
            root.level() as u32 + 1,
            self.height,
            "height does not match root level"
        );
        let (_, count) = self.check_rec(self.root, root.level());
        assert_eq!(count, self.len, "entry count mismatch");
    }

    fn check_rec(&self, pid: PageId, expected_level: u8) -> (Mbr, u64) {
        let node = self.buf.get(pid);
        assert_eq!(node.level(), expected_level, "level mismatch at {pid}");
        match &*node {
            Node::Leaf(leaf) => {
                assert!(leaf.len() <= self.leaf_cap, "leaf overflow at {pid}");
                (node.mbr(), leaf.len() as u64)
            }
            Node::Inner(inner) => {
                assert!(inner.len() <= self.inner_cap, "inner overflow at {pid}");
                assert!(!inner.is_empty() || pid == self.root, "empty inner node");
                let mut count = 0;
                for i in 0..inner.len() {
                    let (child_mbr, child_count) =
                        self.check_rec(inner.child(i), expected_level - 1);
                    assert_eq!(
                        inner.lo(i),
                        &*child_mbr.lo,
                        "stale lo MBR at {pid} entry {i}"
                    );
                    assert_eq!(
                        inner.hi(i),
                        &*child_mbr.hi,
                        "stale hi MBR at {pid} entry {i}"
                    );
                    count += child_count;
                }
                (node.mbr(), count)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> RTreeParams {
        RTreeParams {
            page_size: 256, // tiny pages force deep trees on small data
            min_fill_ratio: 0.4,
            buffer_capacity: 64,
        }
    }

    fn seeded_points(n: usize, dim: usize, seed: u64) -> PointSet {
        // xorshift-style deterministic pseudo-random points
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut ps = PointSet::with_capacity(dim, n);
        for _ in 0..n {
            let p: Vec<f64> = (0..dim).map(|_| next()).collect();
            ps.push(&p);
        }
        ps
    }

    #[test]
    fn incremental_inserts_match_linear_scan_range() {
        let ps = seeded_points(500, 2, 42);
        let mut tree = RTree::new(2, small_params());
        for (i, p) in ps.iter() {
            tree.insert(p, i as u64);
        }
        tree.check_invariants();
        assert_eq!(tree.len(), 500);

        let lo = [0.2, 0.3];
        let hi = [0.7, 0.9];
        let mut expect: Vec<u64> = ps
            .iter()
            .filter(|(_, p)| p[0] >= lo[0] && p[0] <= hi[0] && p[1] >= lo[1] && p[1] <= hi[1])
            .map(|(i, _)| i as u64)
            .collect();
        expect.sort_unstable();
        let mut got: Vec<u64> = tree.range(&lo, &hi).into_iter().map(|(o, _)| o).collect();
        got.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn bulk_load_matches_linear_scan_range() {
        let ps = seeded_points(2000, 3, 7);
        let tree = RTree::bulk_load(&ps, small_params());
        tree.check_invariants();
        let lo = [0.1, 0.1, 0.1];
        let hi = [0.6, 0.8, 0.9];
        let mut expect: Vec<u64> = ps
            .iter()
            .filter(|(_, p)| {
                p.iter()
                    .zip(lo.iter().zip(hi.iter()))
                    .all(|(&x, (&l, &h))| l <= x && x <= h)
            })
            .map(|(i, _)| i as u64)
            .collect();
        expect.sort_unstable();
        let mut got: Vec<u64> = tree.range(&lo, &hi).into_iter().map(|(o, _)| o).collect();
        got.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn delete_removes_exactly_the_requested_entry() {
        let ps = seeded_points(300, 2, 3);
        let mut tree = RTree::bulk_load(&ps, small_params());
        assert!(tree.contains(ps.get(17), 17));
        assert!(tree.delete(ps.get(17), 17));
        assert!(!tree.contains(ps.get(17), 17));
        assert!(!tree.delete(ps.get(17), 17), "double delete must fail");
        assert_eq!(tree.len(), 299);
        tree.check_invariants();
    }

    #[test]
    fn delete_everything_empties_the_tree() {
        let ps = seeded_points(200, 2, 11);
        let mut tree = RTree::bulk_load(&ps, small_params());
        for (i, p) in ps.iter() {
            assert!(tree.delete(p, i as u64), "entry {i} vanished early");
            if i % 37 == 0 {
                tree.check_invariants();
            }
        }
        assert!(tree.is_empty());
        assert_eq!(tree.height(), 1);
        tree.check_invariants();
    }

    #[test]
    fn interleaved_inserts_and_deletes_stay_consistent() {
        let ps = seeded_points(400, 2, 99);
        let mut tree = RTree::new(2, small_params());
        for (i, p) in ps.iter().take(200) {
            tree.insert(p, i as u64);
        }
        for (i, p) in ps.iter().take(100) {
            assert!(tree.delete(p, i as u64));
        }
        for (i, p) in ps.iter().skip(200) {
            tree.insert(p, i as u64);
        }
        tree.check_invariants();
        assert_eq!(tree.len(), 300);
        // remaining = 100..400
        let mut seen = Vec::new();
        tree.for_each_point(|oid, _| seen.push(oid));
        seen.sort_unstable();
        let expect: Vec<u64> = (100..400).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn duplicate_points_with_distinct_ids_coexist() {
        let mut tree = RTree::new(2, small_params());
        for i in 0..50 {
            tree.insert(&[0.5, 0.5], i);
        }
        assert_eq!(tree.len(), 50);
        assert!(tree.delete(&[0.5, 0.5], 17));
        assert!(!tree.contains(&[0.5, 0.5], 17));
        assert!(tree.contains(&[0.5, 0.5], 18));
        tree.check_invariants();
    }

    #[test]
    fn queries_cost_io_and_buffer_absorbs_repeats() {
        let ps = seeded_points(5000, 2, 5);
        let tree = RTree::bulk_load(
            &ps,
            RTreeParams {
                page_size: 512,
                min_fill_ratio: 0.4,
                buffer_capacity: 4096,
            },
        );
        tree.reset_io_stats();
        let _ = tree.range(&[0.0, 0.0], &[1.0, 1.0]); // full scan, cold
        let cold = tree.io_stats();
        assert!(cold.physical_reads > 0);
        let _ = tree.range(&[0.0, 0.0], &[1.0, 1.0]); // warm: all hits
        let warm = tree.io_stats().since(cold);
        assert_eq!(warm.physical_reads, 0, "warm scan should be all hits");
        assert!(warm.logical > 0);
    }

    #[test]
    fn resharding_preserves_data_capacity_and_stats() {
        let ps = seeded_points(2_000, 2, 23);
        let mut tree = RTree::bulk_load(&ps, small_params());
        let _ = tree.range(&[0.0, 0.0], &[0.3, 0.3]);
        let stats_before = tree.io_stats();
        let cap_before = tree.buffer_capacity();
        assert_eq!(tree.buffer_shards(), 1);

        tree.set_buffer_shards(4);
        assert_eq!(tree.buffer_shards(), 4);
        assert_eq!(tree.buffer_capacity(), cap_before);
        // read-only tree: no dirty pages, counters carry over unchanged
        assert_eq!(tree.io_stats(), stats_before, "counters carry over");
        tree.check_invariants();

        // queries still return the same answers through the sharded pool
        let mut got: Vec<u64> = tree
            .range(&[0.2, 0.2], &[0.8, 0.8])
            .into_iter()
            .map(|(o, _)| o)
            .collect();
        got.sort_unstable();
        let mut expect: Vec<u64> = ps
            .iter()
            .filter(|(_, p)| p.iter().all(|&x| (0.2..=0.8).contains(&x)))
            .map(|(i, _)| i as u64)
            .collect();
        expect.sort_unstable();
        assert_eq!(got, expect);

        // dirty pages flushed by a re-shard must stay in the counters
        tree.insert(&[0.5, 0.5], 999_999);
        let writes_before = tree.io_stats().physical_writes;
        tree.set_buffer_shards(2);
        assert!(
            tree.io_stats().physical_writes > writes_before,
            "flush-on-reshard write-backs must be accounted"
        );
        tree.check_invariants();
    }

    #[test]
    fn empty_tree_behaves() {
        let mut tree = RTree::new(3, small_params());
        assert!(tree.is_empty());
        assert_eq!(tree.range(&[0.0; 3], &[1.0; 3]), vec![]);
        assert!(!tree.delete(&[0.5; 3], 0));
        tree.check_invariants();
    }
}
