//! The paged R\*-tree.
//!
//! [`RTree`] ties the substrate together: nodes live on pages
//! ([`crate::pager`]), all traffic flows through the LRU buffer pool
//! ([`crate::buffer`]), construction uses STR packing ([`crate::bulk`]),
//! overflow handling uses the R\* topological split ([`crate::split`]),
//! and deletion uses Guttman's condense-tree with re-insertion.
//!
//! The tree stores points (objects with `D` attributes in `[0,1]`), keyed
//! by a `u64` object id. Duplicate points and duplicate ids are allowed;
//! a deletion removes the entry matching both the coordinates and the id.
//!
//! # Copy-on-write epochs
//!
//! Mutations take `&self` and never overwrite a live page. Instead the
//! writer *path-copies*: every node touched by an insert or delete is
//! rewritten to a freshly allocated page, parents are rewired
//! ([`crate::node::InnerNode::set_child`]) up to a new root, and the new
//! root is published atomically as the next **epoch**. Readers pin a
//! [`Snapshot`] (see [`RTree::snapshot`]) and traverse a frozen root;
//! in-flight readers on older epochs keep seeing their version while
//! writers advance. Pages superseded by a mutation are *retired*, not
//! freed — they are reclaimed only once no pinned snapshot is old enough
//! to reference them (epoch-based reclamation).
//!
//! Writers are serialized by an internal lock; readers never block
//! writers and vice versa (beyond per-page buffer-pool latching).
//!
//! # Persistence
//!
//! Any [`PageStore`] can back the tree. With a
//! [`crate::disk::DiskPager`], [`RTree::checkpoint`] flushes all dirty
//! pages and durably commits the current root/epoch (plus caller
//! metadata, e.g. a WAL sequence number) into the store's header;
//! [`RTree::open`] recovers that state, then walks the tree from the
//! recovered root to re-seed the store's free list with every
//! unreachable page — no free list needs to be persisted, and the walk
//! doubles as a structural validation of the recovered tree.

use std::collections::{BTreeMap, HashSet};
use std::io;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::buffer::BufferPool;
use crate::bulk::str_bulk_load;
use crate::geometry::{enlargement, rect_area, rect_contains_point, rect_overlap, Mbr};
use crate::node::{InnerNode, LeafNode, Node};
use crate::pager::{MemPager, PageId, PageStore};
use crate::points::PointSet;
use crate::split::{rstar_split, SplitEntry};
use crate::stats::IoStats;

/// Construction parameters for an [`RTree`].
#[derive(Debug, Clone)]
pub struct RTreeParams {
    /// Page (node) size in bytes. The paper uses 4096.
    pub page_size: usize,
    /// Minimum node fill as a fraction of capacity (R\* default 0.4).
    pub min_fill_ratio: f64,
    /// Buffer-pool capacity in pages. Experiments typically override this
    /// to 2% of the tree size after bulk loading
    /// (see [`RTree::set_buffer_capacity`]).
    pub buffer_capacity: usize,
}

impl Default for RTreeParams {
    fn default() -> Self {
        RTreeParams {
            page_size: 4096,
            min_fill_ratio: 0.4,
            buffer_capacity: 128,
        }
    }
}

/// The published tree version: root page, shape, and epoch stamp.
#[derive(Debug, Clone, Copy)]
struct TreeState {
    root: PageId,
    height: u32,
    len: u64,
    epoch: u64,
}

/// Epoch bookkeeping: which epochs have pinned readers, and which retired
/// pages await reclamation.
#[derive(Default)]
struct Epochs {
    /// Pinned reader count per epoch.
    active: BTreeMap<u64, usize>,
    /// `(retire_epoch, page)`: the page was superseded when
    /// `retire_epoch` was published, so readers pinned at epochs `<
    /// retire_epoch` may still need it. Freed once the minimum pinned
    /// epoch reaches `retire_epoch`.
    retired: Vec<(u64, PageId)>,
}

/// A pinned, immutable view of one tree epoch.
///
/// While a snapshot is alive, every page reachable from its root stays
/// allocated even if concurrent writers supersede them — traversals from
/// [`Snapshot::root_page`] are stable. Dropping the snapshot unpins the
/// epoch and lets deferred reclamation free superseded pages.
pub struct Snapshot<'t> {
    tree: &'t RTree,
    root: PageId,
    height: u32,
    len: u64,
    epoch: u64,
}

impl Snapshot<'_> {
    /// Root page of the pinned epoch.
    #[inline]
    pub fn root_page(&self) -> PageId {
        self.root
    }

    /// Tree height of the pinned epoch (1 = the root is a leaf).
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of indexed points in the pinned epoch.
    #[inline]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True iff the pinned epoch holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The epoch stamp this snapshot pins.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl Drop for Snapshot<'_> {
    fn drop(&mut self) {
        self.tree.unpin(self.epoch);
    }
}

/// Scratch state of one in-flight mutation: the working (unpublished)
/// root/shape, pages allocated by this mutation (invisible to readers —
/// freed immediately if superseded again), and live pages it superseded
/// (retired at publish).
struct MutCtx {
    root: PageId,
    height: u32,
    len: u64,
    fresh: HashSet<u32>,
    retired: Vec<PageId>,
}

impl MutCtx {
    fn from_state(st: TreeState) -> MutCtx {
        MutCtx {
            root: st.root,
            height: st.height,
            len: st.len,
            fresh: HashSet::new(),
            retired: Vec::new(),
        }
    }
}

/// A paged R\*-tree over `D`-dimensional points, mutable in place with
/// copy-on-write epoch snapshots.
///
/// See the [crate docs](crate) for an example.
pub struct RTree {
    dim: usize,
    leaf_cap: usize,
    inner_cap: usize,
    leaf_min: usize,
    inner_min: usize,
    min_fill_ratio: f64,
    buf: BufferPool,
    state: Mutex<TreeState>,
    /// Serializes mutators; readers never take this.
    writer: Mutex<()>,
    epochs: Mutex<Epochs>,
}

impl std::fmt::Debug for RTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = *self.state.lock();
        f.debug_struct("RTree")
            .field("dim", &self.dim)
            .field("len", &st.len)
            .field("height", &st.height)
            .field("epoch", &st.epoch)
            .field("pages", &self.buf.live_pages())
            .finish()
    }
}

/// An entry waiting to be (re-)inserted at a specific level.
#[derive(Debug, Clone)]
enum Pending {
    Point { p: Box<[f64]>, oid: u64 },
    Child { pid: PageId, level: u8, mbr: Mbr },
}

impl Pending {
    /// Level of the node that should *host* this entry.
    fn host_level(&self) -> u8 {
        match self {
            Pending::Point { .. } => 0,
            Pending::Child { level, .. } => level + 1,
        }
    }

    fn lo(&self) -> &[f64] {
        match self {
            Pending::Point { p, .. } => p,
            Pending::Child { mbr, .. } => &mbr.lo,
        }
    }

    fn hi(&self) -> &[f64] {
        match self {
            Pending::Point { p, .. } => p,
            Pending::Child { mbr, .. } => &mbr.hi,
        }
    }
}

struct RecResult {
    /// Copy-on-write replacement page of the visited node.
    new_pid: PageId,
    /// Tight MBR of the visited node after the insertion.
    mbr: Mbr,
    /// Set when the visited node split: the new sibling and its MBR.
    split: Option<(Mbr, PageId)>,
}

/// Fixed prefix of the checkpoint metadata: dim, root, height, reserved,
/// len, epoch, min_fill_ratio (all little-endian).
const TREE_META_LEN: usize = 40;

fn encode_tree_meta(dim: usize, ratio: f64, st: TreeState, extra: &[u8]) -> Vec<u8> {
    let mut m = Vec::with_capacity(TREE_META_LEN + extra.len());
    m.extend_from_slice(&(dim as u32).to_le_bytes());
    m.extend_from_slice(&st.root.0.to_le_bytes());
    m.extend_from_slice(&st.height.to_le_bytes());
    m.extend_from_slice(&0u32.to_le_bytes());
    m.extend_from_slice(&st.len.to_le_bytes());
    m.extend_from_slice(&st.epoch.to_le_bytes());
    m.extend_from_slice(&ratio.to_le_bytes());
    m.extend_from_slice(extra);
    m
}

fn decode_tree_meta(meta: &[u8]) -> io::Result<(usize, TreeState, f64, Vec<u8>)> {
    if meta.len() < TREE_META_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "checkpoint metadata too short for a tree header",
        ));
    }
    let u32_at = |o: usize| u32::from_le_bytes(meta[o..o + 4].try_into().unwrap());
    let u64_at = |o: usize| u64::from_le_bytes(meta[o..o + 8].try_into().unwrap());
    let dim = u32_at(0) as usize;
    let st = TreeState {
        root: PageId(u32_at(4)),
        height: u32_at(8),
        len: u64_at(16),
        epoch: u64_at(24),
    };
    let ratio = f64::from_le_bytes(meta[32..40].try_into().unwrap());
    if dim == 0 || !st.root.is_valid() || st.height == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "checkpoint metadata describes an impossible tree",
        ));
    }
    if !(0.0..=0.5).contains(&ratio) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "checkpoint metadata has an out-of-range min fill ratio",
        ));
    }
    Ok((dim, st, ratio, meta[TREE_META_LEN..].to_vec()))
}

impl RTree {
    /// Create an empty tree on an in-memory store.
    ///
    /// # Panics
    /// Panics if `dim == 0` or the page size cannot hold at least two
    /// entries per node.
    pub fn new(dim: usize, params: RTreeParams) -> RTree {
        let (leaf_cap, inner_cap) = Self::capacities(params.page_size, dim);
        let buf = BufferPool::new(MemPager::new(params.page_size), dim, params.buffer_capacity);
        let root = buf.allocate();
        buf.put(root, Node::Leaf(LeafNode::new(dim)));
        let (leaf_min, inner_min) = Self::min_fills(leaf_cap, inner_cap, params.min_fill_ratio);
        RTree {
            dim,
            leaf_cap,
            inner_cap,
            leaf_min,
            inner_min,
            min_fill_ratio: params.min_fill_ratio,
            buf,
            state: Mutex::new(TreeState {
                root,
                height: 1,
                len: 0,
                epoch: 1,
            }),
            writer: Mutex::new(()),
            epochs: Mutex::new(Epochs::default()),
        }
    }

    /// Build a tree over `points` with STR bulk loading on an in-memory
    /// store. Object ids are the point indices. The buffer is flushed,
    /// emptied and the I/O counters reset afterwards, so subsequent
    /// queries are measured from a cold buffer.
    pub fn bulk_load(points: &PointSet, params: RTreeParams) -> RTree {
        RTree::bulk_load_in(MemPager::new(params.page_size), points, params)
    }

    /// Like [`RTree::bulk_load`], but into a caller-provided store (e.g.
    /// a [`crate::disk::DiskPager`] for a disk-backed tree).
    ///
    /// # Panics
    /// Panics if `store.page_size() != params.page_size`.
    pub fn bulk_load_in<S: PageStore + 'static>(
        store: S,
        points: &PointSet,
        params: RTreeParams,
    ) -> RTree {
        RTree::bulk_load_with_oids_in(store, points, None, params)
    }

    /// Like [`RTree::bulk_load_in`], but with explicit object ids:
    /// `points[i]` is indexed under `oids[i]` instead of `i`. Shards of a
    /// partitioned engine use this to index globally minted oids
    /// directly, so no translation layer sits between the merge protocol
    /// and the per-shard trees. Pass `None` to fall back to point
    /// indices.
    ///
    /// # Panics
    /// Panics if `store.page_size() != params.page_size` or if an oid
    /// slice is supplied whose length differs from `points.len()`.
    pub fn bulk_load_with_oids_in<S: PageStore + 'static>(
        store: S,
        points: &PointSet,
        oids: Option<&[u64]>,
        params: RTreeParams,
    ) -> RTree {
        assert_eq!(
            store.page_size(),
            params.page_size,
            "store page size must match params.page_size"
        );
        let dim = points.dim();
        let (leaf_cap, inner_cap) = Self::capacities(params.page_size, dim);
        let buf = BufferPool::new(store, dim, params.buffer_capacity);
        let res = str_bulk_load(&buf, points, oids, leaf_cap, inner_cap);
        buf.clear();
        buf.reset_stats();
        let (leaf_min, inner_min) = Self::min_fills(leaf_cap, inner_cap, params.min_fill_ratio);
        RTree {
            dim,
            leaf_cap,
            inner_cap,
            leaf_min,
            inner_min,
            min_fill_ratio: params.min_fill_ratio,
            buf,
            state: Mutex::new(TreeState {
                root: res.root,
                height: res.height,
                len: res.len,
                epoch: 1,
            }),
            writer: Mutex::new(()),
            epochs: Mutex::new(Epochs::default()),
        }
    }

    /// Reopen a tree from a store's most recent checkpoint. Returns the
    /// tree plus the caller metadata (`extra`) that was passed to the
    /// matching [`RTree::checkpoint`].
    ///
    /// Recovery walks the tree from the checkpointed root and hands every
    /// unreachable page back to the store's free list, so no free list is
    /// persisted and leaked pages cannot accumulate across restarts. The
    /// buffer restarts cold with zeroed I/O counters.
    pub fn open<S: PageStore + 'static>(
        store: S,
        buffer_capacity: usize,
    ) -> io::Result<(RTree, Vec<u8>)> {
        let meta = store.meta().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                "store holds no checkpoint metadata",
            )
        })?;
        let (dim, st, ratio, extra) = decode_tree_meta(&meta)?;
        let (leaf_cap, inner_cap) = Self::capacities(store.page_size(), dim);
        let (leaf_min, inner_min) = Self::min_fills(leaf_cap, inner_cap, ratio);
        let buf = BufferPool::new(store, dim, buffer_capacity.max(1));
        let tree = RTree {
            dim,
            leaf_cap,
            inner_cap,
            leaf_min,
            inner_min,
            min_fill_ratio: ratio,
            buf,
            state: Mutex::new(st),
            writer: Mutex::new(()),
            epochs: Mutex::new(Epochs::default()),
        };
        let mut reachable = HashSet::new();
        tree.collect_reachable(st.root, &mut reachable);
        let free: Vec<u32> = (0..tree.buf.page_bound())
            .filter(|i| !reachable.contains(i))
            .collect();
        tree.buf.seed_free(&free);
        tree.buf.clear();
        tree.buf.reset_stats();
        Ok((tree, extra))
    }

    fn collect_reachable(&self, pid: PageId, out: &mut HashSet<u32>) {
        if !out.insert(pid.0) {
            return;
        }
        let node = self.buf.get(pid);
        if let Node::Inner(inner) = &*node {
            for i in 0..inner.len() {
                self.collect_reachable(inner.child(i), out);
            }
        }
    }

    /// Flush all dirty pages and durably commit the current epoch into
    /// the store's header, together with `extra` caller metadata (the
    /// engine stores its WAL high-water mark here). A no-op commit for
    /// in-memory stores.
    pub fn checkpoint(&self, extra: &[u8]) -> io::Result<()> {
        let _w = self.writer.lock();
        let st = *self.state.lock();
        let meta = encode_tree_meta(self.dim, self.min_fill_ratio, st, extra);
        self.buf.checkpoint(&meta)
    }

    fn capacities(page_size: usize, dim: usize) -> (usize, usize) {
        assert!(dim > 0, "dimensionality must be positive");
        let leaf_cap = (page_size - 8) / (8 * dim + 8);
        let inner_cap = (page_size - 8) / (16 * dim + 4);
        assert!(
            leaf_cap >= 2 && inner_cap >= 2,
            "page size {page_size} too small for dimensionality {dim}"
        );
        (leaf_cap, inner_cap)
    }

    fn min_fills(leaf_cap: usize, inner_cap: usize, ratio: f64) -> (usize, usize) {
        assert!(
            (0.0..=0.5).contains(&ratio),
            "min fill ratio must be in [0, 0.5]"
        );
        let lf = ((leaf_cap as f64 * ratio) as usize).max(1);
        let inf = ((inner_cap as f64 * ratio) as usize).max(1);
        (lf, inf)
    }

    // ------------------------------------------------------------------
    // Snapshots & epochs
    // ------------------------------------------------------------------

    /// Pin the current epoch and return an immutable view of it. Pages of
    /// the pinned version stay allocated until the snapshot drops, even
    /// while concurrent mutations publish newer epochs.
    pub fn snapshot(&self) -> Snapshot<'_> {
        let st = *self.state.lock();
        *self.epochs.lock().active.entry(st.epoch).or_insert(0) += 1;
        Snapshot {
            tree: self,
            root: st.root,
            height: st.height,
            len: st.len,
            epoch: st.epoch,
        }
    }

    fn unpin(&self, epoch: u64) {
        let mut ep = self.epochs.lock();
        if let Some(c) = ep.active.get_mut(&epoch) {
            *c -= 1;
            if *c == 0 {
                ep.active.remove(&epoch);
            }
        }
        self.reclaim_locked(&mut ep);
    }

    /// Free every retired page no pinned snapshot can still reference.
    fn reclaim_locked(&self, ep: &mut Epochs) {
        let min_active = ep.active.keys().next().copied().unwrap_or(u64::MAX);
        let mut i = 0;
        while i < ep.retired.len() {
            if ep.retired[i].0 <= min_active {
                let (_, pid) = ep.retired.swap_remove(i);
                self.buf.free(pid);
            } else {
                i += 1;
            }
        }
    }

    /// Install the mutation's root as the next epoch and queue its
    /// superseded pages for reclamation.
    fn publish(&self, ctx: MutCtx) {
        let epoch;
        {
            let mut st = self.state.lock();
            epoch = st.epoch + 1;
            *st = TreeState {
                root: ctx.root,
                height: ctx.height,
                len: ctx.len,
                epoch,
            };
        }
        let mut ep = self.epochs.lock();
        for pid in ctx.retired {
            ep.retired.push((epoch, pid));
        }
        self.reclaim_locked(&mut ep);
    }

    /// Allocate a page invisible to readers (it belongs to the
    /// in-flight mutation until publish).
    fn alloc_fresh(&self, ctx: &mut MutCtx) -> PageId {
        let pid = self.buf.allocate();
        ctx.fresh.insert(pid.0);
        pid
    }

    /// Supersede `pid`: pages of the published version are retired until
    /// reclamation; pages this same mutation allocated were never visible
    /// and are freed on the spot.
    fn retire_page(&self, ctx: &mut MutCtx, pid: PageId) {
        if ctx.fresh.remove(&pid.0) {
            self.buf.free(pid);
        } else {
            ctx.retired.push(pid);
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Dimensionality of the indexed space.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of indexed points (in the current epoch).
    #[inline]
    pub fn len(&self) -> u64 {
        self.state.lock().len
    }

    /// True iff the tree holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of levels (1 = the root is a leaf).
    #[inline]
    pub fn height(&self) -> u32 {
        self.state.lock().height
    }

    /// Root page id of the current epoch (for external traversals such
    /// as BBS skyline). With concurrent writers, prefer
    /// [`RTree::snapshot`], which keeps the returned root's pages alive.
    #[inline]
    pub fn root_page(&self) -> PageId {
        self.state.lock().root
    }

    /// The current epoch stamp; each published mutation increments it.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.state.lock().epoch
    }

    /// Maximum entries per leaf node.
    #[inline]
    pub fn leaf_capacity(&self) -> usize {
        self.leaf_cap
    }

    /// Maximum entries per inner node.
    #[inline]
    pub fn inner_capacity(&self) -> usize {
        self.inner_cap
    }

    /// Number of live pages ("size of the tree on disk").
    pub fn page_count(&self) -> usize {
        self.buf.live_pages()
    }

    /// Fetch a node through the buffer pool (costs I/O on a miss). This
    /// is the access path external algorithms (skyline, ranked search)
    /// must use so their page accesses are accounted.
    #[inline]
    pub fn read_node(&self, pid: PageId) -> Arc<Node> {
        self.buf.get(pid)
    }

    /// Like [`RTree::read_node`], additionally reporting whether the
    /// access missed the buffer. This is the hook run-scoped
    /// [`crate::IoSession`] accounting builds on.
    #[inline]
    pub fn read_node_probe(&self, pid: PageId) -> (Arc<Node>, bool) {
        self.buf.get_probe(pid)
    }

    /// Snapshot of the I/O counters.
    pub fn io_stats(&self) -> IoStats {
        self.buf.stats()
    }

    /// Zero the I/O counters.
    pub fn reset_io_stats(&self) {
        self.buf.reset_stats();
    }

    /// Resize the LRU buffer. The paper sizes it at 2% of the tree:
    /// `tree.set_buffer_capacity((tree.page_count() as f64 * 0.02) as usize)`.
    pub fn set_buffer_capacity(&self, pages: usize) {
        self.buf.set_capacity(pages);
    }

    /// Flush dirty pages and drop all cached frames (cold buffer).
    pub fn clear_buffer(&self) {
        self.buf.clear();
    }

    /// Current buffer capacity in pages.
    pub fn buffer_capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Number of lock shards in the buffer pool (1 = the classic
    /// single-LRU of the paper's experiments).
    pub fn buffer_shards(&self) -> usize {
        self.buf.shard_count()
    }

    /// Rebuild the buffer pool with `shards` lock shards (clamped to
    /// ≥ 1), so concurrent readers of distinct pages stop contending on
    /// one mutex (see the [`crate::buffer`] docs for the sharding
    /// model). The global capacity is preserved, dirty pages are flushed
    /// and the buffer restarts cold; the aggregate I/O counters carry
    /// over, and the underlying store (in-memory or disk) travels to the
    /// new pool untouched.
    ///
    /// Takes `&mut self`: re-sharding is a (re)configuration step done
    /// before a tree is shared, never during concurrent traffic.
    pub fn set_buffer_shards(&mut self, shards: usize) {
        let shards = shards.max(1);
        if shards == self.buf.shard_count() {
            return;
        }
        let cap = self.buf.capacity();
        // Flush *before* snapshotting the counters: the write-backs of
        // dirty pages are physical writes and must stay in the carried-
        // over stats (into_store's own flush then finds nothing dirty).
        // Re-sharding is a healthy-path admin op; a store that cannot
        // flush here simply carries its dirty frames into the new pool.
        let _ = self.buf.flush();
        let stats = self.buf.stats();
        let placeholder = BufferPool::new(MemPager::new(64), 1, 1);
        let old = std::mem::replace(&mut self.buf, placeholder);
        let store = old.into_store();
        self.buf = BufferPool::with_boxed_store(store, self.dim, cap, shards);
        self.buf.seed_stats(stats);
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Collect all `(oid, point)` entries whose point lies in the
    /// rectangle `[lo, hi]` (inclusive).
    pub fn range(&self, lo: &[f64], hi: &[f64]) -> Vec<(u64, Box<[f64]>)> {
        assert_eq!(lo.len(), self.dim);
        assert_eq!(hi.len(), self.dim);
        let snap = self.snapshot();
        let mut out = Vec::new();
        self.range_rec(snap.root_page(), lo, hi, &mut out);
        out
    }

    fn range_rec(&self, pid: PageId, lo: &[f64], hi: &[f64], out: &mut Vec<(u64, Box<[f64]>)>) {
        let node = self.buf.get(pid);
        match &*node {
            Node::Leaf(leaf) => {
                for (oid, p) in leaf.iter() {
                    if rect_contains_point(lo, hi, p) {
                        out.push((oid, p.into()));
                    }
                }
            }
            Node::Inner(inner) => {
                for i in 0..inner.len() {
                    if crate::geometry::rects_intersect(inner.lo(i), inner.hi(i), lo, hi) {
                        self.range_rec(inner.child(i), lo, hi, out);
                    }
                }
            }
        }
    }

    /// True iff the exact entry `(p, oid)` is indexed.
    pub fn contains(&self, p: &[f64], oid: u64) -> bool {
        let snap = self.snapshot();
        let mut path = Vec::new();
        self.find_leaf(snap.root_page(), p, oid, &mut path)
            .is_some()
    }

    /// Visit every `(oid, point)` entry (full scan; for tests and
    /// reference algorithms). The scan runs on a pinned snapshot, so a
    /// concurrent mutation cannot tear it.
    pub fn for_each_point(&self, mut f: impl FnMut(u64, &[f64])) {
        let snap = self.snapshot();
        self.scan_rec(snap.root_page(), &mut f);
    }

    fn scan_rec(&self, pid: PageId, f: &mut impl FnMut(u64, &[f64])) {
        let node = self.buf.get(pid);
        match &*node {
            Node::Leaf(leaf) => {
                for (oid, p) in leaf.iter() {
                    f(oid, p);
                }
            }
            Node::Inner(inner) => {
                for i in 0..inner.len() {
                    self.scan_rec(inner.child(i), f);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Insertion
    // ------------------------------------------------------------------

    /// Insert a point with the given object id, publishing a new epoch.
    /// Concurrent readers on pinned snapshots are unaffected.
    ///
    /// # Panics
    /// Panics if `p.len() != self.dim()` or any coordinate is not finite.
    pub fn insert(&self, p: &[f64], oid: u64) {
        assert_eq!(p.len(), self.dim, "point dimensionality mismatch");
        assert!(
            p.iter().all(|c| c.is_finite()),
            "point coordinates must be finite"
        );
        let _w = self.writer.lock();
        let mut ctx = MutCtx::from_state(*self.state.lock());
        self.insert_pending(&mut ctx, Pending::Point { p: p.into(), oid });
        ctx.len += 1;
        self.publish(ctx);
    }

    fn insert_pending(&self, ctx: &mut MutCtx, ent: Pending) {
        let res = self.insert_rec(ctx, ctx.root, &ent);
        if let Some((smbr, spid)) = res.split {
            let level = self.buf.get(res.new_pid).level();
            let mut root = InnerNode::new(self.dim, level + 1);
            root.push(&res.mbr.lo, &res.mbr.hi, res.new_pid);
            root.push(&smbr.lo, &smbr.hi, spid);
            let new_pid = self.alloc_fresh(ctx);
            self.buf.put(new_pid, Node::Inner(root));
            ctx.root = new_pid;
            ctx.height += 1;
        } else {
            ctx.root = res.new_pid;
        }
    }

    fn insert_rec(&self, ctx: &mut MutCtx, pid: PageId, ent: &Pending) -> RecResult {
        let node_arc = self.buf.get(pid);
        let host = ent.host_level();
        debug_assert!(node_arc.level() >= host, "descended below host level");
        if node_arc.level() == host {
            let mut node = (*node_arc).clone();
            drop(node_arc);
            match (&mut node, ent) {
                (Node::Leaf(leaf), Pending::Point { p, oid }) => leaf.push(p, *oid),
                (Node::Inner(inner), Pending::Child { pid: cpid, mbr, .. }) => {
                    inner.push(&mbr.lo, &mbr.hi, *cpid)
                }
                _ => unreachable!("host level and entry kind disagree"),
            }
            let cap = match &node {
                Node::Leaf(_) => self.leaf_cap,
                Node::Inner(_) => self.inner_cap,
            };
            if node.len() > cap {
                self.split_node(ctx, pid, node)
            } else {
                let mbr = node.mbr();
                let new_pid = self.alloc_fresh(ctx);
                self.buf.put(new_pid, node);
                self.retire_page(ctx, pid);
                RecResult {
                    new_pid,
                    mbr,
                    split: None,
                }
            }
        } else {
            let (ci, child_pid) = {
                let inner = node_arc.as_inner();
                let ci = self.choose_subtree(inner, ent);
                (ci, inner.child(ci))
            };
            let res = self.insert_rec(ctx, child_pid, ent);
            let mut node = (*node_arc).clone();
            drop(node_arc);
            let inner = node.as_inner_mut();
            inner.set_child(ci, res.new_pid);
            inner.set_mbr(ci, &res.mbr.lo, &res.mbr.hi);
            if let Some((smbr, spid)) = res.split {
                inner.push(&smbr.lo, &smbr.hi, spid);
                if inner.len() > self.inner_cap {
                    return self.split_node(ctx, pid, node);
                }
            }
            let mbr = node.mbr();
            let new_pid = self.alloc_fresh(ctx);
            self.buf.put(new_pid, node);
            self.retire_page(ctx, pid);
            RecResult {
                new_pid,
                mbr,
                split: None,
            }
        }
    }

    /// R\* subtree choice: minimal overlap enlargement directly above the
    /// host level, minimal area enlargement higher up.
    fn choose_subtree(&self, inner: &InnerNode, ent: &Pending) -> usize {
        let (elo, ehi) = (ent.lo(), ent.hi());
        let n = inner.len();
        debug_assert!(n > 0, "choose_subtree on empty node");
        if inner.level() == ent.host_level() + 1 {
            // children host the entry: minimize overlap enlargement
            let mut best = 0usize;
            let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
            for j in 0..n {
                let mut enlarged = Mbr {
                    lo: inner.lo(j).into(),
                    hi: inner.hi(j).into(),
                };
                enlarged.union_rect(elo, ehi);
                let mut d_overlap = 0.0;
                for k in 0..n {
                    if k == j {
                        continue;
                    }
                    d_overlap += rect_overlap(&enlarged.lo, &enlarged.hi, inner.lo(k), inner.hi(k))
                        - rect_overlap(inner.lo(j), inner.hi(j), inner.lo(k), inner.hi(k));
                }
                let d_area = enlargement(inner.lo(j), inner.hi(j), elo, ehi);
                let area = rect_area(inner.lo(j), inner.hi(j));
                let key = (d_overlap, d_area, area);
                if key < best_key {
                    best_key = key;
                    best = j;
                }
            }
            best
        } else {
            let mut best = 0usize;
            let mut best_key = (f64::INFINITY, f64::INFINITY);
            for j in 0..n {
                let d_area = enlargement(inner.lo(j), inner.hi(j), elo, ehi);
                let area = rect_area(inner.lo(j), inner.hi(j));
                let key = (d_area, area);
                if key < best_key {
                    best_key = key;
                    best = j;
                }
            }
            best
        }
    }

    /// Split an overflowing node: both groups land on fresh pages and the
    /// overflowed page is superseded (copy-on-write — the old image stays
    /// readable for pinned snapshots).
    fn split_node(&self, ctx: &mut MutCtx, pid: PageId, node: Node) -> RecResult {
        let (left, right, left_mbr, right_mbr) = match node {
            Node::Leaf(leaf) => {
                let entries: Vec<SplitEntry> = (0..leaf.len())
                    .map(|i| SplitEntry::from_point(leaf.point(i)))
                    .collect();
                let (li, ri) = rstar_split(&entries, self.leaf_min);
                let mut l = LeafNode::new(self.dim);
                let mut r = LeafNode::new(self.dim);
                let mut lm = Mbr::empty(self.dim);
                let mut rm = Mbr::empty(self.dim);
                for &i in &li {
                    l.push(leaf.point(i), leaf.oid(i));
                    lm.union_point(leaf.point(i));
                }
                for &i in &ri {
                    r.push(leaf.point(i), leaf.oid(i));
                    rm.union_point(leaf.point(i));
                }
                (Node::Leaf(l), Node::Leaf(r), lm, rm)
            }
            Node::Inner(inner) => {
                let entries: Vec<SplitEntry> = (0..inner.len())
                    .map(|i| SplitEntry::from_rect(inner.lo(i), inner.hi(i)))
                    .collect();
                let (li, ri) = rstar_split(&entries, self.inner_min);
                let mut l = InnerNode::new(self.dim, inner.level());
                let mut r = InnerNode::new(self.dim, inner.level());
                let mut lm = Mbr::empty(self.dim);
                let mut rm = Mbr::empty(self.dim);
                for &i in &li {
                    l.push(inner.lo(i), inner.hi(i), inner.child(i));
                    lm.union_rect(inner.lo(i), inner.hi(i));
                }
                for &i in &ri {
                    r.push(inner.lo(i), inner.hi(i), inner.child(i));
                    rm.union_rect(inner.lo(i), inner.hi(i));
                }
                (Node::Inner(l), Node::Inner(r), lm, rm)
            }
        };
        let left_pid = self.alloc_fresh(ctx);
        let right_pid = self.alloc_fresh(ctx);
        self.buf.put(left_pid, left);
        self.buf.put(right_pid, right);
        self.retire_page(ctx, pid);
        RecResult {
            new_pid: left_pid,
            mbr: left_mbr,
            split: Some((right_mbr, right_pid)),
        }
    }

    // ------------------------------------------------------------------
    // Deletion
    // ------------------------------------------------------------------

    /// Delete the entry matching both `p` and `oid`, publishing a new
    /// epoch. Returns `true` if an entry was removed. Underflowing nodes
    /// are dissolved and their entries re-inserted (Guttman's
    /// condense-tree).
    pub fn delete(&self, p: &[f64], oid: u64) -> bool {
        assert_eq!(p.len(), self.dim, "point dimensionality mismatch");
        let _w = self.writer.lock();
        let mut ctx = MutCtx::from_state(*self.state.lock());
        let mut path: Vec<(PageId, usize)> = Vec::new();
        let Some(leaf_pid) = self.find_leaf(ctx.root, p, oid, &mut path) else {
            return false;
        };

        let leaf_arc = self.buf.get(leaf_pid);
        let mut leaf = leaf_arc.as_leaf().clone();
        drop(leaf_arc);
        let ei = leaf
            .find(p, oid)
            .expect("find_leaf returned a leaf without the entry");
        leaf.swap_remove(ei);
        ctx.len -= 1;

        let mut orphans: Vec<Pending> = Vec::new();
        let mut child_old = leaf_pid;
        let mut child_node = Node::Leaf(leaf);

        for &(ppid, cidx) in path.iter().rev() {
            let parent_arc = self.buf.get(ppid);
            let mut parent = parent_arc.as_inner().clone();
            drop(parent_arc);
            debug_assert_eq!(parent.child(cidx), child_old, "stale deletion path");
            let underflow = match &child_node {
                Node::Leaf(l) => l.len() < self.leaf_min,
                Node::Inner(n) => n.len() < self.inner_min,
            };
            if underflow {
                parent.swap_remove(cidx);
                match &child_node {
                    Node::Leaf(l) => {
                        for (o, pt) in l.iter() {
                            orphans.push(Pending::Point {
                                p: pt.into(),
                                oid: o,
                            });
                        }
                    }
                    Node::Inner(n) => {
                        for i in 0..n.len() {
                            orphans.push(Pending::Child {
                                pid: n.child(i),
                                level: n.level() - 1,
                                mbr: Mbr {
                                    lo: n.lo(i).into(),
                                    hi: n.hi(i).into(),
                                },
                            });
                        }
                    }
                }
                self.retire_page(&mut ctx, child_old);
            } else {
                let mbr = child_node.mbr();
                let new_child = self.alloc_fresh(&mut ctx);
                self.buf.put(new_child, child_node);
                self.retire_page(&mut ctx, child_old);
                parent.set_child(cidx, new_child);
                parent.set_mbr(cidx, &mbr.lo, &mbr.hi);
            }
            child_old = ppid;
            child_node = Node::Inner(parent);
        }
        // Install the copy-on-write image of the root.
        let new_root = self.alloc_fresh(&mut ctx);
        self.buf.put(new_root, child_node);
        self.retire_page(&mut ctx, child_old);
        ctx.root = new_root;

        // A root left with no children can only host points again.
        {
            let root_arc = self.buf.get(ctx.root);
            let emptied = matches!(&*root_arc, Node::Inner(n) if n.is_empty());
            drop(root_arc);
            if emptied {
                // The fresh root page is invisible to readers; rewrite it
                // in place as an empty leaf.
                self.buf.put(ctx.root, Node::Leaf(LeafNode::new(self.dim)));
                ctx.height = 1;
                // all surviving data is in `orphans`; demote subtrees to points
                let mut points: Vec<Pending> = Vec::new();
                for o in orphans {
                    match o {
                        Pending::Point { .. } => points.push(o),
                        Pending::Child { pid, .. } => {
                            self.drain_subtree(&mut ctx, pid, &mut points)
                        }
                    }
                }
                orphans = points;
            }
        }

        // Re-insert orphans, subtrees before points so host levels exist.
        orphans.sort_by_key(|e| std::cmp::Reverse(e.host_level()));
        for ent in orphans {
            self.insert_pending(&mut ctx, ent);
        }

        // Collapse chains of single-child roots.
        loop {
            let root_arc = self.buf.get(ctx.root);
            match &*root_arc {
                Node::Inner(n) if n.len() == 1 => {
                    let child = n.child(0);
                    drop(root_arc);
                    let old_root = ctx.root;
                    self.retire_page(&mut ctx, old_root);
                    ctx.root = child;
                    ctx.height -= 1;
                }
                _ => break,
            }
        }
        self.publish(ctx);
        true
    }

    /// Read all points under `pid` into `out` and supersede the
    /// subtree's pages (used only on the degenerate empty-root path).
    fn drain_subtree(&self, ctx: &mut MutCtx, pid: PageId, out: &mut Vec<Pending>) {
        let node = self.buf.get(pid);
        match &*node {
            Node::Leaf(l) => {
                for (o, pt) in l.iter() {
                    out.push(Pending::Point {
                        p: pt.into(),
                        oid: o,
                    });
                }
            }
            Node::Inner(n) => {
                let children: Vec<PageId> = (0..n.len()).map(|i| n.child(i)).collect();
                drop(node);
                for c in children {
                    self.drain_subtree(ctx, c, out);
                }
                self.retire_page(ctx, pid);
                return;
            }
        }
        drop(node);
        self.retire_page(ctx, pid);
    }

    fn find_leaf(
        &self,
        pid: PageId,
        p: &[f64],
        oid: u64,
        path: &mut Vec<(PageId, usize)>,
    ) -> Option<PageId> {
        let node = self.buf.get(pid);
        match &*node {
            Node::Leaf(leaf) => {
                if leaf.find(p, oid).is_some() {
                    Some(pid)
                } else {
                    None
                }
            }
            Node::Inner(inner) => {
                for i in 0..inner.len() {
                    if rect_contains_point(inner.lo(i), inner.hi(i), p) {
                        path.push((pid, i));
                        if let Some(found) = self.find_leaf(inner.child(i), p, oid, path) {
                            return Some(found);
                        }
                        path.pop();
                    }
                }
                None
            }
        }
    }

    // ------------------------------------------------------------------
    // Validation (for tests)
    // ------------------------------------------------------------------

    /// Exhaustively verify structural invariants: level consistency,
    /// capacity bounds, exact (tight) parent MBRs, and the entry count.
    /// Panics on violation; intended for tests.
    pub fn check_invariants(&self) {
        let snap = self.snapshot();
        let root_pid = snap.root_page();
        let root = self.buf.get(root_pid);
        assert_eq!(
            root.level() as u32 + 1,
            snap.height(),
            "height does not match root level"
        );
        let (_, count) = self.check_rec(root_pid, root.level(), root_pid);
        assert_eq!(count, snap.len(), "entry count mismatch");
    }

    fn check_rec(&self, pid: PageId, expected_level: u8, root_pid: PageId) -> (Mbr, u64) {
        let node = self.buf.get(pid);
        assert_eq!(node.level(), expected_level, "level mismatch at {pid}");
        match &*node {
            Node::Leaf(leaf) => {
                assert!(leaf.len() <= self.leaf_cap, "leaf overflow at {pid}");
                (node.mbr(), leaf.len() as u64)
            }
            Node::Inner(inner) => {
                assert!(inner.len() <= self.inner_cap, "inner overflow at {pid}");
                assert!(!inner.is_empty() || pid == root_pid, "empty inner node");
                let mut count = 0;
                for i in 0..inner.len() {
                    let (child_mbr, child_count) =
                        self.check_rec(inner.child(i), expected_level - 1, root_pid);
                    assert_eq!(
                        inner.lo(i),
                        &*child_mbr.lo,
                        "stale lo MBR at {pid} entry {i}"
                    );
                    assert_eq!(
                        inner.hi(i),
                        &*child_mbr.hi,
                        "stale hi MBR at {pid} entry {i}"
                    );
                    count += child_count;
                }
                (node.mbr(), count)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskPager;

    fn small_params() -> RTreeParams {
        RTreeParams {
            page_size: 256, // tiny pages force deep trees on small data
            min_fill_ratio: 0.4,
            buffer_capacity: 64,
        }
    }

    fn seeded_points(n: usize, dim: usize, seed: u64) -> PointSet {
        // xorshift-style deterministic pseudo-random points
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut ps = PointSet::with_capacity(dim, n);
        for _ in 0..n {
            let p: Vec<f64> = (0..dim).map(|_| next()).collect();
            ps.push(&p);
        }
        ps
    }

    #[test]
    fn incremental_inserts_match_linear_scan_range() {
        let ps = seeded_points(500, 2, 42);
        let tree = RTree::new(2, small_params());
        for (i, p) in ps.iter() {
            tree.insert(p, i as u64);
        }
        tree.check_invariants();
        assert_eq!(tree.len(), 500);

        let lo = [0.2, 0.3];
        let hi = [0.7, 0.9];
        let mut expect: Vec<u64> = ps
            .iter()
            .filter(|(_, p)| p[0] >= lo[0] && p[0] <= hi[0] && p[1] >= lo[1] && p[1] <= hi[1])
            .map(|(i, _)| i as u64)
            .collect();
        expect.sort_unstable();
        let mut got: Vec<u64> = tree.range(&lo, &hi).into_iter().map(|(o, _)| o).collect();
        got.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn bulk_load_matches_linear_scan_range() {
        let ps = seeded_points(2000, 3, 7);
        let tree = RTree::bulk_load(&ps, small_params());
        tree.check_invariants();
        let lo = [0.1, 0.1, 0.1];
        let hi = [0.6, 0.8, 0.9];
        let mut expect: Vec<u64> = ps
            .iter()
            .filter(|(_, p)| {
                p.iter()
                    .zip(lo.iter().zip(hi.iter()))
                    .all(|(&x, (&l, &h))| l <= x && x <= h)
            })
            .map(|(i, _)| i as u64)
            .collect();
        expect.sort_unstable();
        let mut got: Vec<u64> = tree.range(&lo, &hi).into_iter().map(|(o, _)| o).collect();
        got.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn delete_removes_exactly_the_requested_entry() {
        let ps = seeded_points(300, 2, 3);
        let tree = RTree::bulk_load(&ps, small_params());
        assert!(tree.contains(ps.get(17), 17));
        assert!(tree.delete(ps.get(17), 17));
        assert!(!tree.contains(ps.get(17), 17));
        assert!(!tree.delete(ps.get(17), 17), "double delete must fail");
        assert_eq!(tree.len(), 299);
        tree.check_invariants();
    }

    #[test]
    fn delete_everything_empties_the_tree() {
        let ps = seeded_points(200, 2, 11);
        let tree = RTree::bulk_load(&ps, small_params());
        for (i, p) in ps.iter() {
            assert!(tree.delete(p, i as u64), "entry {i} vanished early");
            if i % 37 == 0 {
                tree.check_invariants();
            }
        }
        assert!(tree.is_empty());
        assert_eq!(tree.height(), 1);
        tree.check_invariants();
    }

    #[test]
    fn interleaved_inserts_and_deletes_stay_consistent() {
        let ps = seeded_points(400, 2, 99);
        let tree = RTree::new(2, small_params());
        for (i, p) in ps.iter().take(200) {
            tree.insert(p, i as u64);
        }
        for (i, p) in ps.iter().take(100) {
            assert!(tree.delete(p, i as u64));
        }
        for (i, p) in ps.iter().skip(200) {
            tree.insert(p, i as u64);
        }
        tree.check_invariants();
        assert_eq!(tree.len(), 300);
        // remaining = 100..400
        let mut seen = Vec::new();
        tree.for_each_point(|oid, _| seen.push(oid));
        seen.sort_unstable();
        let expect: Vec<u64> = (100..400).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn duplicate_points_with_distinct_ids_coexist() {
        let tree = RTree::new(2, small_params());
        for i in 0..50 {
            tree.insert(&[0.5, 0.5], i);
        }
        assert_eq!(tree.len(), 50);
        assert!(tree.delete(&[0.5, 0.5], 17));
        assert!(!tree.contains(&[0.5, 0.5], 17));
        assert!(tree.contains(&[0.5, 0.5], 18));
        tree.check_invariants();
    }

    #[test]
    fn queries_cost_io_and_buffer_absorbs_repeats() {
        let ps = seeded_points(5000, 2, 5);
        let tree = RTree::bulk_load(
            &ps,
            RTreeParams {
                page_size: 512,
                min_fill_ratio: 0.4,
                buffer_capacity: 4096,
            },
        );
        tree.reset_io_stats();
        let _ = tree.range(&[0.0, 0.0], &[1.0, 1.0]); // full scan, cold
        let cold = tree.io_stats();
        assert!(cold.physical_reads > 0);
        let _ = tree.range(&[0.0, 0.0], &[1.0, 1.0]); // warm: all hits
        let warm = tree.io_stats().since(cold);
        assert_eq!(warm.physical_reads, 0, "warm scan should be all hits");
        assert!(warm.logical > 0);
    }

    #[test]
    fn resharding_preserves_data_capacity_and_stats() {
        let ps = seeded_points(2_000, 2, 23);
        let mut tree = RTree::bulk_load(&ps, small_params());
        let _ = tree.range(&[0.0, 0.0], &[0.3, 0.3]);
        let stats_before = tree.io_stats();
        let cap_before = tree.buffer_capacity();
        assert_eq!(tree.buffer_shards(), 1);

        tree.set_buffer_shards(4);
        assert_eq!(tree.buffer_shards(), 4);
        assert_eq!(tree.buffer_capacity(), cap_before);
        // read-only tree: no dirty pages, counters carry over unchanged
        assert_eq!(tree.io_stats(), stats_before, "counters carry over");
        tree.check_invariants();

        // queries still return the same answers through the sharded pool
        let mut got: Vec<u64> = tree
            .range(&[0.2, 0.2], &[0.8, 0.8])
            .into_iter()
            .map(|(o, _)| o)
            .collect();
        got.sort_unstable();
        let mut expect: Vec<u64> = ps
            .iter()
            .filter(|(_, p)| p.iter().all(|&x| (0.2..=0.8).contains(&x)))
            .map(|(i, _)| i as u64)
            .collect();
        expect.sort_unstable();
        assert_eq!(got, expect);

        // dirty pages flushed by a re-shard must stay in the counters
        tree.insert(&[0.5, 0.5], 999_999);
        let writes_before = tree.io_stats().physical_writes;
        tree.set_buffer_shards(2);
        assert!(
            tree.io_stats().physical_writes > writes_before,
            "flush-on-reshard write-backs must be accounted"
        );
        tree.check_invariants();
    }

    #[test]
    fn empty_tree_behaves() {
        let tree = RTree::new(3, small_params());
        assert!(tree.is_empty());
        assert_eq!(tree.range(&[0.0; 3], &[1.0; 3]), vec![]);
        assert!(!tree.delete(&[0.5; 3], 0));
        tree.check_invariants();
    }

    // ------------------------------------------------------------------
    // Epoch snapshots
    // ------------------------------------------------------------------

    #[test]
    fn mutations_bump_the_epoch() {
        let tree = RTree::new(2, small_params());
        let e0 = tree.epoch();
        tree.insert(&[0.1, 0.2], 1);
        assert_eq!(tree.epoch(), e0 + 1);
        tree.insert(&[0.3, 0.4], 2);
        assert_eq!(tree.epoch(), e0 + 2);
        tree.delete(&[0.1, 0.2], 1);
        assert_eq!(tree.epoch(), e0 + 3);
        // a failed delete publishes nothing
        tree.delete(&[0.9, 0.9], 777);
        assert_eq!(tree.epoch(), e0 + 3);
    }

    #[test]
    fn pinned_snapshot_sees_the_old_version_across_mutations() {
        let ps = seeded_points(800, 2, 31);
        let tree = RTree::bulk_load(&ps, small_params());
        let snap = tree.snapshot();
        let len_before = snap.len();

        // Mutate heavily while the snapshot is pinned.
        for (i, p) in ps.iter().take(400) {
            assert!(tree.delete(p, i as u64));
        }
        for i in 0..100u64 {
            tree.insert(&[0.5, 0.5], 10_000 + i);
        }
        assert_eq!(tree.len(), 500);

        // The pinned snapshot still traverses its frozen version.
        let mut count = 0u64;
        let mut stack = vec![snap.root_page()];
        while let Some(pid) = stack.pop() {
            let node = tree.read_node(pid);
            match &*node {
                Node::Leaf(l) => count += l.len() as u64,
                Node::Inner(n) => {
                    for i in 0..n.len() {
                        stack.push(n.child(i));
                    }
                }
            }
        }
        assert_eq!(count, len_before, "snapshot traversal must be frozen");
        drop(snap);

        // After the pin drops, retired pages are reclaimed: the live page
        // count reflects only the current version.
        tree.check_invariants();
        let live = tree.page_count();
        let rebuilt = {
            let mut ps2 = PointSet::with_capacity(2, 500);
            tree.for_each_point(|_, p| {
                ps2.push(p);
            });
            RTree::bulk_load(&ps2, small_params())
        };
        // A packed bulk-loaded tree is denser; COW trees may be sparser,
        // but not wildly so (retired pages must actually be freed).
        assert!(
            live < rebuilt.page_count() * 4 + 8,
            "retired pages were not reclaimed: {live} live vs {} packed",
            rebuilt.page_count()
        );
    }

    #[test]
    fn dropping_the_last_pin_frees_retired_pages() {
        let tree = RTree::new(2, small_params());
        for i in 0..200u64 {
            tree.insert(&[(i as f64) / 200.0, 0.5], i);
        }
        let pages_settled = tree.page_count();
        let snap = tree.snapshot();
        for i in 0..100u64 {
            assert!(tree.delete(&[(i as f64) / 200.0, 0.5], i));
        }
        let pinned_pages = tree.page_count();
        drop(snap);
        let after = tree.page_count();
        assert!(
            after < pinned_pages,
            "unpinning must reclaim retired pages ({pinned_pages} -> {after})"
        );
        assert!(after <= pages_settled, "shrunken tree must not hold more");
        tree.check_invariants();
    }

    // ------------------------------------------------------------------
    // Disk persistence
    // ------------------------------------------------------------------

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("mpq_tree_disk_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn checkpoint_and_open_round_trip_on_disk() {
        let path = tmp("round_trip.pages");
        let ps = seeded_points(700, 2, 77);
        {
            let store = DiskPager::create(&path, 256).unwrap();
            let tree = RTree::bulk_load_in(
                store,
                &ps,
                RTreeParams {
                    page_size: 256,
                    min_fill_ratio: 0.4,
                    buffer_capacity: 64,
                },
            );
            tree.insert(&[0.25, 0.75], 9_001);
            assert!(tree.delete(ps.get(3), 3));
            tree.checkpoint(b"wal=42").unwrap();
        }
        let store = DiskPager::open(&path, 256).unwrap();
        let (tree, extra) = RTree::open(store, 64).unwrap();
        assert_eq!(extra, b"wal=42");
        assert_eq!(tree.len(), 700); // 700 bulk + 1 insert - 1 delete
        assert!(tree.contains(&[0.25, 0.75], 9_001));
        assert!(!tree.contains(ps.get(3), 3));
        tree.check_invariants();

        // Every point survives bit-identically.
        let mut seen: Vec<(u64, Vec<f64>)> = Vec::new();
        tree.for_each_point(|o, p| seen.push((o, p.to_vec())));
        seen.sort_by_key(|(o, _)| *o);
        let mut expect: Vec<(u64, Vec<f64>)> = ps
            .iter()
            .filter(|(i, _)| *i != 3)
            .map(|(i, p)| (i as u64, p.to_vec()))
            .collect();
        expect.push((9_001, vec![0.25, 0.75]));
        expect.sort_by_key(|(o, _)| *o);
        assert_eq!(seen, expect);
    }

    #[test]
    fn open_recovers_the_free_list_from_reachability() {
        let path = tmp("free_list.pages");
        let ps = seeded_points(500, 2, 13);
        let live_at_checkpoint;
        {
            let store = DiskPager::create(&path, 256).unwrap();
            let tree = RTree::bulk_load_in(
                store,
                &ps,
                RTreeParams {
                    page_size: 256,
                    min_fill_ratio: 0.4,
                    buffer_capacity: 64,
                },
            );
            // Mutate so retired pages pile up in the file...
            for (i, p) in ps.iter().take(100) {
                assert!(tree.delete(p, i as u64));
            }
            live_at_checkpoint = tree.page_count();
            tree.checkpoint(&[]).unwrap();
        }
        let store = DiskPager::open(&path, 256).unwrap();
        let (tree, _) = RTree::open(store, 64).unwrap();
        // ...and reopening frees everything unreachable: page bound may
        // exceed live pages, but live pages match the checkpoint.
        assert_eq!(tree.page_count(), live_at_checkpoint);
        // New allocations recycle recovered free ids rather than growing
        // the file.
        let bound_before = tree.buf.page_bound();
        tree.insert(&[0.5, 0.5], 55_555);
        assert_eq!(tree.buf.page_bound(), bound_before);
        tree.check_invariants();
    }

    #[test]
    fn uncheckpointed_mutations_roll_back_to_the_last_checkpoint() {
        let path = tmp("rollback.pages");
        let ps = seeded_points(300, 2, 21);
        {
            let store = DiskPager::create(&path, 256).unwrap();
            let tree = RTree::bulk_load_in(
                store,
                &ps,
                RTreeParams {
                    page_size: 256,
                    min_fill_ratio: 0.4,
                    buffer_capacity: 64,
                },
            );
            tree.checkpoint(b"v1").unwrap();
            // Post-checkpoint mutations are never committed...
            tree.insert(&[0.5, 0.5], 777);
            assert!(tree.delete(ps.get(0), 0));
            // (no checkpoint; simulated crash)
        }
        let store = DiskPager::open(&path, 256).unwrap();
        let (tree, extra) = RTree::open(store, 64).unwrap();
        assert_eq!(extra, b"v1");
        assert_eq!(tree.len(), 300, "uncheckpointed mutations discarded");
        assert!(tree.contains(ps.get(0), 0));
        assert!(!tree.contains(&[0.5, 0.5], 777));
        tree.check_invariants();
    }
}
