//! Per-run I/O attribution over a shared tree.
//!
//! [`crate::RTree`] keeps one global [`IoStats`] counter in its buffer
//! pool. That is the right granularity when every query owns its tree,
//! but a long-lived engine serves *many* concurrent evaluations from the
//! same index: diffing global snapshots around a run would silently mix
//! in every other thread's page traffic.
//!
//! [`IoSession`] is the run-scoped view: a lightweight handle that
//! forwards reads to the shared tree (global counters still advance, so
//! whole-system accounting keeps working) while attributing each logical
//! access — and each buffer miss it caused — to the session itself.
//! Algorithms that traverse the tree are generic over [`NodeSource`], so
//! the same code path runs against a bare [`crate::RTree`] or against a
//! session.
//!
//! A hit/miss verdict depends on the shared LRU buffer state, so the
//! *physical* counts of one session are affected by concurrent sessions
//! warming or evicting pages (exactly like two queries on one database).
//! The *logical* counts are deterministic per run.

use std::cell::Cell;
use std::sync::Arc;

use crate::node::Node;
use crate::pager::PageId;
use crate::stats::IoStats;
use crate::topk::{LinearScorer, RankedHit, RankedIter, Scorer};
use crate::tree::{RTree, Snapshot};

/// Read access to an R-tree's nodes, with I/O accounting.
///
/// Implemented by [`RTree`] itself (accounting goes to the tree's global
/// counters) and by [`IoSession`] (accounting additionally goes to the
/// session). Traversal algorithms — ranked search, BBS skyline — are
/// generic over this trait so callers choose the attribution scope.
pub trait NodeSource {
    /// Dimensionality of the indexed space.
    fn dim(&self) -> usize;

    /// Page id of the root node.
    fn root_page(&self) -> PageId;

    /// Number of indexed points.
    fn len(&self) -> u64;

    /// True iff the tree holds no points.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fetch a node through the buffer pool, charging the access to this
    /// source's accounting scope.
    fn read_node(&self, pid: PageId) -> Arc<Node>;

    /// Snapshot of the I/O counters of this accounting scope.
    fn io_snapshot(&self) -> IoStats;
}

impl NodeSource for RTree {
    #[inline]
    fn dim(&self) -> usize {
        RTree::dim(self)
    }

    #[inline]
    fn root_page(&self) -> PageId {
        RTree::root_page(self)
    }

    #[inline]
    fn len(&self) -> u64 {
        RTree::len(self)
    }

    #[inline]
    fn read_node(&self, pid: PageId) -> Arc<Node> {
        RTree::read_node(self, pid)
    }

    #[inline]
    fn io_snapshot(&self) -> IoStats {
        self.io_stats()
    }
}

impl<T: NodeSource + ?Sized> NodeSource for &T {
    #[inline]
    fn dim(&self) -> usize {
        (**self).dim()
    }

    #[inline]
    fn root_page(&self) -> PageId {
        (**self).root_page()
    }

    #[inline]
    fn len(&self) -> u64 {
        (**self).len()
    }

    #[inline]
    fn read_node(&self, pid: PageId) -> Arc<Node> {
        (**self).read_node(pid)
    }

    #[inline]
    fn io_snapshot(&self) -> IoStats {
        (**self).io_snapshot()
    }
}

/// A run-scoped I/O accounting handle over a shared [`RTree`].
///
/// Every read issued through the session advances both the tree's global
/// counters and the session's private ones; [`IoSession::stats`] then
/// reports exactly the traffic this run caused, no matter how many other
/// sessions hammer the same tree concurrently (each from its own
/// thread — the session itself is single-threaded and `!Sync`).
///
/// Opening a session pins a [`Snapshot`] of the current epoch: the whole
/// run traverses one frozen version of the tree, unaffected by
/// concurrent mutations, and pages of that version stay allocated until
/// the session drops.
pub struct IoSession<'t> {
    tree: &'t RTree,
    snap: Snapshot<'t>,
    logical: Cell<u64>,
    physical_reads: Cell<u64>,
}

impl<'t> IoSession<'t> {
    /// Open a session over `tree` with zeroed counters, pinned to the
    /// tree's current epoch.
    pub fn new(tree: &'t RTree) -> IoSession<'t> {
        IoSession {
            tree,
            snap: tree.snapshot(),
            logical: Cell::new(0),
            physical_reads: Cell::new(0),
        }
    }

    /// The epoch this session is pinned to.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.snap.epoch()
    }

    /// The underlying shared tree.
    #[inline]
    pub fn tree(&self) -> &'t RTree {
        self.tree
    }

    /// I/O charged to this session so far. Sessions never write (they
    /// are read-only views), so `physical_writes` is always zero.
    pub fn stats(&self) -> IoStats {
        IoStats {
            logical: self.logical.get(),
            physical_reads: self.physical_reads.get(),
            ..IoStats::default()
        }
    }

    /// Incremental ranked search (descending `weights · point`) charged
    /// to this session.
    ///
    /// # Panics
    /// Panics if `weights.len() != self.tree().dim()`.
    pub fn ranked_iter<'s>(&'s self, weights: &[f64]) -> RankedIter<'s, LinearScorer, Self> {
        assert_eq!(
            weights.len(),
            self.tree.dim(),
            "weight vector dimensionality mismatch"
        );
        RankedIter::with_scorer(self, LinearScorer::new(weights))
    }

    /// Ranked search under an arbitrary [`Scorer`], charged to this
    /// session.
    pub fn ranked_iter_by<'s, S: Scorer>(&'s self, scorer: S) -> RankedIter<'s, S, Self> {
        RankedIter::with_scorer(self, scorer)
    }

    /// The single best point under `weights` (`None` on an empty tree).
    pub fn top1(&self, weights: &[f64]) -> Option<RankedHit> {
        self.ranked_iter(weights).next()
    }
}

impl NodeSource for IoSession<'_> {
    #[inline]
    fn dim(&self) -> usize {
        self.tree.dim()
    }

    #[inline]
    fn root_page(&self) -> PageId {
        self.snap.root_page()
    }

    #[inline]
    fn len(&self) -> u64 {
        self.snap.len()
    }

    fn read_node(&self, pid: PageId) -> Arc<Node> {
        let (node, missed) = self.tree.read_node_probe(pid);
        self.logical.set(self.logical.get() + 1);
        if missed {
            self.physical_reads.set(self.physical_reads.get() + 1);
        }
        node
    }

    #[inline]
    fn io_snapshot(&self) -> IoStats {
        self.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::points::PointSet;
    use crate::tree::RTreeParams;

    fn seeded_points(n: usize, dim: usize, seed: u64) -> PointSet {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut ps = PointSet::with_capacity(dim, n);
        for _ in 0..n {
            let p: Vec<f64> = (0..dim).map(|_| next()).collect();
            ps.push(&p);
        }
        ps
    }

    fn tree() -> RTree {
        RTree::bulk_load(
            &seeded_points(3_000, 2, 17),
            RTreeParams {
                page_size: 256,
                min_fill_ratio: 0.4,
                buffer_capacity: 32,
            },
        )
    }

    #[test]
    fn session_reads_advance_both_scopes() {
        let t = tree();
        let global_before = t.io_stats();
        let s = IoSession::new(&t);
        let hit = s.top1(&[0.5, 0.5]).unwrap();
        assert!(hit.score > 0.0);
        let local = s.stats();
        assert!(local.logical > 0);
        assert!(local.physical_reads > 0, "cold buffer: misses expected");
        let global = t.io_stats().since(global_before);
        assert_eq!(global.logical, local.logical);
        assert_eq!(global.physical_reads, local.physical_reads);
    }

    #[test]
    fn two_sessions_account_independently() {
        let t = tree();
        let a = IoSession::new(&t);
        let b = IoSession::new(&t);
        let _ = a.top1(&[0.9, 0.1]);
        let after_a = a.stats();
        let _ = b.top1(&[0.1, 0.9]);
        assert_eq!(a.stats(), after_a, "b's reads must not leak into a");
        assert!(b.stats().logical > 0);
    }

    #[test]
    fn session_results_match_tree_results() {
        let t = tree();
        let s = IoSession::new(&t);
        for w in [[1.0, 0.0], [0.0, 1.0], [0.3, 0.7]] {
            let via_session: Vec<u64> = s.ranked_iter(&w).take(20).map(|h| h.oid).collect();
            let via_tree: Vec<u64> = t.ranked_iter(&w).take(20).map(|h| h.oid).collect();
            assert_eq!(via_session, via_tree);
        }
    }

    #[test]
    fn logical_counts_are_deterministic_physical_depend_on_buffer() {
        let t = tree();
        let s1 = IoSession::new(&t);
        let _ = s1.ranked_iter(&[0.5, 0.5]).take(50).count();
        let s2 = IoSession::new(&t);
        let _ = s2.ranked_iter(&[0.5, 0.5]).take(50).count();
        assert_eq!(s1.stats().logical, s2.stats().logical);
        // the second run found a warmer buffer
        assert!(s2.stats().physical_reads <= s1.stats().physical_reads);
    }

    #[test]
    fn session_is_pinned_across_concurrent_mutations() {
        let t = tree();
        let s = IoSession::new(&t);
        let before: Vec<u64> = s.ranked_iter(&[0.5, 0.5]).take(10).map(|h| h.oid).collect();
        // Delete the session's current best and insert a dominating point.
        let top = s.top1(&[0.5, 0.5]).unwrap();
        assert!(t.delete(&top.point, top.oid));
        t.insert(&[1.0, 1.0], 999_999);
        // The pinned session still answers from its frozen epoch...
        let after: Vec<u64> = s.ranked_iter(&[0.5, 0.5]).take(10).map(|h| h.oid).collect();
        assert_eq!(before, after);
        // ...while a fresh session sees the new version.
        let s2 = IoSession::new(&t);
        assert_eq!(s2.top1(&[0.5, 0.5]).unwrap().oid, 999_999);
        assert!(s2.epoch() > s.epoch());
    }
}
