//! Sharded LRU buffer pool caching decoded nodes above the pager.
//!
//! The paper's experiments use "an LRU memory buffer with default size 2%
//! of the tree size"; all reported I/O numbers are physical accesses that
//! miss this buffer. [`BufferPool`] implements exactly that: a bounded
//! cache of decoded nodes with O(1) least-recently-used eviction
//! (hash map + intrusive doubly-linked list), write-back of dirty pages,
//! and the [`IoStats`] counters.
//!
//! # Sharding
//!
//! A long-lived engine serves many concurrent evaluations from one tree,
//! and with a single lock every node access of every thread funnels
//! through the same mutex. The pool is therefore split into `N` **lock
//! shards keyed by page id** (`pid % N`): concurrent `get` calls on
//! pages of different shards never contend, and the pager below is an
//! `RwLock`, so cache misses on distinct pages decode concurrently too.
//!
//! Sharding changes *synchronization*, not *semantics*:
//!
//! * the **capacity is a global bound** — per-shard LRU bounds sum to
//!   exactly the configured capacity (shard `i` gets `cap/N`, with the
//!   remainder spread over the first `cap % N` shards), and
//!   [`BufferPool::set_capacity`] / [`BufferPool::clear`] evict down to
//!   the global bound across every shard;
//! * the [`IoStats`] counters are kept per shard and summed on read, so
//!   whole-pool accounting stays exact;
//! * with one shard (the [`BufferPool::new`] default) the pool is
//!   bit-for-bit the classic single-LRU of the paper's experiments —
//!   eviction order, counters, everything.
//!
//! A shard whose capacity share is zero (more shards than buffer pages)
//! caches nothing: reads on it are served straight from the pager and
//! writes go through immediately. Eviction is LRU *within* a shard; with
//! `N > 1` the global reference order is only approximated, which is the
//! usual trade sharded caches make.
//!
//! Nodes are handed out as `Arc<Node>` clones so read paths never copy
//! node payloads; writers install fresh nodes with [`BufferPool::put`].

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::node::Node;
use crate::pager::{PageId, PageStore};
use crate::stats::IoStats;

const NIL: usize = usize::MAX;

struct Frame {
    pid: u32,
    node: Arc<Node>,
    dirty: bool,
    prev: usize,
    next: usize,
}

struct Shard {
    map: HashMap<u32, usize>,
    frames: Vec<Frame>,
    free_slots: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    stats: IoStats,
    scratch: Vec<u8>,
}

/// A thread-safe, sharded LRU buffer pool over any [`PageStore`]
/// (in-memory [`crate::pager::MemPager`] or file-backed
/// [`crate::disk::DiskPager`]).
///
/// All node traffic of an [`crate::RTree`] flows through this type, which
/// is what makes the I/O accounting exact: `logical` counts every request,
/// `physical_reads` counts misses, `physical_writes` counts dirty
/// write-backs (and a disk-backed store contributes its `disk_*` device
/// counters). See the [module docs](self) for the sharding model.
pub struct BufferPool {
    store: RwLock<Box<dyn PageStore>>,
    dim: usize,
    page_size: usize,
    cap: AtomicUsize,
    shards: Box<[Mutex<Shard>]>,
    /// Dirty write-backs that failed at the store. Each failure leaves
    /// the frame resident and dirty (possibly over-admitting its shard
    /// past the capacity share) so no committed data is lost; a later
    /// [`BufferPool::flush`] or eviction retries the write.
    write_failures: AtomicU64,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("capacity", &self.capacity())
            .field("shards", &self.shards.len())
            .field("resident", &self.resident())
            .field("stats", &self.stats())
            .finish()
    }
}

impl BufferPool {
    /// Create a single-shard pool over `store` caching up to `capacity`
    /// nodes of a `dim`-dimensional tree — the classic one-lock LRU.
    /// Capacities below 1 are clamped to 1.
    pub fn new<S: PageStore + 'static>(store: S, dim: usize, capacity: usize) -> BufferPool {
        BufferPool::with_shards(store, dim, capacity, 1)
    }

    /// Create a pool with `shards` lock shards (clamped to ≥ 1). The
    /// `capacity` is the **global** bound across all shards.
    pub fn with_shards<S: PageStore + 'static>(
        store: S,
        dim: usize,
        capacity: usize,
        shards: usize,
    ) -> BufferPool {
        BufferPool::with_boxed_store(Box::new(store), dim, capacity, shards)
    }

    /// Like [`BufferPool::with_shards`] but taking an already-boxed store
    /// (avoids double boxing when a pool is rebuilt around an existing
    /// store, e.g. on re-sharding).
    pub fn with_boxed_store(
        store: Box<dyn PageStore>,
        dim: usize,
        capacity: usize,
        shards: usize,
    ) -> BufferPool {
        let page = store.page_size();
        let n = shards.max(1);
        let shards = (0..n)
            .map(|_| {
                Mutex::new(Shard {
                    map: HashMap::new(),
                    frames: Vec::new(),
                    free_slots: Vec::new(),
                    head: NIL,
                    tail: NIL,
                    stats: IoStats::default(),
                    scratch: vec![0u8; page],
                })
            })
            .collect();
        BufferPool {
            store: RwLock::new(store),
            dim,
            page_size: page,
            cap: AtomicUsize::new(capacity.max(1)),
            shards,
            write_failures: AtomicU64::new(0),
        }
    }

    /// Number of lock shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    #[inline]
    fn shard_of(&self, pid: PageId) -> usize {
        pid.0 as usize % self.shards.len()
    }

    /// Capacity share of shard `i`: `cap/N` plus one of the `cap % N`
    /// remainder pages. Shares sum to exactly the global capacity.
    #[inline]
    fn share(&self, i: usize) -> usize {
        let cap = self.cap.load(Ordering::Relaxed);
        let n = self.shards.len();
        cap / n + usize::from(i < cap % n)
    }

    /// Flush every shard and unwrap the underlying store (used when the
    /// pool is rebuilt with a different shard count). Intended for
    /// healthy stores: a frame whose write-back still fails here is
    /// dropped with the pool.
    pub(crate) fn into_store(self) -> Box<dyn PageStore> {
        let _ = self.flush();
        self.store.into_inner()
    }

    /// Seed the aggregate I/O counters (credited to shard 0). Used when a
    /// pool is rebuilt so re-sharding never loses accounting history. The
    /// `disk_*` fields are stripped: the store travels with the rebuild
    /// and keeps its own device counters.
    pub(crate) fn seed_stats(&self, stats: IoStats) {
        self.shards[0].lock().stats = IoStats {
            disk_reads: 0,
            disk_writes: 0,
            fsyncs: 0,
            ..stats
        };
    }

    /// Fetch a node, reading and decoding the page on a miss.
    ///
    /// # Panics
    /// Panics if the store fails the physical read — a read that can
    /// return neither cached nor device bytes has no sound value to
    /// produce. Callers that must survive device loss catch the unwind
    /// at the evaluation boundary (the service worker does).
    pub fn get(&self, pid: PageId) -> Arc<Node> {
        self.get_probe(pid).0
    }

    /// Like [`BufferPool::get`], but also reports whether the request
    /// missed the buffer (i.e. cost a physical read). Used by run-scoped
    /// I/O sessions to attribute the miss to the requesting run.
    ///
    /// # Panics
    /// See [`BufferPool::get`].
    pub fn get_probe(&self, pid: PageId) -> (Arc<Node>, bool) {
        let si = self.shard_of(pid);
        let mut g = self.shards[si].lock();
        g.stats.logical += 1;
        if let Some(&slot) = g.map.get(&pid.0) {
            g.touch(slot);
            return (Arc::clone(&g.frames[slot].node), false);
        }
        g.stats.physical_reads += 1;
        let node = {
            let store = self.store.read();
            store
                .read_into(pid, &mut g.scratch)
                .unwrap_or_else(|e| panic!("unserviceable read of page {pid}: {e}"));
            drop(store);
            Arc::new(Node::decode(self.dim, &g.scratch))
        };
        let share = self.share(si);
        if share > 0 {
            g.install(
                pid,
                Arc::clone(&node),
                false,
                share,
                &self.store,
                &self.write_failures,
            );
        }
        (node, true)
    }

    /// Install a (possibly new) node image for `pid`, marking it dirty.
    /// On a shard with a zero capacity share the page is written through
    /// to the pager instead of cached — unless that write fails, in
    /// which case the frame is cached anyway (over-admitted) so the
    /// update survives for a later flush to retry.
    pub fn put(&self, pid: PageId, node: Node) {
        let si = self.shard_of(pid);
        let mut g = self.shards[si].lock();
        g.stats.logical += 1;
        let node = Arc::new(node);
        if let Some(&slot) = g.map.get(&pid.0) {
            g.frames[slot].node = node;
            g.frames[slot].dirty = true;
            g.touch(slot);
            return;
        }
        let share = self.share(si);
        if share > 0 {
            g.install(pid, node, true, share, &self.store, &self.write_failures);
        } else if g.write_through(pid, &node, &self.store).is_err() {
            self.write_failures.fetch_add(1, Ordering::Relaxed);
            g.force_install(pid, node, true);
        }
    }

    /// Allocate a fresh page in the underlying store.
    pub fn allocate(&self) -> PageId {
        self.store.write().allocate()
    }

    /// Drop any cached copy of `pid` (without write-back) and free the
    /// page in the pager.
    pub fn free(&self, pid: PageId) {
        let si = self.shard_of(pid);
        let mut g = self.shards[si].lock();
        if let Some(slot) = g.map.remove(&pid.0) {
            g.unlink(slot);
            g.frames[slot].node = Arc::new(Node::Leaf(crate::node::LeafNode::new(1)));
            g.free_slots.push(slot);
        }
        self.store.write().free(pid);
    }

    /// Write back all dirty frames (counted as physical writes). Every
    /// frame is attempted; the first store error is returned and the
    /// frames that failed **stay resident and dirty**, so a later flush
    /// can retry once the device recovers.
    pub fn flush(&self) -> io::Result<()> {
        let mut first_err = None;
        for shard in self.shards.iter() {
            let mut g = shard.lock();
            let slots: Vec<usize> = g.map.values().copied().collect();
            for slot in slots {
                if let Err(e) = g.write_back(slot, &self.store) {
                    self.write_failures.fetch_add(1, Ordering::Relaxed);
                    first_err.get_or_insert(e);
                }
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Flush, then drop every cached frame in every shard (a "cold"
    /// buffer), leaving the stats untouched. Useful before measuring a
    /// query from a cold start. A dirty frame whose write-back fails is
    /// **not** dropped (that would lose the only copy); it stays
    /// resident for a later retry, so under an injected store outage the
    /// pool may remain warm.
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            let mut g = shard.lock();
            let slots: Vec<usize> = g.map.values().copied().collect();
            let mut kept = false;
            for slot in slots {
                if g.write_back(slot, &self.store).is_err() {
                    self.write_failures.fetch_add(1, Ordering::Relaxed);
                    kept = true;
                    continue;
                }
                let pid = g.frames[slot].pid;
                g.unlink(slot);
                g.map.remove(&pid);
                g.free_slots.push(slot);
            }
            if !kept && g.map.is_empty() {
                g.frames.clear();
                g.free_slots.clear();
                g.head = NIL;
                g.tail = NIL;
            }
        }
    }

    /// Change the **global** capacity (clamped to ≥ 1), evicting LRU
    /// victims in every shard until the pool is within the new bound:
    /// each shard is trimmed to its share of the global capacity, so the
    /// total resident count never exceeds the bound (unless unwritable
    /// dirty frames force over-admission; see [`BufferPool::flush`]).
    pub fn set_capacity(&self, capacity: usize) {
        self.cap.store(capacity.max(1), Ordering::Relaxed);
        for (i, shard) in self.shards.iter().enumerate() {
            let share = self.share(i);
            let mut g = shard.lock();
            while g.map.len() > share {
                if !g.evict_one(&self.store, &self.write_failures) {
                    break;
                }
            }
        }
    }

    /// Dirty write-backs that have failed at the store so far (each one
    /// left its frame resident and dirty for a retry).
    pub fn write_failures(&self) -> u64 {
        self.write_failures.load(Ordering::Relaxed)
    }

    /// Current global capacity in nodes/pages.
    pub fn capacity(&self) -> usize {
        self.cap.load(Ordering::Relaxed)
    }

    /// Number of nodes currently resident across all shards.
    pub fn resident(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Number of live pages in the store (i.e., size of the tree on
    /// disk, in pages).
    pub fn live_pages(&self) -> usize {
        self.store.read().live_pages()
    }

    /// Page size of the underlying store, in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Snapshot of the I/O counters: buffer traffic summed across shards,
    /// plus the store's device counters (`disk_*`, zero for in-memory
    /// stores).
    pub fn stats(&self) -> IoStats {
        let mut total = IoStats::default();
        for shard in self.shards.iter() {
            total += shard.lock().stats;
        }
        total + self.store.read().disk_stats()
    }

    /// Zero the I/O counters (e.g., after bulk loading, so experiments
    /// measure query cost only).
    pub fn reset_stats(&self) {
        for shard in self.shards.iter() {
            shard.lock().stats = IoStats::default();
        }
        self.store.read().reset_disk_stats();
    }

    /// Flush every dirty frame and checkpoint the underlying store with
    /// `meta` as its recovery metadata (a no-op for in-memory stores).
    /// If any write-back fails the checkpoint is **not** attempted: a
    /// header must never commit a page image that is not fully on disk.
    pub fn checkpoint(&self, meta: &[u8]) -> std::io::Result<()> {
        self.flush()?;
        self.store.write().checkpoint(meta)
    }

    /// Recovery metadata installed by the store's most recent checkpoint.
    pub fn store_meta(&self) -> Option<Vec<u8>> {
        self.store.read().meta()
    }

    /// Seed the store's free list after recovery (see
    /// [`PageStore::seed_free`]).
    pub fn seed_free(&self, free: &[u32]) {
        self.store.write().seed_free(free);
    }

    /// One past the highest page id ever allocated in the store.
    pub fn page_bound(&self) -> u32 {
        self.store.read().page_bound()
    }
}

impl Shard {
    fn push_front(&mut self, slot: usize) {
        self.frames[slot].prev = NIL;
        self.frames[slot].next = self.head;
        if self.head != NIL {
            self.frames[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.frames[slot].prev, self.frames[slot].next);
        if prev != NIL {
            self.frames[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.frames[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn touch(&mut self, slot: usize) {
        if self.head != slot {
            self.unlink(slot);
            self.push_front(slot);
        }
    }

    fn install(
        &mut self,
        pid: PageId,
        node: Arc<Node>,
        dirty: bool,
        share: usize,
        store: &RwLock<Box<dyn PageStore>>,
        failures: &AtomicU64,
    ) {
        debug_assert!(share > 0, "zero-share shards must not cache");
        while self.map.len() >= share {
            if !self.evict_one(store, failures) {
                // Every candidate victim is dirty and unwritable: admit
                // the newcomer beyond the share rather than lose data or
                // refuse the caller. Later evictions retry the victims.
                break;
            }
        }
        self.force_install(pid, node, dirty);
    }

    /// Insert a frame without evicting (used on over-admission).
    fn force_install(&mut self, pid: PageId, node: Arc<Node>, dirty: bool) {
        let slot = if let Some(s) = self.free_slots.pop() {
            self.frames[s] = Frame {
                pid: pid.0,
                node,
                dirty,
                prev: NIL,
                next: NIL,
            };
            s
        } else {
            self.frames.push(Frame {
                pid: pid.0,
                node,
                dirty,
                prev: NIL,
                next: NIL,
            });
            self.frames.len() - 1
        };
        self.map.insert(pid.0, slot);
        self.push_front(slot);
    }

    /// Evict one frame, scanning victims from the LRU tail toward the
    /// head. A dirty victim whose write-back fails is skipped (it stays
    /// resident so the data survives); returns `false` if no frame could
    /// be evicted.
    fn evict_one(&mut self, store: &RwLock<Box<dyn PageStore>>, failures: &AtomicU64) -> bool {
        debug_assert!(self.tail != NIL, "evict called on empty shard");
        let mut victim = self.tail;
        while victim != NIL {
            match self.write_back(victim, store) {
                Ok(()) => {
                    let pid = self.frames[victim].pid;
                    self.unlink(victim);
                    self.map.remove(&pid);
                    self.free_slots.push(victim);
                    return true;
                }
                Err(_) => {
                    failures.fetch_add(1, Ordering::Relaxed);
                    victim = self.frames[victim].prev;
                }
            }
        }
        false
    }

    fn write_back(&mut self, slot: usize, store: &RwLock<Box<dyn PageStore>>) -> io::Result<()> {
        if !self.frames[slot].dirty {
            return Ok(());
        }
        let pid = PageId(self.frames[slot].pid);
        let node = Arc::clone(&self.frames[slot].node);
        self.encode_and_write(pid, &node, store)?;
        self.frames[slot].dirty = false;
        self.stats.physical_writes += 1;
        Ok(())
    }

    /// Uncached write of `node` to `pid` (zero-share shards).
    fn write_through(
        &mut self,
        pid: PageId,
        node: &Node,
        store: &RwLock<Box<dyn PageStore>>,
    ) -> io::Result<()> {
        self.encode_and_write(pid, node, store)?;
        self.stats.physical_writes += 1;
        Ok(())
    }

    fn encode_and_write(
        &mut self,
        pid: PageId,
        node: &Node,
        store: &RwLock<Box<dyn PageStore>>,
    ) -> io::Result<()> {
        self.scratch.fill(0);
        node.encode(&mut self.scratch);
        let len = node.encoded_len();
        store.write().write(pid, &self.scratch[..len])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::LeafNode;
    use crate::pager::MemPager;

    fn leaf_node(dim: usize, seed: f64) -> Node {
        let mut n = LeafNode::new(dim);
        n.push(&vec![seed; dim], seed as u64);
        Node::Leaf(n)
    }

    fn pool(cap: usize) -> (BufferPool, Vec<PageId>) {
        pool_sharded(cap, 1)
    }

    fn pool_sharded(cap: usize, shards: usize) -> (BufferPool, Vec<PageId>) {
        let pager = MemPager::new(256);
        let pool = BufferPool::with_shards(pager, 2, cap, shards);
        let mut pids = Vec::new();
        for i in 0..5 {
            let pid = pool.allocate();
            pool.put(pid, leaf_node(2, i as f64 * 0.1));
            pids.push(pid);
        }
        pool.flush().unwrap();
        (pool, pids)
    }

    #[test]
    fn hit_does_not_cost_physical_read() {
        let (pool, pids) = pool(8);
        pool.reset_stats();
        let a = pool.get(pids[0]);
        let b = pool.get(pids[0]);
        assert!(Arc::ptr_eq(&a, &b));
        let s = pool.stats();
        assert_eq!(s.logical, 2);
        assert_eq!(s.physical_reads, 0, "both were buffer hits");
    }

    #[test]
    fn miss_after_eviction_costs_read() {
        let (pool, pids) = pool(2);
        pool.clear();
        pool.reset_stats();
        pool.get(pids[0]);
        pool.get(pids[1]);
        pool.get(pids[2]); // evicts pids[0]
        pool.get(pids[0]); // miss again
        let s = pool.stats();
        assert_eq!(s.physical_reads, 4);
    }

    #[test]
    fn lru_order_protects_recently_used() {
        let (pool, pids) = pool(2);
        pool.clear();
        pool.reset_stats();
        pool.get(pids[0]);
        pool.get(pids[1]);
        pool.get(pids[0]); // touch 0 so 1 is the LRU victim
        pool.get(pids[2]); // evicts 1
        pool.get(pids[0]); // still resident -> hit
        let s = pool.stats();
        assert_eq!(s.physical_reads, 3, "pids[0] stayed hot");
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let pager = MemPager::new(256);
        let pool = BufferPool::new(pager, 2, 1);
        let a = pool.allocate();
        let b = pool.allocate();
        pool.put(a, leaf_node(2, 0.25)); // dirty
        pool.put(b, leaf_node(2, 0.5)); // evicts a -> must write it
        let s = pool.stats();
        assert_eq!(s.physical_writes, 1);
        // a round-trips through the pager correctly
        let back = pool.get(a);
        assert_eq!(back.as_leaf().point(0), &[0.25, 0.25]);
    }

    #[test]
    fn flush_writes_all_dirty_frames_once() {
        let (pool, pids) = pool(8);
        pool.reset_stats();
        pool.put(pids[0], leaf_node(2, 0.9));
        pool.put(pids[1], leaf_node(2, 0.8));
        pool.flush().unwrap();
        assert_eq!(pool.stats().physical_writes, 2);
        pool.flush().unwrap(); // now clean: no extra writes
        assert_eq!(pool.stats().physical_writes, 2);
    }

    #[test]
    fn set_capacity_evicts_down_to_bound() {
        let (pool, _pids) = pool(8);
        assert_eq!(pool.resident(), 5);
        pool.set_capacity(2);
        assert_eq!(pool.resident(), 2);
        assert_eq!(pool.capacity(), 2);
    }

    #[test]
    fn free_drops_frame_without_write_back() {
        let (pool, pids) = pool(8);
        pool.reset_stats();
        pool.put(pids[3], leaf_node(2, 0.7)); // dirty
        pool.free(pids[3]);
        assert_eq!(pool.stats().physical_writes, 0);
        assert_eq!(pool.resident(), 4);
    }

    #[test]
    fn clear_leaves_pool_cold_but_consistent() {
        let (pool, pids) = pool(8);
        pool.clear();
        assert_eq!(pool.resident(), 0);
        pool.reset_stats();
        pool.get(pids[4]);
        assert_eq!(pool.stats().physical_reads, 1);
    }

    // ------------------------------------------------------------------
    // Sharded-pool behavior
    // ------------------------------------------------------------------

    #[test]
    fn sharded_pool_round_trips_all_pages() {
        let (pool, pids) = pool_sharded(8, 3);
        assert_eq!(pool.shard_count(), 3);
        for (i, &pid) in pids.iter().enumerate() {
            let node = pool.get(pid);
            assert_eq!(node.as_leaf().point(0), &[i as f64 * 0.1, i as f64 * 0.1]);
        }
    }

    #[test]
    fn shard_shares_sum_to_global_capacity() {
        // cap 5 over 3 shards: shares 2, 2, 1.
        let (pool, _) = pool_sharded(5, 3);
        let shares: Vec<usize> = (0..3).map(|i| pool.share(i)).collect();
        assert_eq!(shares, vec![2, 2, 1]);
        assert_eq!(shares.iter().sum::<usize>(), pool.capacity());
    }

    #[test]
    fn sharded_resident_never_exceeds_global_capacity() {
        // Regression for the shard-boundary semantics: 5 sequential pids
        // over 2 shards (pids 0,2,4 -> shard 0; 1,3 -> shard 1) with
        // global cap 3 (shares 2 + 1). Warming every page must leave
        // exactly share-many residents per shard: 2 + 1 = 3 — the global
        // bound, not a per-shard bound of 3 each.
        let (pool, pids) = pool_sharded(3, 2);
        pool.clear();
        for &pid in &pids {
            pool.get(pid);
        }
        assert_eq!(pool.resident(), 3);
        // shard 0 holds the 2 most recent of {0,2,4}; shard 1 holds 3
        assert!(
            !pool.shards.iter().any(|s| s.lock().map.len() > 2),
            "no shard may exceed its share"
        );
    }

    #[test]
    fn set_capacity_trims_across_shards_to_global_bound() {
        // 5 pages over 4 shards; pids 0..5 land on shards 0,1,2,3,0.
        let (pool, pids) = pool_sharded(8, 4);
        pool.clear();
        for &pid in &pids {
            pool.get(pid);
        }
        assert_eq!(pool.resident(), 5);
        // Global cap 5 -> shares (2,1,1,1): shard 0 keeps both its pages.
        pool.set_capacity(5);
        assert_eq!(pool.resident(), 5);
        // Global cap 2 -> shares (1,1,0,0): shards 2 and 3 fully evict.
        pool.set_capacity(2);
        assert_eq!(pool.resident(), 2, "evicted to the global bound");
        // And a dirty page trimmed away must have been written back.
        pool.reset_stats();
        for &pid in &pids {
            let n = pool.get(pid);
            let _ = n;
        }
        assert!(pool.stats().physical_reads >= 3, "trimmed pages are cold");
    }

    #[test]
    fn zero_share_shard_serves_uncached_reads_and_writes() {
        // cap 1 over 2 shards: shard 1 has share 0 and caches nothing.
        let pager = MemPager::new(256);
        let pool = BufferPool::with_shards(pager, 2, 1, 2);
        let a = pool.allocate(); // pid 0 -> shard 0 (share 1)
        let b = pool.allocate(); // pid 1 -> shard 1 (share 0)
        pool.put(a, leaf_node(2, 0.3));
        pool.put(b, leaf_node(2, 0.6)); // write-through
        assert_eq!(pool.resident(), 1, "only the share-1 shard caches");
        pool.reset_stats();
        let n1 = pool.get(b);
        let n2 = pool.get(b);
        assert_eq!(n1.as_leaf().point(0), &[0.6, 0.6]);
        assert_eq!(n2.as_leaf().point(0), &[0.6, 0.6]);
        let s = pool.stats();
        assert_eq!(s.physical_reads, 2, "share-0 shard never caches");
    }

    #[test]
    fn sharded_clear_leaves_every_shard_cold() {
        let (pool, pids) = pool_sharded(8, 3);
        for &pid in &pids {
            pool.get(pid);
        }
        pool.clear();
        assert_eq!(pool.resident(), 0);
        pool.reset_stats();
        for &pid in &pids {
            pool.get(pid);
        }
        assert_eq!(pool.stats().physical_reads, 5, "all shards were cold");
    }

    #[test]
    fn sharded_stats_sum_exactly() {
        let (pool, pids) = pool_sharded(16, 4);
        pool.clear();
        pool.reset_stats();
        for &pid in &pids {
            pool.get(pid); // 5 misses
        }
        for &pid in &pids {
            pool.get(pid); // 5 hits
        }
        let s = pool.stats();
        assert_eq!(s.logical, 10);
        assert_eq!(s.physical_reads, 5);
    }

    #[test]
    fn concurrent_gets_on_distinct_shards_stay_consistent() {
        use std::sync::Arc as StdArc;
        let (pool, pids) = pool_sharded(8, 4);
        pool.clear();
        pool.reset_stats();
        let pool = StdArc::new(pool);
        let mut handles = Vec::new();
        for t in 0..4usize {
            let pool = StdArc::clone(&pool);
            let pids = pids.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..200 {
                    let pid = pids[(t + i) % pids.len()];
                    let node = pool.get(pid);
                    assert!(!node.as_leaf().is_empty());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.logical, 4 * 200, "every access is counted");
        assert!(pool.resident() <= pool.capacity());
    }

    // ------------------------------------------------------------------
    // Failure resilience (injected store faults)
    // ------------------------------------------------------------------

    use crate::fault::{FaultInjector, FaultKind, FaultOp, FaultPageStore};

    fn faulty_pool(cap: usize) -> (BufferPool, Arc<FaultInjector>) {
        let inj = FaultInjector::shared();
        let store = FaultPageStore::new(MemPager::new(256), Arc::clone(&inj));
        (BufferPool::new(store, 2, cap), inj)
    }

    #[test]
    fn failed_flush_keeps_frames_dirty_for_retry() {
        let (pool, inj) = faulty_pool(8);
        let a = pool.allocate();
        pool.put(a, leaf_node(2, 0.25));
        inj.fail_from(FaultOp::PageWrite, 0, FaultKind::Error);
        assert!(pool.flush().is_err());
        assert!(pool.write_failures() >= 1);
        assert_eq!(pool.resident(), 1, "failed frame stays resident");
        // Device recovers: the retry succeeds and the data lands.
        inj.clear();
        pool.flush().unwrap();
        pool.clear();
        let back = pool.get(a);
        assert_eq!(back.as_leaf().point(0), &[0.25, 0.25]);
    }

    #[test]
    fn clear_never_drops_an_unwritable_dirty_frame() {
        let (pool, inj) = faulty_pool(8);
        let a = pool.allocate();
        pool.put(a, leaf_node(2, 0.75));
        inj.fail_from(FaultOp::PageWrite, 0, FaultKind::Enospc);
        pool.clear();
        assert_eq!(pool.resident(), 1, "dirty frame must survive clear");
        inj.clear();
        pool.flush().unwrap();
        pool.clear();
        assert_eq!(pool.resident(), 0);
        assert_eq!(pool.get(a).as_leaf().point(0), &[0.75, 0.75]);
    }

    #[test]
    fn eviction_over_admits_rather_than_losing_data() {
        let (pool, inj) = faulty_pool(1);
        let a = pool.allocate();
        let b = pool.allocate();
        pool.put(a, leaf_node(2, 0.1)); // dirty, resident
        inj.fail_from(FaultOp::PageWrite, 0, FaultKind::Error);
        pool.put(b, leaf_node(2, 0.2)); // wants to evict a; write-back fails
        assert_eq!(pool.resident(), 2, "over-admitted past capacity 1");
        inj.clear();
        pool.flush().unwrap();
        pool.clear();
        assert_eq!(pool.get(a).as_leaf().point(0), &[0.1, 0.1]);
        assert_eq!(pool.get(b).as_leaf().point(0), &[0.2, 0.2]);
    }

    #[test]
    fn zero_share_write_through_failure_caches_the_frame() {
        // cap 1 over 2 shards: shard 1 has share 0 and writes through.
        let inj = FaultInjector::shared();
        let store = FaultPageStore::new(MemPager::new(256), Arc::clone(&inj));
        let pool = BufferPool::with_shards(store, 2, 1, 2);
        let _a = pool.allocate(); // pid 0 -> shard 0
        let b = pool.allocate(); // pid 1 -> shard 1 (share 0)
        inj.fail_from(FaultOp::PageWrite, 0, FaultKind::Error);
        pool.put(b, leaf_node(2, 0.6)); // write-through fails -> cached
        assert_eq!(pool.resident(), 1, "update must be retained in memory");
        assert_eq!(pool.get(b).as_leaf().point(0), &[0.6, 0.6]);
        inj.clear();
        pool.flush().unwrap();
        pool.clear();
        assert_eq!(pool.get(b).as_leaf().point(0), &[0.6, 0.6]);
    }

    #[test]
    fn checkpoint_is_refused_while_pages_cannot_be_flushed() {
        let (pool, inj) = faulty_pool(4);
        let a = pool.allocate();
        pool.put(a, leaf_node(2, 0.3));
        inj.fail_from(FaultOp::PageWrite, 0, FaultKind::Error);
        assert!(pool.checkpoint(b"meta").is_err());
        inj.clear();
        pool.checkpoint(b"meta").unwrap();
    }
}
