//! LRU buffer pool caching decoded nodes above the pager.
//!
//! The paper's experiments use "an LRU memory buffer with default size 2%
//! of the tree size"; all reported I/O numbers are physical accesses that
//! miss this buffer. [`BufferPool`] implements exactly that: a bounded
//! cache of decoded nodes with O(1) least-recently-used eviction
//! (hash map + intrusive doubly-linked list), write-back of dirty pages,
//! and the [`IoStats`] counters.
//!
//! Nodes are handed out as `Arc<Node>` clones so read paths never copy
//! node payloads; writers install fresh nodes with [`BufferPool::put`].

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::node::Node;
use crate::pager::{MemPager, PageId};
use crate::stats::IoStats;

const NIL: usize = usize::MAX;

struct Frame {
    pid: u32,
    node: Arc<Node>,
    dirty: bool,
    prev: usize,
    next: usize,
}

struct BufInner {
    pager: MemPager,
    dim: usize,
    cap: usize,
    map: HashMap<u32, usize>,
    frames: Vec<Frame>,
    free_slots: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    stats: IoStats,
    scratch: Vec<u8>,
}

/// A thread-safe LRU buffer pool over a [`MemPager`].
///
/// All node traffic of an [`crate::RTree`] flows through this type, which
/// is what makes the I/O accounting exact: `logical` counts every request,
/// `physical_reads` counts misses, `physical_writes` counts dirty
/// write-backs.
pub struct BufferPool {
    inner: Mutex<BufInner>,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let g = self.inner.lock();
        f.debug_struct("BufferPool")
            .field("capacity", &g.cap)
            .field("resident", &g.map.len())
            .field("stats", &g.stats)
            .finish()
    }
}

impl BufferPool {
    /// Create a pool over `pager` caching up to `capacity` nodes of a
    /// `dim`-dimensional tree. Capacities below 1 are clamped to 1.
    pub fn new(pager: MemPager, dim: usize, capacity: usize) -> BufferPool {
        let page = pager.page_size();
        BufferPool {
            inner: Mutex::new(BufInner {
                pager,
                dim,
                cap: capacity.max(1),
                map: HashMap::new(),
                frames: Vec::new(),
                free_slots: Vec::new(),
                head: NIL,
                tail: NIL,
                stats: IoStats::default(),
                scratch: vec![0u8; page],
            }),
        }
    }

    /// Fetch a node, reading and decoding the page on a miss.
    pub fn get(&self, pid: PageId) -> Arc<Node> {
        self.get_probe(pid).0
    }

    /// Like [`BufferPool::get`], but also reports whether the request
    /// missed the buffer (i.e. cost a physical read). Used by run-scoped
    /// I/O sessions to attribute the miss to the requesting run.
    pub fn get_probe(&self, pid: PageId) -> (Arc<Node>, bool) {
        let mut g = self.inner.lock();
        g.stats.logical += 1;
        if let Some(&slot) = g.map.get(&pid.0) {
            g.touch(slot);
            return (Arc::clone(&g.frames[slot].node), false);
        }
        g.stats.physical_reads += 1;
        let node = Arc::new(Node::decode(g.dim, g.pager.read(pid)));
        g.install(pid, Arc::clone(&node), false);
        (node, true)
    }

    /// Install a (possibly new) node image for `pid`, marking it dirty.
    pub fn put(&self, pid: PageId, node: Node) {
        let mut g = self.inner.lock();
        g.stats.logical += 1;
        let node = Arc::new(node);
        if let Some(&slot) = g.map.get(&pid.0) {
            g.frames[slot].node = node;
            g.frames[slot].dirty = true;
            g.touch(slot);
        } else {
            g.install(pid, node, true);
        }
    }

    /// Allocate a fresh page in the underlying pager.
    pub fn allocate(&self) -> PageId {
        self.inner.lock().pager.allocate()
    }

    /// Drop any cached copy of `pid` (without write-back) and free the
    /// page in the pager.
    pub fn free(&self, pid: PageId) {
        let mut g = self.inner.lock();
        if let Some(slot) = g.map.remove(&pid.0) {
            g.unlink(slot);
            g.frames[slot].node = Arc::new(Node::Leaf(crate::node::LeafNode::new(1)));
            g.free_slots.push(slot);
        }
        g.pager.free(pid);
    }

    /// Write back all dirty frames (counted as physical writes).
    pub fn flush(&self) {
        let mut g = self.inner.lock();
        let slots: Vec<usize> = g.map.values().copied().collect();
        for slot in slots {
            g.write_back(slot);
        }
    }

    /// Flush, then drop every cached frame (a "cold" buffer), leaving the
    /// stats untouched. Useful before measuring a query from a cold start.
    pub fn clear(&self) {
        let mut g = self.inner.lock();
        let slots: Vec<usize> = g.map.values().copied().collect();
        for slot in slots {
            g.write_back(slot);
        }
        g.map.clear();
        g.frames.clear();
        g.free_slots.clear();
        g.head = NIL;
        g.tail = NIL;
    }

    /// Change the capacity (clamped to ≥ 1), evicting LRU victims if the
    /// pool is over the new bound.
    pub fn set_capacity(&self, capacity: usize) {
        let mut g = self.inner.lock();
        g.cap = capacity.max(1);
        while g.map.len() > g.cap {
            g.evict_lru();
        }
    }

    /// Current capacity in nodes/pages.
    pub fn capacity(&self) -> usize {
        self.inner.lock().cap
    }

    /// Number of nodes currently resident.
    pub fn resident(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Number of live pages in the pager (i.e., size of the tree on
    /// "disk", in pages).
    pub fn live_pages(&self) -> usize {
        self.inner.lock().pager.live_pages()
    }

    /// Page size of the underlying pager, in bytes.
    pub fn page_size(&self) -> usize {
        self.inner.lock().pager.page_size()
    }

    /// Snapshot of the I/O counters.
    pub fn stats(&self) -> IoStats {
        self.inner.lock().stats
    }

    /// Zero the I/O counters (e.g., after bulk loading, so experiments
    /// measure query cost only).
    pub fn reset_stats(&self) {
        self.inner.lock().stats = IoStats::default();
    }
}

impl BufInner {
    fn push_front(&mut self, slot: usize) {
        self.frames[slot].prev = NIL;
        self.frames[slot].next = self.head;
        if self.head != NIL {
            self.frames[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.frames[slot].prev, self.frames[slot].next);
        if prev != NIL {
            self.frames[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.frames[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn touch(&mut self, slot: usize) {
        if self.head != slot {
            self.unlink(slot);
            self.push_front(slot);
        }
    }

    fn install(&mut self, pid: PageId, node: Arc<Node>, dirty: bool) {
        while self.map.len() >= self.cap {
            self.evict_lru();
        }
        let slot = if let Some(s) = self.free_slots.pop() {
            self.frames[s] = Frame {
                pid: pid.0,
                node,
                dirty,
                prev: NIL,
                next: NIL,
            };
            s
        } else {
            self.frames.push(Frame {
                pid: pid.0,
                node,
                dirty,
                prev: NIL,
                next: NIL,
            });
            self.frames.len() - 1
        };
        self.map.insert(pid.0, slot);
        self.push_front(slot);
    }

    fn evict_lru(&mut self) {
        let victim = self.tail;
        debug_assert!(victim != NIL, "evict called on empty pool");
        self.write_back(victim);
        let pid = self.frames[victim].pid;
        self.unlink(victim);
        self.map.remove(&pid);
        self.free_slots.push(victim);
    }

    fn write_back(&mut self, slot: usize) {
        if !self.frames[slot].dirty {
            return;
        }
        let pid = PageId(self.frames[slot].pid);
        let node = Arc::clone(&self.frames[slot].node);
        self.scratch.fill(0);
        node.encode(&mut self.scratch);
        let len = node.encoded_len();
        // borrow split: copy out of scratch into pager
        let scratch = std::mem::take(&mut self.scratch);
        self.pager.write(pid, &scratch[..len]);
        self.scratch = scratch;
        self.frames[slot].dirty = false;
        self.stats.physical_writes += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::LeafNode;

    fn leaf_node(dim: usize, seed: f64) -> Node {
        let mut n = LeafNode::new(dim);
        n.push(&vec![seed; dim], seed as u64);
        Node::Leaf(n)
    }

    fn pool(cap: usize) -> (BufferPool, Vec<PageId>) {
        let pager = MemPager::new(256);
        let pool = BufferPool::new(pager, 2, cap);
        let mut pids = Vec::new();
        for i in 0..5 {
            let pid = pool.allocate();
            pool.put(pid, leaf_node(2, i as f64 * 0.1));
            pids.push(pid);
        }
        pool.flush();
        (pool, pids)
    }

    #[test]
    fn hit_does_not_cost_physical_read() {
        let (pool, pids) = pool(8);
        pool.reset_stats();
        let a = pool.get(pids[0]);
        let b = pool.get(pids[0]);
        assert!(Arc::ptr_eq(&a, &b));
        let s = pool.stats();
        assert_eq!(s.logical, 2);
        assert_eq!(s.physical_reads, 0, "both were buffer hits");
    }

    #[test]
    fn miss_after_eviction_costs_read() {
        let (pool, pids) = pool(2);
        pool.clear();
        pool.reset_stats();
        pool.get(pids[0]);
        pool.get(pids[1]);
        pool.get(pids[2]); // evicts pids[0]
        pool.get(pids[0]); // miss again
        let s = pool.stats();
        assert_eq!(s.physical_reads, 4);
    }

    #[test]
    fn lru_order_protects_recently_used() {
        let (pool, pids) = pool(2);
        pool.clear();
        pool.reset_stats();
        pool.get(pids[0]);
        pool.get(pids[1]);
        pool.get(pids[0]); // touch 0 so 1 is the LRU victim
        pool.get(pids[2]); // evicts 1
        pool.get(pids[0]); // still resident -> hit
        let s = pool.stats();
        assert_eq!(s.physical_reads, 3, "pids[0] stayed hot");
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let pager = MemPager::new(256);
        let pool = BufferPool::new(pager, 2, 1);
        let a = pool.allocate();
        let b = pool.allocate();
        pool.put(a, leaf_node(2, 0.25)); // dirty
        pool.put(b, leaf_node(2, 0.5)); // evicts a -> must write it
        let s = pool.stats();
        assert_eq!(s.physical_writes, 1);
        // a round-trips through the pager correctly
        let back = pool.get(a);
        assert_eq!(back.as_leaf().point(0), &[0.25, 0.25]);
    }

    #[test]
    fn flush_writes_all_dirty_frames_once() {
        let (pool, pids) = pool(8);
        pool.reset_stats();
        pool.put(pids[0], leaf_node(2, 0.9));
        pool.put(pids[1], leaf_node(2, 0.8));
        pool.flush();
        assert_eq!(pool.stats().physical_writes, 2);
        pool.flush(); // now clean: no extra writes
        assert_eq!(pool.stats().physical_writes, 2);
    }

    #[test]
    fn set_capacity_evicts_down_to_bound() {
        let (pool, _pids) = pool(8);
        assert_eq!(pool.resident(), 5);
        pool.set_capacity(2);
        assert_eq!(pool.resident(), 2);
        assert_eq!(pool.capacity(), 2);
    }

    #[test]
    fn free_drops_frame_without_write_back() {
        let (pool, pids) = pool(8);
        pool.reset_stats();
        pool.put(pids[3], leaf_node(2, 0.7)); // dirty
        pool.free(pids[3]);
        assert_eq!(pool.stats().physical_writes, 0);
        assert_eq!(pool.resident(), 4);
    }

    #[test]
    fn clear_leaves_pool_cold_but_consistent() {
        let (pool, pids) = pool(8);
        pool.clear();
        assert_eq!(pool.resident(), 0);
        pool.reset_stats();
        pool.get(pids[4]);
        assert_eq!(pool.stats().physical_reads, 1);
    }
}
