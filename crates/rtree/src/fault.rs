//! Deterministic fault injection for the storage stack.
//!
//! Production storage fails in ways unit tests rarely exercise: a full
//! disk mid-commit, a torn page write under power loss, a single flipped
//! bit, an `fsync` that returns `EIO`. This module makes those failures a
//! scriptable *input*: a [`FaultInjector`] carries a schedule of faults
//! keyed by operation class and ordinal ("fail the 3rd WAL fsync",
//! "tear the 7th page write"), and every durability path in the stack
//! consults it — [`crate::disk::DiskPager`] natively, any other
//! [`PageStore`] through the [`FaultPageStore`] wrapper, and the WAL in
//! `mpq_core` through the same shared handle.
//!
//! The injector costs nothing when absent (every seam holds an
//! `Option<Arc<FaultInjector>>` and skips the check when `None`) and one
//! uncontended mutex lock per operation when attached.
//!
//! # Crash-point sweeps
//!
//! [`FaultInjector::crash_at`] drives the chaos harness's crash-point
//! sweep: durability operations (page writes, page syncs, WAL writes,
//! WAL syncs) are numbered globally in execution order; operation `n`
//! fails — torn if it is a write — and **every later durability
//! operation fails too**, simulating a device that died mid-workload.
//! Reads and rollback truncations are exempt so recovery-relevant
//! bookkeeping still works, which mirrors a crash: the process dies, the
//! *file* keeps whatever was durably written.

use std::io;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::pager::{PageId, PageStore};
use crate::stats::IoStats;

/// Classes of injectable storage operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultOp {
    /// A page read from the backing store.
    PageRead,
    /// A page-granular write (tree pages and pager header slots).
    PageWrite,
    /// A pager `fsync` (checkpoint data fence or header commit fence).
    PageSync,
    /// A WAL record append (buffered write).
    WalWrite,
    /// A WAL `fsync` (including the one inside truncation).
    WalSync,
    /// The WAL's rollback truncation after a failed append — failing
    /// this is the "error during error handling" case that wedges the
    /// log. Never part of [`FaultInjector::crash_at`] sweeps.
    WalRollback,
}

/// Number of [`FaultOp`] classes (array-index bound).
const N_OPS: usize = 6;

impl FaultOp {
    /// The operation classes that make state durable — the domain of
    /// [`FaultInjector::crash_at`].
    pub const DURABILITY: [FaultOp; 4] = [
        FaultOp::PageWrite,
        FaultOp::PageSync,
        FaultOp::WalWrite,
        FaultOp::WalSync,
    ];

    #[inline]
    fn index(self) -> usize {
        match self {
            FaultOp::PageRead => 0,
            FaultOp::PageWrite => 1,
            FaultOp::PageSync => 2,
            FaultOp::WalWrite => 3,
            FaultOp::WalSync => 4,
            FaultOp::WalRollback => 5,
        }
    }

    /// `true` iff this class counts toward the global durability-op
    /// ordinal swept by [`FaultInjector::crash_at`].
    #[inline]
    pub fn is_durability(self) -> bool {
        matches!(
            self,
            FaultOp::PageWrite | FaultOp::PageSync | FaultOp::WalWrite | FaultOp::WalSync
        )
    }
}

impl std::fmt::Display for FaultOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            FaultOp::PageRead => "page-read",
            FaultOp::PageWrite => "page-write",
            FaultOp::PageSync => "page-sync",
            FaultOp::WalWrite => "wal-write",
            FaultOp::WalSync => "wal-sync",
            FaultOp::WalRollback => "wal-rollback",
        };
        f.write_str(name)
    }
}

/// What happens when a scheduled fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation fails with an injected I/O error (`EIO`-style).
    Error,
    /// The operation fails with `StorageFull` (ENOSPC).
    Enospc,
    /// A write persists only a prefix of its bytes, then errors — the
    /// classic torn write. Non-write operations just fail.
    Torn,
    /// A write persists with one corrupted byte and *reports success* —
    /// silent corruption, for exercising CRC detection downstream. Reads
    /// corrupt the returned bytes. Non-transfer operations succeed.
    BitFlip,
    /// The operation succeeds after sleeping — a latency spike.
    Delay(Duration),
    /// The operation panics, for exercising unwind containment and lock
    /// poison recovery above the storage layer.
    Panic,
}

/// Outcome of consulting the injector before a write-class operation.
#[derive(Debug)]
pub enum WriteFault {
    /// Perform the write normally.
    Clean,
    /// Write roughly half the payload, then fail with this error.
    Torn(io::Error),
    /// Flip one byte of the payload, then report success.
    BitFlip,
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy)]
struct Plan {
    op: FaultOp,
    nth: u64,
    kind: FaultKind,
    /// Persistent plans fire on every operation `>= nth`; one-shot plans
    /// fire exactly on operation `nth`.
    persistent: bool,
    fired: bool,
}

#[derive(Debug, Default)]
struct Inner {
    counts: [u64; N_OPS],
    /// Global ordinal over durability ops (see [`FaultOp::DURABILITY`]).
    durability_ops: u64,
    injected: u64,
    schedule: Vec<Plan>,
    crash_at: Option<u64>,
}

/// A seeded, scriptable source of storage faults shared by every layer
/// of one engine's storage stack. See the [module docs](self).
#[derive(Debug, Default)]
pub struct FaultInjector {
    inner: Mutex<Inner>,
}

impl FaultInjector {
    /// A fresh injector with an empty schedule (all operations succeed).
    pub fn new() -> FaultInjector {
        FaultInjector::default()
    }

    /// Convenience: a fresh injector already wrapped for sharing.
    pub fn shared() -> Arc<FaultInjector> {
        Arc::new(FaultInjector::new())
    }

    /// Schedule `kind` to fire exactly once, on the `nth` (0-based)
    /// operation of class `op` counted from now.
    pub fn fail_nth(&self, op: FaultOp, nth: u64, kind: FaultKind) {
        self.push_plan(op, nth, kind, false);
    }

    /// Schedule `kind` to fire on **every** operation of class `op` from
    /// the `nth` (0-based) onward — a persistent outage until
    /// [`FaultInjector::clear`].
    pub fn fail_from(&self, op: FaultOp, nth: u64, kind: FaultKind) {
        self.push_plan(op, nth, kind, true);
    }

    fn push_plan(&self, op: FaultOp, nth: u64, kind: FaultKind, persistent: bool) {
        let mut g = self.inner.lock();
        let nth = g.counts[op.index()] + nth;
        g.schedule.push(Plan {
            op,
            nth,
            kind,
            persistent,
            fired: false,
        });
    }

    /// Arm a crash-point sweep: durability operation `n` (0-based global
    /// ordinal, counted from injector creation or the last
    /// [`FaultInjector::reset`]) fails — torn if it is a write — and all
    /// later durability operations fail too.
    pub fn crash_at(&self, n: u64) {
        self.inner.lock().crash_at = Some(n);
    }

    /// Drop every scheduled fault and disarm [`FaultInjector::crash_at`].
    /// Counters keep running, so observation continues.
    pub fn clear(&self) {
        let mut g = self.inner.lock();
        g.schedule.clear();
        g.crash_at = None;
    }

    /// [`FaultInjector::clear`], plus zero every counter — a fresh
    /// numbering for the next scripted scenario.
    pub fn reset(&self) {
        *self.inner.lock() = Inner::default();
    }

    /// Operations of class `op` observed so far.
    pub fn count(&self, op: FaultOp) -> u64 {
        self.inner.lock().counts[op.index()]
    }

    /// Durability operations observed so far (the ordinal space of
    /// [`FaultInjector::crash_at`]).
    pub fn durability_ops(&self) -> u64 {
        self.inner.lock().durability_ops
    }

    /// Faults injected so far (every fired schedule entry or crash-mode
    /// failure, including delays).
    pub fn injected(&self) -> u64 {
        self.inner.lock().injected
    }

    /// Decide the fate of one operation; returns the fired kind.
    fn decide(&self, op: FaultOp) -> Option<FaultKind> {
        let fired = {
            let mut g = self.inner.lock();
            let n = g.counts[op.index()];
            g.counts[op.index()] += 1;
            let mut fired = None;
            if op.is_durability() {
                let ordinal = g.durability_ops;
                g.durability_ops += 1;
                if let Some(at) = g.crash_at {
                    if ordinal >= at {
                        fired = Some(if ordinal == at {
                            FaultKind::Torn
                        } else {
                            FaultKind::Error
                        });
                    }
                }
            }
            if fired.is_none() {
                for plan in g.schedule.iter_mut() {
                    if plan.op != op {
                        continue;
                    }
                    let hit = if plan.persistent {
                        n >= plan.nth
                    } else {
                        !plan.fired && n == plan.nth
                    };
                    if hit {
                        plan.fired = true;
                        fired = Some(plan.kind);
                        break;
                    }
                }
            }
            if fired.is_some() {
                g.injected += 1;
            }
            fired
        };
        match fired {
            Some(FaultKind::Delay(d)) => {
                std::thread::sleep(d);
                None
            }
            Some(FaultKind::Panic) => panic!("injected fault: panic on {op}"),
            other => other,
        }
    }

    fn error(op: FaultOp, kind: FaultKind) -> io::Error {
        match kind {
            FaultKind::Enospc => io::Error::new(
                io::ErrorKind::StorageFull,
                format!("injected fault: no space left on device ({op})"),
            ),
            _ => io::Error::other(format!("injected fault: I/O error on {op}")),
        }
    }

    /// Consult the injector before a write-class operation. The caller
    /// must honor the returned [`WriteFault`].
    pub fn on_write(&self, op: FaultOp) -> io::Result<WriteFault> {
        match self.decide(op) {
            None => Ok(WriteFault::Clean),
            Some(FaultKind::Torn) => {
                Ok(WriteFault::Torn(FaultInjector::error(op, FaultKind::Torn)))
            }
            Some(FaultKind::BitFlip) => Ok(WriteFault::BitFlip),
            Some(kind) => Err(FaultInjector::error(op, kind)),
        }
    }

    /// Consult the injector before a read-class operation; same contract
    /// as [`FaultInjector::on_write`] ([`WriteFault::Torn`] means "fail",
    /// [`WriteFault::BitFlip`] means "corrupt the bytes you read").
    pub fn on_read(&self, op: FaultOp) -> io::Result<WriteFault> {
        self.on_write(op)
    }

    /// Consult the injector before a sync/fence-class operation, which
    /// either succeeds or fails (torn collapses to failure, bit flips to
    /// success).
    pub fn on_sync(&self, op: FaultOp) -> io::Result<()> {
        match self.decide(op) {
            None | Some(FaultKind::BitFlip) => Ok(()),
            Some(FaultKind::Torn) => Err(FaultInjector::error(op, FaultKind::Torn)),
            Some(kind) => Err(FaultInjector::error(op, kind)),
        }
    }
}

/// Flip one bit near the middle of `bytes` (no-op on an empty slice).
pub fn flip_one_bit(bytes: &mut [u8]) {
    if let Some(mid) = bytes.len().checked_sub(1) {
        bytes[mid / 2] ^= 0x10;
    }
}

/// A [`PageStore`] wrapper routing every operation through a
/// [`FaultInjector`]: reads consult [`FaultOp::PageRead`], writes
/// [`FaultOp::PageWrite`] (with torn-prefix and bit-flip support) and
/// checkpoints [`FaultOp::PageSync`].
///
/// Use this to inject faults into an in-memory [`crate::MemPager`] (or
/// any other store); [`crate::DiskPager`] consults an attached injector
/// natively at finer grain (each of its two checkpoint fences is a
/// separate [`FaultOp::PageSync`], the header-slot write a
/// [`FaultOp::PageWrite`]), so wrapping it would double-count.
#[derive(Debug)]
pub struct FaultPageStore<S> {
    inner: S,
    injector: Arc<FaultInjector>,
}

impl<S: PageStore> FaultPageStore<S> {
    /// Wrap `inner`, consulting `injector` on every operation.
    pub fn new(inner: S, injector: Arc<FaultInjector>) -> FaultPageStore<S> {
        FaultPageStore { inner, injector }
    }

    /// The wrapped store.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: PageStore> PageStore for FaultPageStore<S> {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn live_pages(&self) -> usize {
        self.inner.live_pages()
    }

    fn page_bound(&self) -> u32 {
        self.inner.page_bound()
    }

    fn allocate(&mut self) -> PageId {
        self.inner.allocate()
    }

    fn free(&mut self, id: PageId) {
        self.inner.free(id)
    }

    fn read_into(&self, id: PageId, out: &mut [u8]) -> io::Result<()> {
        match self.injector.on_read(FaultOp::PageRead)? {
            WriteFault::Clean => self.inner.read_into(id, out),
            WriteFault::Torn(e) => Err(e),
            WriteFault::BitFlip => {
                self.inner.read_into(id, out)?;
                let n = self.inner.page_size();
                flip_one_bit(&mut out[..n]);
                Ok(())
            }
        }
    }

    fn write(&mut self, id: PageId, data: &[u8]) -> io::Result<()> {
        match self.injector.on_write(FaultOp::PageWrite)? {
            WriteFault::Clean => self.inner.write(id, data),
            WriteFault::Torn(e) => {
                self.inner.write(id, &data[..data.len() / 2])?;
                Err(e)
            }
            WriteFault::BitFlip => {
                let mut corrupt = data.to_vec();
                flip_one_bit(&mut corrupt);
                self.inner.write(id, &corrupt)
            }
        }
    }

    fn checkpoint(&mut self, meta: &[u8]) -> io::Result<()> {
        self.injector.on_sync(FaultOp::PageSync)?;
        self.inner.checkpoint(meta)
    }

    fn meta(&self) -> Option<Vec<u8>> {
        self.inner.meta()
    }

    fn disk_stats(&self) -> IoStats {
        self.inner.disk_stats()
    }

    fn reset_disk_stats(&self) {
        self.inner.reset_disk_stats()
    }

    fn seed_free(&mut self, free: &[u32]) {
        self.inner.seed_free(free)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::MemPager;

    #[test]
    fn nth_write_fails_once_then_recovers() {
        let inj = FaultInjector::shared();
        inj.fail_nth(FaultOp::PageWrite, 1, FaultKind::Error);
        let mut store = FaultPageStore::new(MemPager::new(64), Arc::clone(&inj));
        let a = store.allocate();
        store.write(a, &[1]).unwrap(); // write 0: clean
        let err = store.write(a, &[2]).unwrap_err(); // write 1: injected
        assert!(err.to_string().contains("injected"), "{err}");
        store.write(a, &[3]).unwrap(); // one-shot: gone
        assert_eq!(inj.injected(), 1);
        assert_eq!(inj.count(FaultOp::PageWrite), 3);
    }

    #[test]
    fn fail_from_is_persistent_until_cleared() {
        let inj = FaultInjector::shared();
        inj.fail_from(FaultOp::PageWrite, 0, FaultKind::Enospc);
        let mut store = FaultPageStore::new(MemPager::new(64), Arc::clone(&inj));
        let a = store.allocate();
        for _ in 0..3 {
            let err = store.write(a, &[1]).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        }
        inj.clear();
        store.write(a, &[1]).unwrap();
    }

    #[test]
    fn torn_write_persists_a_prefix() {
        let inj = FaultInjector::shared();
        inj.fail_nth(FaultOp::PageWrite, 0, FaultKind::Torn);
        let mut store = FaultPageStore::new(MemPager::new(64), Arc::clone(&inj));
        let a = store.allocate();
        assert!(store.write(a, &[7; 8]).is_err());
        let mut buf = [0u8; 64];
        store.read_into(a, &mut buf).unwrap();
        assert_eq!(&buf[..4], &[7; 4], "prefix must be persisted");
        assert_eq!(&buf[4..8], &[0; 4], "suffix must be missing");
    }

    #[test]
    fn bit_flip_reports_success_with_corrupt_bytes() {
        let inj = FaultInjector::shared();
        inj.fail_nth(FaultOp::PageWrite, 0, FaultKind::BitFlip);
        let mut store = FaultPageStore::new(MemPager::new(64), Arc::clone(&inj));
        let a = store.allocate();
        store.write(a, &[0u8; 8]).unwrap();
        let mut buf = [0u8; 64];
        store.read_into(a, &mut buf).unwrap();
        assert!(buf.iter().any(|&b| b != 0), "one byte must be corrupted");
    }

    #[test]
    fn crash_at_fails_every_later_durability_op() {
        let inj = FaultInjector::shared();
        inj.crash_at(1);
        let mut store = FaultPageStore::new(MemPager::new(64), Arc::clone(&inj));
        let a = store.allocate();
        store.write(a, &[1]).unwrap(); // durability op 0
        assert!(store.write(a, &[2]).is_err()); // op 1: the crash point
        assert!(store.write(a, &[3]).is_err()); // op 2: device stays dead
        assert!(store.checkpoint(&[]).is_err()); // op 3 (a sync class)
        let mut buf = [0u8; 64];
        store.read_into(a, &mut buf).unwrap(); // reads are exempt
        assert_eq!(inj.durability_ops(), 4);
    }

    #[test]
    #[should_panic(expected = "injected fault: panic")]
    fn panic_kind_panics() {
        let inj = FaultInjector::shared();
        inj.fail_nth(FaultOp::PageRead, 0, FaultKind::Panic);
        let store = FaultPageStore::new(MemPager::new(64), Arc::clone(&inj));
        let mut buf = [0u8; 64];
        let _ = store.read_into(PageId(0), &mut buf);
    }

    #[test]
    fn delay_kind_succeeds_after_sleeping() {
        let inj = FaultInjector::shared();
        inj.fail_nth(
            FaultOp::PageWrite,
            0,
            FaultKind::Delay(Duration::from_millis(5)),
        );
        let mut store = FaultPageStore::new(MemPager::new(64), Arc::clone(&inj));
        let a = store.allocate();
        let t = std::time::Instant::now();
        store.write(a, &[1]).unwrap();
        assert!(t.elapsed() >= Duration::from_millis(5));
        assert_eq!(inj.injected(), 1, "a delay still counts as injected");
    }

    #[test]
    fn fail_nth_is_relative_to_the_current_count() {
        let inj = FaultInjector::shared();
        let mut store = FaultPageStore::new(MemPager::new(64), Arc::clone(&inj));
        let a = store.allocate();
        store.write(a, &[1]).unwrap();
        store.write(a, &[2]).unwrap();
        // "next write" after two clean ones:
        inj.fail_nth(FaultOp::PageWrite, 0, FaultKind::Error);
        assert!(store.write(a, &[3]).is_err());
    }
}
