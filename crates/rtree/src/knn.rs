//! Best-first k-nearest-neighbor search (Hjaltason & Samet, TODS 1999).
//!
//! The Chain competitor adapts the spatial matching of Wong et al.
//! (VLDB 2007), whose native primitive is incremental NN search; this
//! module provides that primitive for completeness of the substrate
//! (the matcher itself replaces NN by ranked search, as the paper
//! prescribes). Distances are Euclidean; ties break by ascending object
//! id, mirroring the ranked-search conventions.

use std::collections::BinaryHeap;

use crate::node::Node;
use crate::pager::PageId;
use crate::tree::RTree;

/// One k-NN result.
#[derive(Debug, Clone, PartialEq)]
pub struct NnHit {
    /// Object id.
    pub oid: u64,
    /// Euclidean distance to the query point.
    pub distance: f64,
    /// The matching point.
    pub point: Box<[f64]>,
}

/// Squared Euclidean distance from `q` to the rectangle `[lo, hi]`
/// (zero when `q` is inside).
#[inline]
pub fn mindist_sq(q: &[f64], lo: &[f64], hi: &[f64]) -> f64 {
    let mut d = 0.0;
    for i in 0..q.len() {
        let delta = if q[i] < lo[i] {
            lo[i] - q[i]
        } else if q[i] > hi[i] {
            q[i] - hi[i]
        } else {
            0.0
        };
        d += delta * delta;
    }
    d
}

#[inline]
fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    let mut d = 0.0;
    for i in 0..a.len() {
        let delta = a[i] - b[i];
        d += delta * delta;
    }
    d
}

enum Cand {
    Node { pid: u32 },
    Point { oid: u64, point: Box<[f64]> },
}

struct Item {
    key: f64, // squared distance
    cand: Cand,
}

impl Item {
    fn tie(&self) -> (u8, u64) {
        match &self.cand {
            Cand::Node { pid } => (1, *pid as u64),
            Cand::Point { oid, .. } => (0, *oid),
        }
    }
}

impl PartialEq for Item {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for Item {}
impl PartialOrd for Item {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Item {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // min-heap on distance; nodes before points at equal distance so
        // hidden ties surface before a point is emitted; then id asc
        other.key.total_cmp(&self.key).then_with(|| {
            let (ka, ia) = self.tie();
            let (kb, ib) = other.tie();
            kb.cmp(&ka).then_with(|| ib.cmp(&ia))
        })
    }
}

/// Incremental nearest-neighbor iterator: yields points in ascending
/// distance from the query.
pub struct NnIter<'t> {
    tree: &'t RTree,
    query: Box<[f64]>,
    heap: BinaryHeap<Item>,
}

impl<'t> NnIter<'t> {
    fn new(tree: &'t RTree, query: &[f64]) -> NnIter<'t> {
        assert_eq!(query.len(), tree.dim(), "query dimensionality mismatch");
        let root = tree.read_node(tree.root_page());
        let mut it = NnIter {
            tree,
            query: query.into(),
            heap: BinaryHeap::new(),
        };
        it.expand(&root);
        it
    }

    fn expand(&mut self, node: &Node) {
        match node {
            Node::Leaf(leaf) => {
                for (oid, p) in leaf.iter() {
                    self.heap.push(Item {
                        key: dist_sq(&self.query, p),
                        cand: Cand::Point {
                            oid,
                            point: p.into(),
                        },
                    });
                }
            }
            Node::Inner(inner) => {
                for i in 0..inner.len() {
                    self.heap.push(Item {
                        key: mindist_sq(&self.query, inner.lo(i), inner.hi(i)),
                        cand: Cand::Node {
                            pid: inner.child(i).0,
                        },
                    });
                }
            }
        }
    }
}

impl Iterator for NnIter<'_> {
    type Item = NnHit;

    fn next(&mut self) -> Option<NnHit> {
        while let Some(item) = self.heap.pop() {
            match item.cand {
                Cand::Point { oid, point } => {
                    return Some(NnHit {
                        oid,
                        distance: item.key.sqrt(),
                        point,
                    });
                }
                Cand::Node { pid } => {
                    let node = self.tree.read_node(PageId(pid));
                    self.expand(&node);
                }
            }
        }
        None
    }
}

impl RTree {
    /// Incremental nearest-neighbor search from `query`.
    pub fn nn_iter(&self, query: &[f64]) -> NnIter<'_> {
        NnIter::new(self, query)
    }

    /// The `k` nearest neighbors of `query` in ascending distance.
    pub fn knn(&self, query: &[f64], k: usize) -> Vec<NnHit> {
        self.nn_iter(query).take(k).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::points::PointSet;
    use crate::tree::RTreeParams;

    fn params() -> RTreeParams {
        RTreeParams {
            page_size: 256,
            min_fill_ratio: 0.4,
            buffer_capacity: 1024,
        }
    }

    fn seeded_points(n: usize, dim: usize, seed: u64) -> PointSet {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut ps = PointSet::with_capacity(dim, n);
        for _ in 0..n {
            let p: Vec<f64> = (0..dim).map(|_| next()).collect();
            ps.push(&p);
        }
        ps
    }

    fn brute_knn(ps: &PointSet, q: &[f64], k: usize) -> Vec<(u64, f64)> {
        let mut all: Vec<(u64, f64)> = ps
            .iter()
            .map(|(i, p)| (i as u64, dist_sq(q, p).sqrt()))
            .collect();
        all.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    #[test]
    fn knn_matches_brute_force() {
        let ps = seeded_points(700, 3, 61);
        let tree = RTree::bulk_load(&ps, params());
        for q in [[0.5, 0.5, 0.5], [0.0, 0.0, 0.0], [0.9, 0.1, 0.4]] {
            let got: Vec<(u64, f64)> = tree
                .knn(&q, 15)
                .iter()
                .map(|h| (h.oid, h.distance))
                .collect();
            let expect = brute_knn(&ps, &q, 15);
            for ((go, gd), (eo, ed)) in got.iter().zip(expect.iter()) {
                assert_eq!(go, eo, "query {q:?}");
                assert!((gd - ed).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn nn_iter_is_distance_sorted_and_complete() {
        let ps = seeded_points(400, 2, 62);
        let tree = RTree::bulk_load(&ps, params());
        let mut last = -1.0f64;
        let mut n = 0;
        for hit in tree.nn_iter(&[0.3, 0.7]) {
            assert!(hit.distance >= last - 1e-12);
            last = hit.distance;
            n += 1;
        }
        assert_eq!(n, 400);
    }

    #[test]
    fn query_outside_the_unit_cube_works() {
        let ps = seeded_points(200, 2, 63);
        let tree = RTree::bulk_load(&ps, params());
        let got = tree.knn(&[2.0, 2.0], 3);
        let expect = brute_knn(&ps, &[2.0, 2.0], 3);
        assert_eq!(got[0].oid, expect[0].0);
    }

    #[test]
    fn exact_match_has_distance_zero() {
        let ps = seeded_points(100, 2, 64);
        let tree = RTree::bulk_load(&ps, params());
        let target = ps.get(42);
        let hit = tree.knn(target, 1).remove(0);
        assert_eq!(hit.oid, 42);
        assert_eq!(hit.distance, 0.0);
    }

    #[test]
    fn mindist_sq_handles_inside_and_outside() {
        assert_eq!(mindist_sq(&[0.5, 0.5], &[0.0, 0.0], &[1.0, 1.0]), 0.0);
        let d = mindist_sq(&[2.0, 0.5], &[0.0, 0.0], &[1.0, 1.0]);
        assert!((d - 1.0).abs() < 1e-12);
        let d = mindist_sq(&[-1.0, -1.0], &[0.0, 0.0], &[1.0, 1.0]);
        assert!((d - 2.0).abs() < 1e-12);
    }
}
