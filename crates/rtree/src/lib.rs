//! # mpq-rtree — a disk-backed, paged R\*-tree
//!
//! This crate provides the storage substrate used by the ICDE 2009 paper
//! *"Efficient Evaluation of Multiple Preference Queries"*: a
//! multidimensional R-tree whose nodes live on fixed-size pages behind an
//! LRU buffer pool, so that experiments can report **I/O accesses** the way
//! the database literature does (physical page reads/writes that miss the
//! buffer).
//!
//! Features:
//!
//! * **Paged storage** behind the [`pager::PageStore`] trait — every node
//!   occupies exactly one page (default 4096 bytes, as in the paper);
//!   nodes are serialized to a compact binary layout ([`node`]). Pages
//!   live in memory ([`pager::MemPager`], the paper's simulated disk) or
//!   in a real file ([`disk::DiskPager`]: CRC-checked pages, alternating
//!   header slots, durable [`RTree::checkpoint`] and
//!   [`RTree::open`] recovery).
//! * **LRU buffer pool** ([`buffer::BufferPool`]) with logical/physical
//!   access counters ([`stats::IoStats`]).
//! * **STR bulk loading** ([`RTree::bulk_load`]) — Sort-Tile-Recursive
//!   packing for the initial dataset.
//! * **Dynamic updates** — R\*-style [`RTree::insert`] and Guttman
//!   condense-tree [`RTree::delete`] (needed by the Brute Force and Chain
//!   matchers, which remove assigned objects from the index), applied
//!   under copy-on-write **epochs**: a writer installs the next snapshot
//!   while in-flight readers ([`tree::Snapshot`], [`session::IoSession`])
//!   finish on the one they pinned.
//! * **Branch-and-bound ranked search** ([`topk`]) — the "BRS" top-k /
//!   top-1 algorithm of Tao et al. (Information Systems 32(3), 2007) for
//!   linear scoring functions, plus an incremental iterator.
//!
//! Scores follow the *larger-is-better* convention: points live in
//! `[0,1]^D` and a query is a non-negative weight vector.
//!
//! ```
//! use mpq_rtree::{RTree, RTreeParams, PointSet};
//!
//! let mut points = PointSet::new(2);
//! points.push(&[0.9, 0.1]);
//! points.push(&[0.6, 0.5]);
//! points.push(&[0.2, 0.8]);
//! let tree = RTree::bulk_load(&points, RTreeParams::default());
//! let best = tree.top1(&[0.5, 0.5]).unwrap();
//! assert_eq!(best.oid, 1); // 0.5*0.6 + 0.5*0.5 = 0.55 is the max score
//! ```

#![warn(missing_docs)]

pub mod buffer;
pub mod bulk;
pub mod disk;
pub mod fault;
pub mod geometry;
pub mod knn;
pub mod node;
pub mod pager;
pub mod points;
pub mod session;
pub mod split;
pub mod stats;
pub mod topk;
pub mod tree;

pub use disk::DiskPager;
pub use fault::{FaultInjector, FaultKind, FaultOp, FaultPageStore, WriteFault};
pub use geometry::Mbr;
pub use knn::{NnHit, NnIter};
pub use node::{InnerNode, LeafNode, Node};
pub use pager::{MemPager, PageId, PageStore};
pub use points::PointSet;
pub use session::{IoSession, NodeSource};
pub use stats::IoStats;
pub use topk::{
    LinearScorer, LinearScorerRef, MonotoneScorer, RankedHit, RankedIter, Scorer, SearchBuf,
};
pub use tree::{RTree, RTreeParams, Snapshot};
