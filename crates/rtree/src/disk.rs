//! A file-backed [`PageStore`]: fixed-size pages with a double-slot
//! CRC'd header and `fsync`-fenced checkpoints.
//!
//! # File layout
//!
//! ```text
//! offset 0 ──────────────┐
//! │ header slot A (2 KiB)│  magic, generation, page_size, page_count,
//! │ header slot B (2 KiB)│  meta_len, meta bytes, crc32
//! offset 4096 ───────────┤
//! │ page 0               │  page_size bytes each
//! │ page 1               │
//! │ ...                  │
//! ```
//!
//! The two header slots alternate: a checkpoint writes the *other* slot
//! with an incremented generation counter and a CRC over the slot
//! contents, then fsyncs. Opening picks the valid slot with the highest
//! generation, so a crash mid-header-write falls back to the previous
//! checkpoint instead of corrupting the store (the classic double-buffered
//! superblock pattern).
//!
//! # Durability protocol
//!
//! [`DiskPager::checkpoint`] is the only durability point:
//!
//! 1. `fsync` the file so every page written since the last checkpoint is
//!    on stable storage,
//! 2. write the alternate header slot (new generation, current page
//!    count, caller-provided recovery metadata),
//! 3. `fsync` again to commit the header.
//!
//! Page ids freed *between* checkpoints are quarantined, not reused: the
//! last durable checkpoint may still reference them, and recovery must be
//! able to fall back to it. The quarantine drains into the free list once
//! the next checkpoint commits. On open the free list is empty; the
//! caller reseeds it via [`PageStore::seed_free`] after walking the
//! recovered tree for reachable pages.

use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::fault::{flip_one_bit, FaultInjector, FaultOp, WriteFault};
use crate::pager::{PageId, PageStore};
use crate::stats::IoStats;

/// Total bytes reserved for the header region at the start of the file.
const HEADER_REGION: u64 = 4096;
/// Each of the two alternating header slots is half the region.
const SLOT_SIZE: usize = (HEADER_REGION / 2) as usize;
/// Fixed slot prefix: magic(8) + generation(8) + page_size(4) +
/// page_count(4) + meta_len(4).
const SLOT_FIXED: usize = 28;
/// `b"MPQPAGE1"` as a little-endian u64.
const MAGIC: u64 = u64::from_le_bytes(*b"MPQPAGE1");
/// Largest metadata payload a header slot can carry (the CRC trails it).
pub const MAX_META: usize = SLOT_SIZE - SLOT_FIXED - 4;

/// CRC-32 (IEEE 802.3 polynomial, reflected) over `bytes`.
///
/// Shared by the page-file header slots here and the WAL record framing
/// in `mpq_core::wal`, so torn writes are detected the same way in both
/// files.
pub fn crc32(bytes: &[u8]) -> u32 {
    const fn table() -> [u32; 256] {
        let mut t = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    }
    const TABLE: [u32; 256] = table();
    let mut crc = !0u32;
    for &b in bytes {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// A file-backed [`PageStore`] with checkpoint durability.
///
/// Pages live at `4096 + pid * page_size` in the backing file. All reads
/// and writes go straight to the file (the LRU caching layer lives above,
/// in [`crate::buffer::BufferPool`]); `disk_reads` / `disk_writes` /
/// `fsyncs` counters report the resulting device traffic.
pub struct DiskPager {
    file: File,
    page_size: usize,
    /// Pages ever allocated; the file's page region is this many pages.
    page_count: u32,
    /// Durably free ids: reusable immediately.
    reusable: Vec<u32>,
    /// Freed since the last checkpoint: the previous checkpoint may still
    /// reference these, so they only become reusable after the next one.
    quarantine: Vec<u32>,
    /// Generation of the most recently committed header slot.
    generation: u64,
    /// Metadata from the most recent checkpoint.
    meta: Option<Vec<u8>>,
    scratch: Vec<u8>,
    /// Optional fault-injection seam, consulted on every device
    /// operation at its natural grain (page write, page read, each of
    /// the two checkpoint fences, the header-slot write).
    injector: Option<Arc<FaultInjector>>,
    disk_reads: AtomicU64,
    disk_writes: AtomicU64,
    fsyncs: AtomicU64,
}

impl std::fmt::Debug for DiskPager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskPager")
            .field("page_size", &self.page_size)
            .field("page_count", &self.page_count)
            .field("generation", &self.generation)
            .field("reusable", &self.reusable.len())
            .field("quarantine", &self.quarantine.len())
            .finish()
    }
}

impl DiskPager {
    /// Create a fresh page file at `path` (truncating anything there),
    /// with an initial committed header (generation 1, zero pages).
    ///
    /// # Panics
    /// Panics if `page_size < 64`, like [`crate::pager::MemPager::new`].
    pub fn create(path: &Path, page_size: usize) -> io::Result<DiskPager> {
        assert!(page_size >= 64, "page size {page_size} is too small");
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut pager = DiskPager {
            file,
            page_size,
            page_count: 0,
            reusable: Vec::new(),
            quarantine: Vec::new(),
            generation: 0,
            meta: None,
            scratch: vec![0u8; page_size],
            injector: None,
            disk_reads: AtomicU64::new(0),
            disk_writes: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
        };
        pager.commit_header(&[])?;
        Ok(pager)
    }

    /// Open an existing page file, recovering the state of its most
    /// recent committed checkpoint (valid header slot with the highest
    /// generation). The free list starts empty; seed it from a
    /// reachability walk via [`PageStore::seed_free`].
    pub fn open(path: &Path, page_size: usize) -> io::Result<DiskPager> {
        assert!(page_size >= 64, "page size {page_size} is too small");
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut region = vec![0u8; HEADER_REGION as usize];
        read_full_at(&file, &mut region, 0)?;
        let a = parse_slot(&region[..SLOT_SIZE]);
        let b = parse_slot(&region[SLOT_SIZE..]);
        let best = match (a, b) {
            (Some(a), Some(b)) => {
                if a.generation >= b.generation {
                    a
                } else {
                    b
                }
            }
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "no valid header slot: not a page file or both slots corrupt",
                ))
            }
        };
        if best.page_size as usize != page_size {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "page file uses {}-byte pages, opened with {page_size}",
                    best.page_size
                ),
            ));
        }
        Ok(DiskPager {
            file,
            page_size,
            page_count: best.page_count,
            reusable: Vec::new(),
            quarantine: Vec::new(),
            generation: best.generation,
            meta: if best.meta.is_empty() {
                None
            } else {
                Some(best.meta)
            },
            scratch: vec![0u8; page_size],
            injector: None,
            disk_reads: AtomicU64::new(0),
            disk_writes: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
        })
    }

    /// Total pages ever allocated (the page region spans this many pages,
    /// live or free).
    #[inline]
    pub fn page_count(&self) -> u32 {
        self.page_count
    }

    /// Generation of the most recent committed checkpoint.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Route every subsequent device operation through `injector` (see
    /// [`crate::fault`]). The already-committed create/open header I/O is
    /// not retroactively counted.
    pub fn attach_injector(&mut self, injector: Arc<FaultInjector>) {
        self.injector = Some(injector);
    }

    fn offset_of(&self, id: PageId) -> u64 {
        HEADER_REGION + id.0 as u64 * self.page_size as u64
    }

    /// Serialize and write the next header slot, fsync-fencing it.
    fn commit_header(&mut self, meta: &[u8]) -> io::Result<()> {
        assert!(
            meta.len() <= MAX_META,
            "checkpoint metadata of {} bytes exceeds the {MAX_META}-byte slot",
            meta.len()
        );
        let generation = self.generation + 1;
        let mut slot = vec![0u8; SLOT_SIZE];
        slot[0..8].copy_from_slice(&MAGIC.to_le_bytes());
        slot[8..16].copy_from_slice(&generation.to_le_bytes());
        slot[16..20].copy_from_slice(&(self.page_size as u32).to_le_bytes());
        slot[20..24].copy_from_slice(&self.page_count.to_le_bytes());
        slot[24..28].copy_from_slice(&(meta.len() as u32).to_le_bytes());
        slot[SLOT_FIXED..SLOT_FIXED + meta.len()].copy_from_slice(meta);
        let crc = crc32(&slot[..SLOT_FIXED + meta.len()]);
        slot[SLOT_FIXED + meta.len()..SLOT_FIXED + meta.len() + 4]
            .copy_from_slice(&crc.to_le_bytes());
        let slot_offset = (generation % 2) * SLOT_SIZE as u64;
        if let Some(inj) = &self.injector {
            match inj.on_write(FaultOp::PageWrite)? {
                WriteFault::Clean => {}
                WriteFault::Torn(e) => {
                    // A torn header write lands half a slot; its CRC can
                    // never validate, so open falls back to the previous
                    // generation.
                    self.file
                        .write_all_at(&slot[..SLOT_SIZE / 2], slot_offset)?;
                    return Err(e);
                }
                WriteFault::BitFlip => flip_one_bit(&mut slot),
            }
        }
        self.file.write_all_at(&slot, slot_offset)?;
        self.disk_writes.fetch_add(1, Ordering::Relaxed);
        if let Some(inj) = &self.injector {
            inj.on_sync(FaultOp::PageSync)?;
        }
        self.file.sync_all()?;
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        self.generation = generation;
        Ok(())
    }
}

struct Slot {
    generation: u64,
    page_size: u32,
    page_count: u32,
    meta: Vec<u8>,
}

fn parse_slot(bytes: &[u8]) -> Option<Slot> {
    if u64::from_le_bytes(bytes[0..8].try_into().ok()?) != MAGIC {
        return None;
    }
    let generation = u64::from_le_bytes(bytes[8..16].try_into().ok()?);
    let page_size = u32::from_le_bytes(bytes[16..20].try_into().ok()?);
    let page_count = u32::from_le_bytes(bytes[20..24].try_into().ok()?);
    let meta_len = u32::from_le_bytes(bytes[24..28].try_into().ok()?) as usize;
    if meta_len > MAX_META {
        return None;
    }
    let stored = u32::from_le_bytes(
        bytes[SLOT_FIXED + meta_len..SLOT_FIXED + meta_len + 4]
            .try_into()
            .ok()?,
    );
    if crc32(&bytes[..SLOT_FIXED + meta_len]) != stored {
        return None;
    }
    Some(Slot {
        generation,
        page_size,
        page_count,
        meta: bytes[SLOT_FIXED..SLOT_FIXED + meta_len].to_vec(),
    })
}

/// `read_exact_at`, except a short file zero-fills the tail instead of
/// erroring (an allocated-but-never-written page has no bytes on disk
/// yet).
fn read_full_at(file: &File, buf: &mut [u8], mut offset: u64) -> io::Result<()> {
    let mut buf = &mut buf[..];
    while !buf.is_empty() {
        match file.read_at(buf, offset) {
            Ok(0) => {
                buf.fill(0);
                return Ok(());
            }
            Ok(n) => {
                buf = &mut buf[n..];
                offset += n as u64;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

impl PageStore for DiskPager {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn live_pages(&self) -> usize {
        self.page_count as usize - self.reusable.len() - self.quarantine.len()
    }

    fn page_bound(&self) -> u32 {
        self.page_count
    }

    fn allocate(&mut self) -> PageId {
        if let Some(id) = self.reusable.pop() {
            return PageId(id);
        }
        let id = self.page_count;
        assert!(id != u32::MAX, "pager exhausted the PageId space");
        self.page_count += 1;
        PageId(id)
    }

    fn free(&mut self, id: PageId) {
        assert!(
            id.0 < self.page_count,
            "free of out-of-range page {id} (page_count {})",
            self.page_count
        );
        debug_assert!(
            !self.reusable.contains(&id.0) && !self.quarantine.contains(&id.0),
            "double free of page {id}"
        );
        self.quarantine.push(id.0);
    }

    fn read_into(&self, id: PageId, out: &mut [u8]) -> io::Result<()> {
        assert!(
            id.0 < self.page_count,
            "read of unallocated page {id} (page_count {})",
            self.page_count
        );
        let mut flip = false;
        if let Some(inj) = &self.injector {
            match inj.on_read(FaultOp::PageRead)? {
                WriteFault::Clean => {}
                WriteFault::Torn(e) => return Err(e),
                WriteFault::BitFlip => flip = true,
            }
        }
        read_full_at(&self.file, &mut out[..self.page_size], self.offset_of(id))
            .map_err(|e| io::Error::new(e.kind(), format!("disk read of page {id} failed: {e}")))?;
        if flip {
            flip_one_bit(&mut out[..self.page_size]);
        }
        self.disk_reads.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn write(&mut self, id: PageId, data: &[u8]) -> io::Result<()> {
        assert!(
            data.len() <= self.page_size,
            "write of {} bytes exceeds page size {}",
            data.len(),
            self.page_size
        );
        assert!(
            id.0 < self.page_count,
            "write to unallocated page {id} (page_count {})",
            self.page_count
        );
        self.scratch[..data.len()].copy_from_slice(data);
        self.scratch[data.len()..].fill(0);
        let offset = self.offset_of(id);
        let mut limit = self.page_size;
        let mut torn: Option<io::Error> = None;
        if let Some(inj) = &self.injector {
            match inj.on_write(FaultOp::PageWrite)? {
                WriteFault::Clean => {}
                WriteFault::Torn(e) => {
                    limit = self.page_size / 2;
                    torn = Some(e);
                }
                WriteFault::BitFlip => flip_one_bit(&mut self.scratch),
            }
        }
        let scratch = std::mem::take(&mut self.scratch);
        let res = self.file.write_all_at(&scratch[..limit], offset);
        self.scratch = scratch;
        res.map_err(|e| io::Error::new(e.kind(), format!("disk write of page {id} failed: {e}")))?;
        if let Some(e) = torn {
            return Err(e);
        }
        self.disk_writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn checkpoint(&mut self, meta: &[u8]) -> io::Result<()> {
        if let Some(inj) = &self.injector {
            inj.on_sync(FaultOp::PageSync)?;
        }
        self.file.sync_all()?;
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        self.commit_header(meta)?;
        self.meta = if meta.is_empty() {
            None
        } else {
            Some(meta.to_vec())
        };
        self.reusable.append(&mut self.quarantine);
        Ok(())
    }

    fn meta(&self) -> Option<Vec<u8>> {
        self.meta.clone()
    }

    fn disk_stats(&self) -> IoStats {
        IoStats {
            disk_reads: self.disk_reads.load(Ordering::Relaxed),
            disk_writes: self.disk_writes.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            ..IoStats::default()
        }
    }

    fn reset_disk_stats(&self) {
        self.disk_reads.store(0, Ordering::Relaxed);
        self.disk_writes.store(0, Ordering::Relaxed);
        self.fsyncs.store(0, Ordering::Relaxed);
    }

    fn seed_free(&mut self, free: &[u32]) {
        self.reusable.extend_from_slice(free);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("mpq_disk_pager_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn write_read_round_trip_and_tail_zero_fill() {
        let path = tmp("round_trip.mpq");
        let mut p = DiskPager::create(&path, 128).unwrap();
        let a = p.allocate();
        let b = p.allocate();
        p.write(a, &[1, 2, 3]).unwrap();
        p.write(b, &[9; 128]).unwrap();
        let mut buf = [0xAAu8; 128];
        p.read_into(a, &mut buf).unwrap();
        assert_eq!(&buf[..3], &[1, 2, 3]);
        assert!(buf[3..].iter().all(|&x| x == 0), "tail must be zero-filled");
        p.read_into(b, &mut buf).unwrap();
        assert_eq!(buf[127], 9);
        let stats = p.disk_stats();
        assert_eq!(stats.disk_reads, 2);
        assert!(stats.disk_writes >= 2);
    }

    #[test]
    fn allocated_but_unwritten_page_reads_zero() {
        let path = tmp("unwritten.mpq");
        let mut p = DiskPager::create(&path, 64).unwrap();
        let a = p.allocate();
        let mut buf = [0xFFu8; 64];
        p.read_into(a, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 0));
    }

    #[test]
    fn checkpoint_survives_reopen_with_meta() {
        let path = tmp("reopen.mpq");
        {
            let mut p = DiskPager::create(&path, 64).unwrap();
            let a = p.allocate();
            p.write(a, b"hello").unwrap();
            p.checkpoint(b"root=0").unwrap();
            assert!(p.disk_stats().fsyncs >= 2);
        }
        let p = DiskPager::open(&path, 64).unwrap();
        assert_eq!(p.page_count(), 1);
        assert_eq!(p.meta().as_deref(), Some(&b"root=0"[..]));
        let mut buf = [0u8; 64];
        p.read_into(PageId(0), &mut buf).unwrap();
        assert_eq!(&buf[..5], b"hello");
    }

    #[test]
    fn freed_pages_are_quarantined_until_checkpoint() {
        let path = tmp("quarantine.mpq");
        let mut p = DiskPager::create(&path, 64).unwrap();
        let a = p.allocate();
        let _b = p.allocate();
        p.free(a);
        assert_eq!(p.live_pages(), 1);
        // A freed-but-unquarantine-drained id must not be recycled: the
        // previous checkpoint could still reference it.
        let c = p.allocate();
        assert_ne!(c, a);
        p.checkpoint(&[]).unwrap();
        let d = p.allocate();
        assert_eq!(d, a, "after a checkpoint the quarantine drains");
    }

    #[test]
    fn torn_header_write_falls_back_to_previous_generation() {
        let path = tmp("torn_header.mpq");
        {
            let mut p = DiskPager::create(&path, 64).unwrap();
            let a = p.allocate();
            p.write(a, b"gen2 data").unwrap();
            p.checkpoint(b"gen2").unwrap(); // generation 2 in slot A or B
        }
        // Corrupt the slot holding the *latest* generation (simulating a
        // torn header write) and verify open falls back to the older one.
        let gen = DiskPager::open(&path, 64).unwrap().generation();
        let newest_slot_offset = (gen % 2) * SLOT_SIZE as u64;
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.write_all_at(&[0xFF; 16], newest_slot_offset + 8).unwrap();
        drop(f);
        let p = DiskPager::open(&path, 64).unwrap();
        assert!(p.generation() < gen, "must fall back to an older slot");
    }

    #[test]
    fn open_rejects_mismatched_page_size() {
        let path = tmp("wrong_size.mpq");
        DiskPager::create(&path, 64).unwrap();
        assert!(DiskPager::open(&path, 128).is_err());
    }

    #[test]
    fn open_rejects_garbage_file() {
        let path = tmp("garbage.mpq");
        std::fs::write(&path, vec![0x5A; 8192]).unwrap();
        assert!(DiskPager::open(&path, 64).is_err());
    }

    #[test]
    fn seed_free_reuses_recovered_ids() {
        let path = tmp("seed_free.mpq");
        {
            let mut p = DiskPager::create(&path, 64).unwrap();
            for _ in 0..4 {
                p.allocate();
            }
            p.checkpoint(&[]).unwrap();
        }
        let mut p = DiskPager::open(&path, 64).unwrap();
        p.seed_free(&[1, 3]);
        assert_eq!(p.live_pages(), 2);
        let a = p.allocate();
        let b = p.allocate();
        assert!(matches!((a.0, b.0), (3, 1) | (1, 3)));
        let c = p.allocate();
        assert_eq!(c.0, 4, "fresh ids extend past the recovered count");
    }
}
