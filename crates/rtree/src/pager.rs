//! Page-granular byte stores: the [`PageStore`] abstraction, plus the
//! in-memory [`MemPager`].
//!
//! Real deployments of the paper's system put the object R-tree on disk;
//! [`crate::disk::DiskPager`] does exactly that with a file-backed store.
//! For reproducible laptop-scale experiments the in-memory [`MemPager`]
//! simulates the disk instead. Both sit behind the same [`PageStore`]
//! trait, so the LRU buffer pool above ([`crate::buffer::BufferPool`])
//! and everything above *it* is storage-agnostic. The simulation is
//! faithful at the level that matters for the paper's metrics: every node
//! access that misses the buffer costs one *physical* page transfer,
//! counted by [`crate::stats::IoStats`] in the buffer layer.

use crate::stats::IoStats;

/// Identifier of a fixed-size page in a [`PageStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl PageId {
    /// Sentinel value meaning "no page".
    pub const INVALID: PageId = PageId(u32::MAX);

    /// True iff this id refers to an actual page.
    #[inline]
    pub fn is_valid(self) -> bool {
        self != PageId::INVALID
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A page-granular byte store: fixed-size pages addressed by [`PageId`],
/// with allocate/free/read/write plus an optional durability protocol.
///
/// Implementations:
///
/// * [`MemPager`] — in-memory simulated disk (no durability; checkpoints
///   are no-ops).
/// * [`crate::disk::DiskPager`] — file-backed store with a double-slot
///   CRC'd header and `fsync`-fenced checkpoints.
///
/// The buffer pool holds the store behind a `RwLock`, so reads take
/// `&self` (concurrent) and mutations take `&mut self` (exclusive).
pub trait PageStore: Send + Sync {
    /// Page size in bytes.
    fn page_size(&self) -> usize;

    /// Number of live (allocated, not freed) pages.
    fn live_pages(&self) -> usize;

    /// One past the highest page id ever allocated. Every live page id is
    /// `< page_bound()`; recovery walks `0..page_bound()` to classify
    /// pages as reachable or free.
    fn page_bound(&self) -> u32;

    /// Allocate a page and return its id. Contents are undefined until
    /// the first [`PageStore::write`].
    fn allocate(&mut self) -> PageId;

    /// Return a page to the free list. A durable store may defer reuse of
    /// the id until the next checkpoint (the last checkpoint may still
    /// reference the page).
    ///
    /// # Panics
    /// May panic if the page is not currently allocated (double free).
    fn free(&mut self, id: PageId);

    /// Read a page's bytes into `out` (whose length must be at least the
    /// page size; exactly `page_size` bytes are written). Device failures
    /// surface as `Err`, never as panics.
    ///
    /// # Panics
    /// Panics on *logic* errors only: the page is not allocated or `out`
    /// is too short.
    fn read_into(&self, id: PageId, out: &mut [u8]) -> std::io::Result<()>;

    /// Overwrite a page's bytes. `data` may be shorter than the page; the
    /// remainder is zero-filled. Device failures surface as `Err`, never
    /// as panics; after an error the page's on-device contents are
    /// unspecified (a torn write may have landed a prefix).
    ///
    /// # Panics
    /// Panics on *logic* errors only: the page is not allocated or `data`
    /// exceeds the page size.
    fn write(&mut self, id: PageId, data: &[u8]) -> std::io::Result<()>;

    /// Make all previously written pages durable and atomically install
    /// `meta` as the store's recovery metadata. After a successful
    /// checkpoint, reopening the store yields exactly the checkpointed
    /// pages and `meta`. In-memory stores treat this as a no-op.
    fn checkpoint(&mut self, meta: &[u8]) -> std::io::Result<()> {
        let _ = meta;
        Ok(())
    }

    /// The recovery metadata installed by the most recent successful
    /// [`PageStore::checkpoint`], or `None` if the store has never been
    /// checkpointed (or does not persist anything).
    fn meta(&self) -> Option<Vec<u8>> {
        None
    }

    /// Counters of actual device traffic (`disk_reads` / `disk_writes` /
    /// `fsyncs`); all-zero for in-memory stores.
    fn disk_stats(&self) -> IoStats {
        IoStats::default()
    }

    /// Zero the device-traffic counters (no-op for in-memory stores).
    fn reset_disk_stats(&self) {}

    /// Seed the free list after recovery: `free` lists page ids that
    /// exist in the store but are unreachable from the recovered root
    /// (the caller computes reachability by walking the tree). In-memory
    /// stores never recover, so the default is a no-op.
    fn seed_free(&mut self, free: &[u32]) {
        let _ = free;
    }
}

impl<S: PageStore + ?Sized> PageStore for Box<S> {
    fn page_size(&self) -> usize {
        (**self).page_size()
    }

    fn live_pages(&self) -> usize {
        (**self).live_pages()
    }

    fn page_bound(&self) -> u32 {
        (**self).page_bound()
    }

    fn allocate(&mut self) -> PageId {
        (**self).allocate()
    }

    fn free(&mut self, id: PageId) {
        (**self).free(id)
    }

    fn read_into(&self, id: PageId, out: &mut [u8]) -> std::io::Result<()> {
        (**self).read_into(id, out)
    }

    fn write(&mut self, id: PageId, data: &[u8]) -> std::io::Result<()> {
        (**self).write(id, data)
    }

    fn checkpoint(&mut self, meta: &[u8]) -> std::io::Result<()> {
        (**self).checkpoint(meta)
    }

    fn meta(&self) -> Option<Vec<u8>> {
        (**self).meta()
    }

    fn disk_stats(&self) -> IoStats {
        (**self).disk_stats()
    }

    fn reset_disk_stats(&self) {
        (**self).reset_disk_stats()
    }

    fn seed_free(&mut self, free: &[u32]) {
        (**self).seed_free(free)
    }
}

/// An in-memory page store with a free list.
///
/// Pages are `page_size` bytes. Freed pages are recycled before new ones
/// are allocated, like a real database file.
#[derive(Debug)]
pub struct MemPager {
    page_size: usize,
    pages: Vec<Option<Box<[u8]>>>,
    free: Vec<u32>,
}

impl MemPager {
    /// Create a pager with the given page size (bytes).
    ///
    /// # Panics
    /// Panics if `page_size < 64` (too small to hold any node header plus
    /// one entry at any supported dimensionality).
    pub fn new(page_size: usize) -> MemPager {
        assert!(page_size >= 64, "page size {page_size} is too small");
        MemPager {
            page_size,
            pages: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Page size in bytes.
    #[inline]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of live (allocated, not freed) pages.
    pub fn live_pages(&self) -> usize {
        self.pages.len() - self.free.len()
    }

    /// Allocate a page and return its id. Contents are undefined until the
    /// first [`MemPager::write`].
    pub fn allocate(&mut self) -> PageId {
        if let Some(id) = self.free.pop() {
            self.pages[id as usize] = Some(vec![0u8; self.page_size].into_boxed_slice());
            return PageId(id);
        }
        let id = self.pages.len() as u32;
        assert!(id != u32::MAX, "pager exhausted the PageId space");
        self.pages
            .push(Some(vec![0u8; self.page_size].into_boxed_slice()));
        PageId(id)
    }

    /// Return a page to the free list.
    ///
    /// # Panics
    /// Panics if the page is not currently allocated (double free).
    pub fn free(&mut self, id: PageId) {
        let slot = self
            .pages
            .get_mut(id.0 as usize)
            .unwrap_or_else(|| panic!("free of out-of-range page {id}"));
        assert!(slot.is_some(), "double free of page {id}");
        *slot = None;
        self.free.push(id.0);
    }

    /// Read a page's bytes.
    ///
    /// # Panics
    /// Panics if the page is not allocated.
    pub fn read(&self, id: PageId) -> &[u8] {
        self.pages
            .get(id.0 as usize)
            .and_then(|p| p.as_deref())
            .unwrap_or_else(|| panic!("read of unallocated page {id}"))
    }

    /// Overwrite a page's bytes. `data` may be shorter than the page; the
    /// remainder is zero-filled.
    ///
    /// # Panics
    /// Panics if the page is not allocated or `data` exceeds the page size.
    pub fn write(&mut self, id: PageId, data: &[u8]) {
        assert!(
            data.len() <= self.page_size,
            "write of {} bytes exceeds page size {}",
            data.len(),
            self.page_size
        );
        let page = self
            .pages
            .get_mut(id.0 as usize)
            .and_then(|p| p.as_deref_mut())
            .unwrap_or_else(|| panic!("write to unallocated page {id}"));
        page[..data.len()].copy_from_slice(data);
        page[data.len()..].fill(0);
    }
}

impl PageStore for MemPager {
    fn page_size(&self) -> usize {
        MemPager::page_size(self)
    }

    fn live_pages(&self) -> usize {
        MemPager::live_pages(self)
    }

    fn page_bound(&self) -> u32 {
        self.pages.len() as u32
    }

    fn allocate(&mut self) -> PageId {
        MemPager::allocate(self)
    }

    fn free(&mut self, id: PageId) {
        MemPager::free(self, id)
    }

    fn read_into(&self, id: PageId, out: &mut [u8]) -> std::io::Result<()> {
        let page = MemPager::read(self, id);
        out[..page.len()].copy_from_slice(page);
        Ok(())
    }

    fn write(&mut self, id: PageId, data: &[u8]) -> std::io::Result<()> {
        MemPager::write(self, id, data);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_write_read_round_trip() {
        let mut p = MemPager::new(128);
        let a = p.allocate();
        let b = p.allocate();
        assert_ne!(a, b);
        p.write(a, &[1, 2, 3]);
        p.write(b, &[9; 128]);
        assert_eq!(&p.read(a)[..3], &[1, 2, 3]);
        assert_eq!(p.read(a)[3], 0, "tail must be zero-filled");
        assert_eq!(p.read(b)[127], 9);
    }

    #[test]
    fn free_list_recycles_pages() {
        let mut p = MemPager::new(128);
        let a = p.allocate();
        let _b = p.allocate();
        p.free(a);
        assert_eq!(p.live_pages(), 1);
        let c = p.allocate();
        assert_eq!(c, a, "freed page id should be recycled");
        assert_eq!(p.live_pages(), 2);
    }

    #[test]
    fn recycled_page_is_zeroed() {
        let mut p = MemPager::new(64);
        let a = p.allocate();
        p.write(a, &[7; 64]);
        p.free(a);
        let b = p.allocate();
        assert_eq!(b, a);
        assert!(p.read(b).iter().all(|&x| x == 0));
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut p = MemPager::new(64);
        let a = p.allocate();
        p.free(a);
        p.free(a);
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn read_after_free_panics() {
        let mut p = MemPager::new(64);
        let a = p.allocate();
        p.free(a);
        let _ = p.read(a);
    }

    #[test]
    #[should_panic(expected = "exceeds page size")]
    fn oversized_write_panics() {
        let mut p = MemPager::new(64);
        let a = p.allocate();
        p.write(a, &[0u8; 65]);
    }

    #[test]
    fn invalid_page_id_sentinel() {
        assert!(!PageId::INVALID.is_valid());
        assert!(PageId(0).is_valid());
    }
}
