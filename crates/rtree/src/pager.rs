//! The simulated disk: a page-granular byte store.
//!
//! Real deployments of the paper's system would put the object R-tree on
//! disk; for a reproducible laptop-scale experiment we simulate the disk
//! with an in-memory page store. The simulation is faithful at the level
//! that matters for the paper's metrics: every node access that misses the
//! LRU buffer pool costs one *physical* page transfer, counted by
//! [`crate::stats::IoStats`] in the buffer layer above.

/// Identifier of a fixed-size page in a [`MemPager`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl PageId {
    /// Sentinel value meaning "no page".
    pub const INVALID: PageId = PageId(u32::MAX);

    /// True iff this id refers to an actual page.
    #[inline]
    pub fn is_valid(self) -> bool {
        self != PageId::INVALID
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// An in-memory page store with a free list.
///
/// Pages are `page_size` bytes. Freed pages are recycled before new ones
/// are allocated, like a real database file.
#[derive(Debug)]
pub struct MemPager {
    page_size: usize,
    pages: Vec<Option<Box<[u8]>>>,
    free: Vec<u32>,
}

impl MemPager {
    /// Create a pager with the given page size (bytes).
    ///
    /// # Panics
    /// Panics if `page_size < 64` (too small to hold any node header plus
    /// one entry at any supported dimensionality).
    pub fn new(page_size: usize) -> MemPager {
        assert!(page_size >= 64, "page size {page_size} is too small");
        MemPager {
            page_size,
            pages: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Page size in bytes.
    #[inline]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of live (allocated, not freed) pages.
    pub fn live_pages(&self) -> usize {
        self.pages.len() - self.free.len()
    }

    /// Allocate a page and return its id. Contents are undefined until the
    /// first [`MemPager::write`].
    pub fn allocate(&mut self) -> PageId {
        if let Some(id) = self.free.pop() {
            self.pages[id as usize] = Some(vec![0u8; self.page_size].into_boxed_slice());
            return PageId(id);
        }
        let id = self.pages.len() as u32;
        assert!(id != u32::MAX, "pager exhausted the PageId space");
        self.pages
            .push(Some(vec![0u8; self.page_size].into_boxed_slice()));
        PageId(id)
    }

    /// Return a page to the free list.
    ///
    /// # Panics
    /// Panics if the page is not currently allocated (double free).
    pub fn free(&mut self, id: PageId) {
        let slot = self
            .pages
            .get_mut(id.0 as usize)
            .unwrap_or_else(|| panic!("free of out-of-range page {id}"));
        assert!(slot.is_some(), "double free of page {id}");
        *slot = None;
        self.free.push(id.0);
    }

    /// Read a page's bytes.
    ///
    /// # Panics
    /// Panics if the page is not allocated.
    pub fn read(&self, id: PageId) -> &[u8] {
        self.pages
            .get(id.0 as usize)
            .and_then(|p| p.as_deref())
            .unwrap_or_else(|| panic!("read of unallocated page {id}"))
    }

    /// Overwrite a page's bytes. `data` may be shorter than the page; the
    /// remainder is zero-filled.
    ///
    /// # Panics
    /// Panics if the page is not allocated or `data` exceeds the page size.
    pub fn write(&mut self, id: PageId, data: &[u8]) {
        assert!(
            data.len() <= self.page_size,
            "write of {} bytes exceeds page size {}",
            data.len(),
            self.page_size
        );
        let page = self
            .pages
            .get_mut(id.0 as usize)
            .and_then(|p| p.as_deref_mut())
            .unwrap_or_else(|| panic!("write to unallocated page {id}"));
        page[..data.len()].copy_from_slice(data);
        page[data.len()..].fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_write_read_round_trip() {
        let mut p = MemPager::new(128);
        let a = p.allocate();
        let b = p.allocate();
        assert_ne!(a, b);
        p.write(a, &[1, 2, 3]);
        p.write(b, &[9; 128]);
        assert_eq!(&p.read(a)[..3], &[1, 2, 3]);
        assert_eq!(p.read(a)[3], 0, "tail must be zero-filled");
        assert_eq!(p.read(b)[127], 9);
    }

    #[test]
    fn free_list_recycles_pages() {
        let mut p = MemPager::new(128);
        let a = p.allocate();
        let _b = p.allocate();
        p.free(a);
        assert_eq!(p.live_pages(), 1);
        let c = p.allocate();
        assert_eq!(c, a, "freed page id should be recycled");
        assert_eq!(p.live_pages(), 2);
    }

    #[test]
    fn recycled_page_is_zeroed() {
        let mut p = MemPager::new(64);
        let a = p.allocate();
        p.write(a, &[7; 64]);
        p.free(a);
        let b = p.allocate();
        assert_eq!(b, a);
        assert!(p.read(b).iter().all(|&x| x == 0));
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut p = MemPager::new(64);
        let a = p.allocate();
        p.free(a);
        p.free(a);
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn read_after_free_panics() {
        let mut p = MemPager::new(64);
        let a = p.allocate();
        p.free(a);
        let _ = p.read(a);
    }

    #[test]
    #[should_panic(expected = "exceeds page size")]
    fn oversized_write_panics() {
        let mut p = MemPager::new(64);
        let a = p.allocate();
        p.write(a, &[0u8; 65]);
    }

    #[test]
    fn invalid_page_id_sentinel() {
        assert!(!PageId::INVALID.is_valid());
        assert!(PageId(0).is_valid());
    }
}
