//! A compact container for fixed-dimensionality point collections.
//!
//! Storing every point in its own `Vec<f64>` would cost one heap
//! allocation per object; [`PointSet`] instead keeps a single flat
//! `Vec<f64>` with stride `dim`, which is both cache-friendly and
//! allocation-free per point (a recommendation of the Rust Performance
//! Book for oft-instantiated data).

/// A set of `D`-dimensional points stored as one flat buffer.
///
/// Point `i` occupies `data[i*dim .. (i+1)*dim]`. Object identifiers are
/// implicit: the point at index `i` has id `i` (as `u64`) unless callers
/// maintain their own mapping.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PointSet {
    dim: usize,
    data: Vec<f64>,
}

impl PointSet {
    /// Create an empty point set of the given dimensionality.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> PointSet {
        assert!(dim > 0, "PointSet dimensionality must be positive");
        PointSet {
            dim,
            data: Vec::new(),
        }
    }

    /// Create an empty point set with room for `n` points.
    pub fn with_capacity(dim: usize, n: usize) -> PointSet {
        assert!(dim > 0, "PointSet dimensionality must be positive");
        PointSet {
            dim,
            data: Vec::with_capacity(dim * n),
        }
    }

    /// Wrap an existing flat buffer (length must be a multiple of `dim`).
    ///
    /// # Panics
    /// Panics if `data.len()` is not a multiple of `dim` or `dim == 0`.
    pub fn from_flat(dim: usize, data: Vec<f64>) -> PointSet {
        assert!(dim > 0, "PointSet dimensionality must be positive");
        assert_eq!(
            data.len() % dim,
            0,
            "flat buffer length {} is not a multiple of dim {}",
            data.len(),
            dim
        );
        PointSet { dim, data }
    }

    /// Dimensionality of every point in the set.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// True iff the set holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append a point; returns its index.
    ///
    /// # Panics
    /// Panics if `p.len() != self.dim()`.
    pub fn push(&mut self, p: &[f64]) -> usize {
        assert_eq!(p.len(), self.dim, "point dimensionality mismatch");
        self.data.extend_from_slice(p);
        self.len() - 1
    }

    /// Borrow point `i`.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn get(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Iterate over `(index, point)` pairs.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (usize, &[f64])> + '_ {
        self.data.chunks_exact(self.dim).enumerate()
    }

    /// The underlying flat buffer.
    #[inline]
    pub fn as_flat(&self) -> &[f64] {
        &self.data
    }

    /// Keep only the first `n` points (no-op if `n >= len`). Used to carve
    /// cardinality subsets out of a generated dataset, as the paper does
    /// with the Zillow samples.
    pub fn truncate(&mut self, n: usize) {
        let keep = n.min(self.len());
        self.data.truncate(keep * self.dim);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_round_trip() {
        let mut ps = PointSet::new(3);
        assert!(ps.is_empty());
        let i = ps.push(&[0.1, 0.2, 0.3]);
        let j = ps.push(&[0.4, 0.5, 0.6]);
        assert_eq!((i, j), (0, 1));
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.get(1), &[0.4, 0.5, 0.6]);
    }

    #[test]
    fn iter_yields_indexed_points() {
        let mut ps = PointSet::new(2);
        ps.push(&[1.0, 2.0]);
        ps.push(&[3.0, 4.0]);
        let v: Vec<_> = ps.iter().collect();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0], (0, &[1.0, 2.0][..]));
        assert_eq!(v[1], (1, &[3.0, 4.0][..]));
    }

    #[test]
    fn from_flat_validates_length() {
        let ps = PointSet::from_flat(2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(ps.len(), 2);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn from_flat_rejects_ragged_buffer() {
        let _ = PointSet::from_flat(2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn push_rejects_wrong_dim() {
        let mut ps = PointSet::new(2);
        ps.push(&[1.0]);
    }

    #[test]
    fn truncate_keeps_prefix() {
        let mut ps = PointSet::from_flat(2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        ps.truncate(2);
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.get(1), &[3.0, 4.0]);
        ps.truncate(10); // no-op beyond length
        assert_eq!(ps.len(), 2);
    }
}
