//! Branch-and-bound ranked search over the R-tree ("BRS", Tao et al.,
//! Information Systems 32(3), 2007).
//!
//! Given a linear scoring function with non-negative weights, the score
//! of any point inside an MBR is upper-bounded by the score of the MBR's
//! *upper corner*. A best-first traversal that expands entries in
//! decreasing bound order therefore emits points in exact descending
//! score order: when a point reaches the top of the priority queue, no
//! unexpanded subtree can contain anything better.
//!
//! This module provides the one-shot [`crate::RTree::top1`] /
//! [`crate::RTree::top_k`] and the incremental [`RankedIter`] used by the
//! Brute Force and Chain matchers of the paper.
//!
//! Ties are resolved deterministically: equal-bound inner entries are
//! expanded before equal-score points are emitted, and equal-score points
//! are emitted in ascending object id order. This makes every matcher in
//! the workspace produce identical assignments even on tie-heavy data.

use std::collections::BinaryHeap;

use crate::geometry::{dot, upper_score};
use crate::node::Node;
use crate::session::NodeSource;
use crate::tree::RTree;

/// One result of a ranked search.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedHit {
    /// Object id of the point.
    pub oid: u64,
    /// Its score under the query weights.
    pub score: f64,
    /// The point itself.
    pub point: Box<[f64]>,
}

/// A scoring function usable by branch-and-bound ranked search.
///
/// # Contract
/// [`Scorer::bound`] must upper-bound [`Scorer::score`] over every point
/// `p` with `p[i] <= hi[i]` in all dimensions. For any function that is
/// *monotone non-decreasing* in every attribute — the paper's function
/// class — `score(hi)` itself is such a bound, which is what
/// [`MonotoneScorer`] provides. An inadmissible bound silently yields
/// wrong (non-top) results; it is a logic error, not detected at
/// runtime.
pub trait Scorer {
    /// Score of a concrete point.
    fn score(&self, point: &[f64]) -> f64;

    /// Upper bound of the score over the MBR with upper corner `hi`.
    fn bound(&self, hi: &[f64]) -> f64;
}

/// Linear scorer `w · p` with non-negative weights (the paper's focus).
#[derive(Debug, Clone)]
pub struct LinearScorer(Box<[f64]>);

impl LinearScorer {
    /// Wrap a weight vector.
    ///
    /// # Panics
    /// Panics if any weight is negative or non-finite (the upper-corner
    /// bound would be inadmissible).
    pub fn new(weights: &[f64]) -> LinearScorer {
        assert!(
            weights.iter().all(|&w| w.is_finite() && w >= 0.0),
            "ranked search requires finite, non-negative weights"
        );
        LinearScorer(weights.into())
    }
}

impl Scorer for LinearScorer {
    #[inline]
    fn score(&self, point: &[f64]) -> f64 {
        dot(&self.0, point)
    }

    #[inline]
    fn bound(&self, hi: &[f64]) -> f64 {
        upper_score(&self.0, hi)
    }
}

/// Borrowing variant of [`LinearScorer`]: scores `w · p` without copying
/// the weight vector. Built for hot loops that issue one short ranked
/// search per iteration (the Brute Force restart and Chain matchers),
/// where the per-search `Box<[f64]>` of [`LinearScorer`] is measurable
/// churn.
#[derive(Debug, Clone, Copy)]
pub struct LinearScorerRef<'w>(&'w [f64]);

impl<'w> LinearScorerRef<'w> {
    /// Borrow a weight vector.
    ///
    /// # Panics
    /// Panics if any weight is negative or non-finite (the upper-corner
    /// bound would be inadmissible).
    pub fn new(weights: &'w [f64]) -> LinearScorerRef<'w> {
        assert!(
            weights.iter().all(|&w| w.is_finite() && w >= 0.0),
            "ranked search requires finite, non-negative weights"
        );
        LinearScorerRef(weights)
    }
}

impl Scorer for LinearScorerRef<'_> {
    #[inline]
    fn score(&self, point: &[f64]) -> f64 {
        dot(self.0, point)
    }

    #[inline]
    fn bound(&self, hi: &[f64]) -> f64 {
        upper_score(self.0, hi)
    }
}

/// Adapter turning any monotone non-decreasing function into a
/// [`Scorer`] via the upper-corner bound.
///
/// The caller asserts monotonicity; see the [`Scorer`] contract.
#[derive(Debug, Clone)]
pub struct MonotoneScorer<F>(pub F);

impl<F: Fn(&[f64]) -> f64> Scorer for MonotoneScorer<F> {
    #[inline]
    fn score(&self, point: &[f64]) -> f64 {
        (self.0)(point)
    }

    #[inline]
    fn bound(&self, hi: &[f64]) -> f64 {
        (self.0)(hi)
    }
}

#[derive(Debug)]
enum Cand {
    Node { pid: u32 },
    Point { oid: u64, point: Box<[f64]> },
}

#[derive(Debug)]
struct HeapItem {
    bound: f64,
    cand: Cand,
}

impl HeapItem {
    /// Rank for tie-breaking at equal bound: nodes first (so ties hiding
    /// in subtrees are surfaced before a point is emitted), then points
    /// by ascending id.
    fn tie_rank(&self) -> (u8, u64) {
        match &self.cand {
            Cand::Node { pid } => (1, *pid as u64),
            Cand::Point { oid, .. } => (0, *oid),
        }
    }
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for HeapItem {}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: larger = popped first.
        self.bound.total_cmp(&other.bound).then_with(|| {
            let (ka, ia) = self.tie_rank();
            let (kb, ib) = other.tie_rank();
            // nodes (rank 1) before points (rank 0), then smaller ids first
            ka.cmp(&kb).then_with(|| ib.cmp(&ia))
        })
    }
}

/// Reusable frontier storage for [`RankedIter`].
///
/// Every ranked search keeps a priority queue of candidate entries; a
/// matcher that issues thousands of short top-1 searches (Brute Force
/// restart, Chain) otherwise allocates and drops that queue thousands of
/// times. A `SearchBuf` owns the queue's backing storage across
/// searches: pass it to [`RankedIter::over_reusing`], and take it back
/// with [`RankedIter::recycle`] when the search is done. The buffer is
/// opaque and starts every search empty — reuse affects allocation only,
/// never results.
#[derive(Default)]
pub struct SearchBuf(Vec<HeapItem>);

impl SearchBuf {
    /// An empty buffer (no allocation until first use).
    pub fn new() -> SearchBuf {
        SearchBuf::default()
    }

    /// Number of heap entries the buffer can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.0.capacity()
    }
}

impl std::fmt::Debug for SearchBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchBuf")
            .field("capacity", &self.0.capacity())
            .finish()
    }
}

/// Incremental top-k iterator: each [`RankedIter::next`] call returns the
/// next-best point in descending score order, reading tree pages lazily.
///
/// Generic over the node access path ([`NodeSource`]): searches run
/// against a bare [`RTree`] (the default) or a run-scoped
/// [`crate::IoSession`], which attributes the page traffic to one run.
pub struct RankedIter<'t, S: Scorer = LinearScorer, Src: NodeSource = RTree> {
    src: &'t Src,
    scorer: S,
    heap: BinaryHeap<HeapItem>,
}

impl<'t, S: Scorer, Src: NodeSource> RankedIter<'t, S, Src> {
    /// Ranked search over any [`NodeSource`] — a bare tree or a
    /// run-scoped [`crate::IoSession`].
    ///
    /// The scorer's bound must be admissible over the source's tree (see
    /// the [`Scorer`] contract).
    pub fn over(src: &'t Src, scorer: S) -> RankedIter<'t, S, Src> {
        Self::over_reusing(src, scorer, SearchBuf::new())
    }

    /// Like [`RankedIter::over`], but reusing the frontier storage of an
    /// earlier search (see [`SearchBuf`]). Recover the storage with
    /// [`RankedIter::recycle`].
    pub fn over_reusing(src: &'t Src, scorer: S, buf: SearchBuf) -> RankedIter<'t, S, Src> {
        let mut storage = buf.0;
        storage.clear();
        let root = src.read_node(src.root_page());
        let mut it = RankedIter {
            src,
            scorer,
            heap: BinaryHeap::from(storage),
        };
        // Seed with the root's entries (reading the root costs 1 logical
        // access, matching how the paper counts a query's first page).
        it.expand(&root);
        it
    }

    pub(crate) fn with_scorer(src: &'t Src, scorer: S) -> RankedIter<'t, S, Src> {
        Self::over(src, scorer)
    }

    /// Abandon the search, keeping the frontier's backing allocation for
    /// the next one.
    pub fn recycle(self) -> SearchBuf {
        SearchBuf(self.heap.into_vec())
    }

    /// Number of entries currently held in the search frontier (the
    /// priority queue). Persistent incremental searches — as used by the
    /// paper's Brute Force matcher — keep one frontier per query; this
    /// accessor lets callers account for that memory.
    pub fn frontier_len(&self) -> usize {
        self.heap.len()
    }

    fn expand(&mut self, node: &Node) {
        match node {
            Node::Leaf(leaf) => {
                for (oid, p) in leaf.iter() {
                    self.heap.push(HeapItem {
                        bound: self.scorer.score(p),
                        cand: Cand::Point {
                            oid,
                            point: p.into(),
                        },
                    });
                }
            }
            Node::Inner(inner) => {
                for i in 0..inner.len() {
                    self.heap.push(HeapItem {
                        bound: self.scorer.bound(inner.hi(i)),
                        cand: Cand::Node {
                            pid: inner.child(i).0,
                        },
                    });
                }
            }
        }
    }
}

impl<S: Scorer, Src: NodeSource> Iterator for RankedIter<'_, S, Src> {
    type Item = RankedHit;

    fn next(&mut self) -> Option<RankedHit> {
        while let Some(item) = self.heap.pop() {
            match item.cand {
                Cand::Point { oid, point } => {
                    return Some(RankedHit {
                        oid,
                        score: item.bound,
                        point,
                    });
                }
                Cand::Node { pid } => {
                    let node = self.src.read_node(crate::pager::PageId(pid));
                    self.expand(&node);
                }
            }
        }
        None
    }
}

impl RTree {
    /// Incremental ranked search: yields points in descending
    /// `weights · point` order.
    pub fn ranked_iter(&self, weights: &[f64]) -> RankedIter<'_> {
        assert_eq!(
            weights.len(),
            self.dim(),
            "weight vector dimensionality mismatch"
        );
        RankedIter::with_scorer(self, LinearScorer::new(weights))
    }

    /// Incremental ranked search under an arbitrary [`Scorer`] (e.g. a
    /// monotone non-linear preference via [`MonotoneScorer`]).
    pub fn ranked_iter_by<S: Scorer>(&self, scorer: S) -> RankedIter<'_, S> {
        RankedIter::with_scorer(self, scorer)
    }

    /// The single best point under the given weights (`None` on an empty
    /// tree). Equal scores resolve to the smallest object id.
    pub fn top1(&self, weights: &[f64]) -> Option<RankedHit> {
        self.ranked_iter(weights).next()
    }

    /// The best point under an arbitrary [`Scorer`].
    pub fn top1_by<S: Scorer>(&self, scorer: S) -> Option<RankedHit> {
        self.ranked_iter_by(scorer).next()
    }

    /// The `k` best points in descending score order (fewer if the tree
    /// holds fewer points).
    pub fn top_k(&self, weights: &[f64], k: usize) -> Vec<RankedHit> {
        self.ranked_iter(weights).take(k).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::points::PointSet;
    use crate::tree::RTreeParams;

    fn params() -> RTreeParams {
        RTreeParams {
            page_size: 256,
            min_fill_ratio: 0.4,
            buffer_capacity: 1024,
        }
    }

    fn seeded_points(n: usize, dim: usize, seed: u64) -> PointSet {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut ps = PointSet::with_capacity(dim, n);
        for _ in 0..n {
            let p: Vec<f64> = (0..dim).map(|_| next()).collect();
            ps.push(&p);
        }
        ps
    }

    fn brute_top_k(ps: &PointSet, w: &[f64], k: usize) -> Vec<(u64, f64)> {
        let mut scored: Vec<(u64, f64)> = ps.iter().map(|(i, p)| (i as u64, dot(w, p))).collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored.truncate(k);
        scored
    }

    #[test]
    fn top_k_matches_brute_force_on_random_data() {
        let ps = seeded_points(800, 3, 21);
        let tree = RTree::bulk_load(&ps, params());
        for w in [
            [1.0, 0.0, 0.0],
            [0.0, 0.5, 0.5],
            [0.2, 0.3, 0.5],
            [1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0],
        ] {
            let got: Vec<(u64, f64)> = tree
                .top_k(&w, 25)
                .into_iter()
                .map(|h| (h.oid, h.score))
                .collect();
            let expect = brute_top_k(&ps, &w, 25);
            for (g, e) in got.iter().zip(expect.iter()) {
                assert_eq!(g.0, e.0, "rank order mismatch for weights {w:?}");
                assert!((g.1 - e.1).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn iterator_emits_monotonically_decreasing_scores() {
        let ps = seeded_points(500, 2, 8);
        let tree = RTree::bulk_load(&ps, params());
        let mut last = f64::INFINITY;
        let mut n = 0;
        for hit in tree.ranked_iter(&[0.6, 0.4]) {
            assert!(hit.score <= last + 1e-15);
            last = hit.score;
            n += 1;
        }
        assert_eq!(n, 500, "iterator must eventually emit every point");
    }

    #[test]
    fn equal_scores_emit_in_ascending_oid_order() {
        let mut ps = PointSet::new(2);
        // four points with identical score 0.5 under w = (0.5, 0.5)
        ps.push(&[0.5, 0.5]);
        ps.push(&[0.6, 0.4]);
        ps.push(&[0.4, 0.6]);
        ps.push(&[0.3, 0.7]);
        ps.push(&[0.9, 0.8]); // clearly best, score 0.85
        let tree = RTree::bulk_load(&ps, params());
        let hits = tree.top_k(&[0.5, 0.5], 5);
        assert_eq!(hits[0].oid, 4);
        let rest: Vec<u64> = hits[1..].iter().map(|h| h.oid).collect();
        assert_eq!(rest, vec![0, 1, 2, 3], "ties must break by ascending oid");
    }

    #[test]
    fn top1_on_empty_tree_is_none() {
        let tree = RTree::new(2, params());
        assert!(tree.top1(&[0.5, 0.5]).is_none());
    }

    #[test]
    fn top1_respects_deletions() {
        let ps = seeded_points(300, 2, 77);
        let tree = RTree::bulk_load(&ps, params());
        let w = [0.7, 0.3];
        let first = tree.top1(&w).unwrap();
        assert!(tree.delete(&first.point, first.oid));
        let second = tree.top1(&w).unwrap();
        assert_ne!(first.oid, second.oid);
        assert!(second.score <= first.score);
        let expect = brute_top_k(&ps, &w, 2)[1];
        assert_eq!(second.oid, expect.0);
    }

    #[test]
    fn zero_weights_are_allowed() {
        let ps = seeded_points(100, 3, 5);
        let tree = RTree::bulk_load(&ps, params());
        let hit = tree.top1(&[0.0, 0.0, 1.0]).unwrap();
        let expect = brute_top_k(&ps, &[0.0, 0.0, 1.0], 1)[0];
        assert_eq!(hit.oid, expect.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weights_are_rejected() {
        let ps = seeded_points(10, 2, 1);
        let tree = RTree::bulk_load(&ps, params());
        let _ = tree.top1(&[-0.5, 1.5]);
    }

    #[test]
    fn monotone_scorer_matches_brute_force() {
        let ps = seeded_points(600, 3, 29);
        let tree = RTree::bulk_load(&ps, params());
        // weighted geometric-mean-like monotone score
        let f = |p: &[f64]| (p[0] + 0.1).ln() + 2.0 * (p[1] + 0.1).ln() + (p[2] + 0.1).ln();
        let got = tree.top1_by(MonotoneScorer(f)).unwrap();
        let expect = ps
            .iter()
            .max_by(|(_, a), (_, b)| f(a).total_cmp(&f(b)))
            .unwrap();
        assert_eq!(got.oid, expect.0 as u64);
    }

    #[test]
    fn min_scorer_is_supported() {
        // min over attributes is monotone; its maximizer is the most
        // "balanced strong" point
        let ps = seeded_points(400, 2, 31);
        let tree = RTree::bulk_load(&ps, params());
        let f = |p: &[f64]| p.iter().cloned().fold(f64::INFINITY, f64::min);
        let got = tree.top1_by(MonotoneScorer(f)).unwrap();
        let expect = ps
            .iter()
            .max_by(|(_, a), (_, b)| f(a).total_cmp(&f(b)))
            .unwrap();
        assert_eq!(got.oid, expect.0 as u64);
    }

    #[test]
    fn ranked_iter_by_emits_in_descending_order() {
        let ps = seeded_points(300, 2, 37);
        let tree = RTree::bulk_load(&ps, params());
        let f = |p: &[f64]| p[0].sqrt() + p[1].powi(2);
        let mut last = f64::INFINITY;
        let mut n = 0;
        for hit in tree.ranked_iter_by(MonotoneScorer(f)) {
            assert!(hit.score <= last + 1e-12);
            last = hit.score;
            n += 1;
        }
        assert_eq!(n, 300);
    }

    #[test]
    fn reused_search_buf_matches_fresh_searches_and_keeps_capacity() {
        let ps = seeded_points(800, 2, 47);
        let tree = RTree::bulk_load(&ps, params());
        let mut buf = SearchBuf::new();
        let mut grown = 0usize;
        for w in [[0.9, 0.1], [0.5, 0.5], [0.1, 0.9], [0.7, 0.3]] {
            let mut it = RankedIter::over_reusing(&tree, LinearScorerRef::new(&w), buf);
            let hit = it.next().unwrap();
            let fresh = tree.top1(&w).unwrap();
            assert_eq!(hit.oid, fresh.oid);
            assert_eq!(hit.score, fresh.score);
            buf = it.recycle();
            grown = grown.max(buf.capacity());
            assert!(buf.capacity() > 0, "storage survives recycling");
        }
        assert_eq!(buf.capacity(), grown, "allocation is reused, not redone");
    }

    #[test]
    fn borrowing_scorer_agrees_with_owning_scorer() {
        let ps = seeded_points(300, 3, 53);
        let tree = RTree::bulk_load(&ps, params());
        let w = [0.2, 0.5, 0.3];
        let owned: Vec<u64> = tree.ranked_iter(&w).take(30).map(|h| h.oid).collect();
        let borrowed: Vec<u64> = RankedIter::over(&tree, LinearScorerRef::new(&w))
            .take(30)
            .map(|h| h.oid)
            .collect();
        assert_eq!(owned, borrowed);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn borrowing_scorer_rejects_negative_weights() {
        let _ = LinearScorerRef::new(&[0.5, -0.1]);
    }

    #[test]
    fn ranked_search_reads_few_pages() {
        // Best-first search should touch a small fraction of a large tree.
        let ps = seeded_points(20_000, 2, 13);
        let tree = RTree::bulk_load(
            &ps,
            RTreeParams {
                page_size: 4096,
                min_fill_ratio: 0.4,
                buffer_capacity: 10_000,
            },
        );
        tree.reset_io_stats();
        let _ = tree.top1(&[0.5, 0.5]).unwrap();
        let io = tree.io_stats();
        let total_pages = tree.page_count() as u64;
        assert!(
            io.physical_reads * 10 < total_pages,
            "top-1 search read {}/{} pages",
            io.physical_reads,
            total_pages
        );
    }
}
