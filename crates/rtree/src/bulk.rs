//! Sort-Tile-Recursive (STR) bulk loading (Leutenegger et al., ICDE 1997).
//!
//! STR packs a static dataset into an R-tree with ~100% leaf utilization
//! and good spatial clustering: the points are recursively sorted and
//! sliced into vertical "slabs" one axis at a time, and the resulting
//! tiles become leaves. Upper levels are built by applying the same
//! packing to the child MBR centers. This is how the experiment datasets
//! (up to 400 K objects) are indexed before a run.

use crate::buffer::BufferPool;
use crate::geometry::Mbr;
use crate::node::{InnerNode, LeafNode, Node};
use crate::pager::PageId;
use crate::points::PointSet;

/// Output of a bulk load: root page, tree height (levels; 1 = root leaf),
/// and the number of indexed points.
pub(crate) struct BulkResult {
    pub root: PageId,
    pub height: u32,
    pub len: u64,
}

/// Pack `points` into pages through `buf`, returning the new root.
/// Object ids are the point indices, or `oids[i]` when an explicit oid
/// slice (same length as `points`) is supplied — the hook sharded
/// engines use to index globally minted ids directly.
pub(crate) fn str_bulk_load(
    buf: &BufferPool,
    points: &PointSet,
    oids: Option<&[u64]>,
    leaf_cap: usize,
    inner_cap: usize,
) -> BulkResult {
    if let Some(ids) = oids {
        assert_eq!(ids.len(), points.len(), "oid slice length mismatch");
    }
    let dim = points.dim();
    if points.is_empty() {
        let root = buf.allocate();
        buf.put(root, Node::Leaf(LeafNode::new(dim)));
        return BulkResult {
            root,
            height: 1,
            len: 0,
        };
    }

    // --- leaf level ---
    let mut idx: Vec<u32> = (0..points.len() as u32).collect();
    let mut groups: Vec<(usize, usize)> = Vec::new(); // ranges into idx
    tile(&mut idx, 0, &mut groups, dim, leaf_cap, &|i, axis| {
        points.get(i as usize)[axis]
    });

    let mut level_entries: Vec<(Mbr, PageId)> = Vec::with_capacity(groups.len());
    for &(start, end) in &groups {
        let mut leaf = LeafNode::new(dim);
        let mut mbr = Mbr::empty(dim);
        for &i in &idx[start..end] {
            let p = points.get(i as usize);
            let oid = oids.map_or(i as u64, |ids| ids[i as usize]);
            leaf.push(p, oid);
            mbr.union_point(p);
        }
        let pid = buf.allocate();
        buf.put(pid, Node::Leaf(leaf));
        level_entries.push((mbr, pid));
    }

    // --- upper levels ---
    let mut level = 1u8;
    while level_entries.len() > 1 {
        let mut idx: Vec<u32> = (0..level_entries.len() as u32).collect();
        let mut groups: Vec<(usize, usize)> = Vec::new();
        tile(&mut idx, 0, &mut groups, dim, inner_cap, &|i, axis| {
            let m = &level_entries[i as usize].0;
            0.5 * (m.lo[axis] + m.hi[axis])
        });
        let mut next: Vec<(Mbr, PageId)> = Vec::with_capacity(groups.len());
        for &(start, end) in &groups {
            let mut node = InnerNode::new(dim, level);
            let mut mbr = Mbr::empty(dim);
            for &i in &idx[start..end] {
                let (child_mbr, child_pid) = &level_entries[i as usize];
                node.push(&child_mbr.lo, &child_mbr.hi, *child_pid);
                mbr.union_rect(&child_mbr.lo, &child_mbr.hi);
            }
            let pid = buf.allocate();
            buf.put(pid, Node::Inner(node));
            next.push((mbr, pid));
        }
        level_entries = next;
        level += 1;
    }

    BulkResult {
        root: level_entries[0].1,
        height: level as u32,
        len: points.len() as u64,
    }
}

/// Recursive STR tiling: sort `items` along `axis`, slice into slabs, and
/// recurse on the next axis; at the last axis emit groups of at most
/// `cap`. Group boundaries are recorded as ranges into the (reordered)
/// `items` buffer.
fn tile(
    items: &mut [u32],
    axis: usize,
    out_ranges: &mut Vec<(usize, usize)>,
    dim: usize,
    cap: usize,
    key: &impl Fn(u32, usize) -> f64,
) {
    tile_rec(items, 0, axis, out_ranges, dim, cap, key);
}

fn tile_rec(
    items: &mut [u32],
    base: usize,
    axis: usize,
    out_ranges: &mut Vec<(usize, usize)>,
    dim: usize,
    cap: usize,
    key: &impl Fn(u32, usize) -> f64,
) {
    let n = items.len();
    if n == 0 {
        return;
    }
    items.sort_by(|&a, &b| key(a, axis).total_cmp(&key(b, axis)).then(a.cmp(&b)));
    if axis == dim - 1 || n <= cap {
        let mut start = 0;
        while start < n {
            let end = (start + cap).min(n);
            out_ranges.push((base + start, base + end));
            start = end;
        }
        return;
    }
    let num_groups = n.div_ceil(cap);
    let remaining_axes = (dim - axis) as f64;
    let slabs = (num_groups as f64).powf(1.0 / remaining_axes).ceil() as usize;
    let slab_size = n.div_ceil(slabs.max(1));
    let mut start = 0;
    while start < n {
        let end = (start + slab_size).min(n);
        tile_rec(
            &mut items[start..end],
            base + start,
            axis + 1,
            out_ranges,
            dim,
            cap,
            key,
        );
        start = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::MemPager;

    fn grid_points(side: usize) -> PointSet {
        let mut ps = PointSet::new(2);
        for x in 0..side {
            for y in 0..side {
                ps.push(&[x as f64 / side as f64, y as f64 / side as f64]);
            }
        }
        ps
    }

    fn load(points: &PointSet, page: usize) -> (BufferPool, BulkResult) {
        let buf = BufferPool::new(MemPager::new(page), points.dim(), 1024);
        let res = str_bulk_load(
            &buf,
            points,
            None,
            leaf_cap(page, points.dim()),
            inner_cap(page, points.dim()),
        );
        (buf, res)
    }

    fn leaf_cap(page: usize, dim: usize) -> usize {
        (page - 8) / (8 * dim + 8)
    }

    fn inner_cap(page: usize, dim: usize) -> usize {
        (page - 8) / (16 * dim + 4)
    }

    /// Recursively count points and check structure.
    fn count_points(buf: &BufferPool, pid: PageId, expected_level: Option<u8>) -> usize {
        let node = buf.get(pid);
        if let Some(l) = expected_level {
            assert_eq!(node.level(), l, "level mismatch at {pid}");
        }
        match &*node {
            Node::Leaf(leaf) => leaf.len(),
            Node::Inner(inner) => {
                let mut total = 0;
                for i in 0..inner.len() {
                    let child = buf.get(inner.child(i));
                    // stored MBR must equal the child's tight MBR
                    let tight = child.mbr();
                    assert_eq!(inner.lo(i), &*tight.lo, "loose lo MBR");
                    assert_eq!(inner.hi(i), &*tight.hi, "loose hi MBR");
                    total += count_points(buf, inner.child(i), Some(node.level() - 1));
                }
                total
            }
        }
    }

    #[test]
    fn bulk_load_indexes_every_point() {
        let ps = grid_points(30); // 900 points
        let (buf, res) = load(&ps, 512);
        assert_eq!(res.len, 900);
        assert_eq!(count_points(&buf, res.root, None), 900);
        assert!(res.height >= 2, "900 points cannot fit one 512B leaf");
    }

    #[test]
    fn bulk_load_empty_set_gives_empty_leaf_root() {
        let ps = PointSet::new(3);
        let (buf, res) = load(&ps, 512);
        assert_eq!(res.height, 1);
        assert_eq!(buf.get(res.root).len(), 0);
    }

    #[test]
    fn bulk_load_single_point() {
        let mut ps = PointSet::new(2);
        ps.push(&[0.3, 0.7]);
        let (buf, res) = load(&ps, 512);
        assert_eq!(res.height, 1);
        let root = buf.get(res.root);
        assert_eq!(root.as_leaf().oid(0), 0);
        assert_eq!(root.as_leaf().point(0), &[0.3, 0.7]);
    }

    #[test]
    fn bulk_load_with_explicit_oids() {
        let ps = grid_points(10); // 100 points
        let oids: Vec<u64> = (0..ps.len() as u64).map(|i| i * 7 + 3).collect();
        let buf = BufferPool::new(MemPager::new(512), ps.dim(), 1024);
        let res = str_bulk_load(&buf, &ps, Some(&oids), leaf_cap(512, 2), inner_cap(512, 2));
        assert_eq!(res.len, 100);
        fn collect(buf: &BufferPool, pid: PageId, out: &mut Vec<u64>) {
            match &*buf.get(pid) {
                Node::Leaf(l) => {
                    for i in 0..l.len() {
                        out.push(l.oid(i));
                    }
                }
                Node::Inner(n) => {
                    for i in 0..n.len() {
                        collect(buf, n.child(i), out);
                    }
                }
            }
        }
        let mut seen = Vec::new();
        collect(&buf, res.root, &mut seen);
        seen.sort_unstable();
        let mut want = oids.clone();
        want.sort_unstable();
        assert_eq!(seen, want);
    }

    #[test]
    fn leaves_respect_capacity() {
        let ps = grid_points(20);
        let page = 512;
        let cap = leaf_cap(page, 2);
        let (buf, res) = load(&ps, page);
        fn walk(buf: &BufferPool, pid: PageId, cap: usize, inner_cap: usize) {
            let node = buf.get(pid);
            match &*node {
                Node::Leaf(l) => assert!(l.len() <= cap, "leaf overflow: {}", l.len()),
                Node::Inner(n) => {
                    assert!(n.len() <= inner_cap, "inner overflow: {}", n.len());
                    for i in 0..n.len() {
                        walk(buf, n.child(i), cap, inner_cap);
                    }
                }
            }
        }
        walk(&buf, res.root, cap, inner_cap(page, 2));
    }

    #[test]
    fn str_produces_high_leaf_utilization() {
        let ps = grid_points(40); // 1600 points
        let page = 512;
        let cap = leaf_cap(page, 2); // (512-8)/24 = 21
        let (buf, res) = load(&ps, page);
        let mut leaves = 0usize;
        fn count_leaves(buf: &BufferPool, pid: PageId, leaves: &mut usize) {
            let node = buf.get(pid);
            match &*node {
                Node::Leaf(_) => *leaves += 1,
                Node::Inner(n) => {
                    for i in 0..n.len() {
                        count_leaves(buf, n.child(i), leaves);
                    }
                }
            }
        }
        count_leaves(&buf, res.root, &mut leaves);
        let min_leaves = ps.len().div_ceil(cap);
        // STR should be within 40% of perfect packing
        assert!(
            leaves <= min_leaves + min_leaves * 2 / 5 + 1,
            "poor packing: {leaves} leaves vs optimal {min_leaves}"
        );
    }
}
