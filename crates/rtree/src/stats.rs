//! I/O accounting for the simulated disk.
//!
//! The experimental sections of the skyline / preference-query literature
//! report *I/O accesses*: page requests that could not be served by the
//! buffer pool. [`IoStats`] tracks three counters:
//!
//! * `logical` — every node/page request issued by an algorithm,
//! * `physical_reads` — requests that missed the buffer and hit the pager,
//! * `physical_writes` — dirty pages written back on eviction or flush.
//!
//! The paper's "I/O accesses" metric corresponds to
//! [`IoStats::physical`], the sum of physical reads and writes.
//!
//! With a disk-backed store ([`crate::disk::DiskPager`]) three more
//! counters track *actual* device traffic, one level below the pager
//! abstraction:
//!
//! * `disk_reads` — page reads served from the backing file,
//! * `disk_writes` — page writes issued to the backing file,
//! * `fsyncs` — durability barriers (`fsync`) issued at checkpoints.
//!
//! For [`crate::pager::MemPager`] trees these stay zero.

use std::ops::{Add, AddAssign, Sub};

/// Counters of logical and physical page accesses.
///
/// Obtain a snapshot with [`crate::RTree::io_stats`], run a query, take a
/// second snapshot, and subtract to get the cost of that query.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IoStats {
    /// Node requests issued against the buffer pool (hits + misses).
    pub logical: u64,
    /// Page reads that missed the buffer and were served by the pager.
    pub physical_reads: u64,
    /// Dirty pages written back to the pager (eviction or explicit flush).
    pub physical_writes: u64,
    /// Page reads served from a backing file (zero for in-memory stores).
    pub disk_reads: u64,
    /// Page writes issued to a backing file (zero for in-memory stores).
    pub disk_writes: u64,
    /// `fsync` barriers issued against a backing file (checkpoints).
    pub fsyncs: u64,
}

impl IoStats {
    /// Total physical I/O: reads plus writes. This is the "I/O accesses"
    /// metric plotted in the paper's figures.
    #[inline]
    pub fn physical(&self) -> u64 {
        self.physical_reads + self.physical_writes
    }

    /// Buffer hit ratio in `[0, 1]`; `1.0` when no request was issued.
    pub fn hit_ratio(&self) -> f64 {
        if self.logical == 0 {
            1.0
        } else {
            1.0 - self.physical_reads as f64 / self.logical as f64
        }
    }

    /// Saturating component-wise difference (`self - earlier`), useful for
    /// diffing two snapshots taken around a measured operation.
    pub fn since(&self, earlier: IoStats) -> IoStats {
        IoStats {
            logical: self.logical.saturating_sub(earlier.logical),
            physical_reads: self.physical_reads.saturating_sub(earlier.physical_reads),
            physical_writes: self.physical_writes.saturating_sub(earlier.physical_writes),
            disk_reads: self.disk_reads.saturating_sub(earlier.disk_reads),
            disk_writes: self.disk_writes.saturating_sub(earlier.disk_writes),
            fsyncs: self.fsyncs.saturating_sub(earlier.fsyncs),
        }
    }
}

impl Sub for IoStats {
    type Output = IoStats;

    fn sub(self, rhs: IoStats) -> IoStats {
        self.since(rhs)
    }
}

impl AddAssign for IoStats {
    /// Component-wise accumulation, e.g. summing per-request counters
    /// into a batch total.
    fn add_assign(&mut self, rhs: IoStats) {
        self.logical += rhs.logical;
        self.physical_reads += rhs.physical_reads;
        self.physical_writes += rhs.physical_writes;
        self.disk_reads += rhs.disk_reads;
        self.disk_writes += rhs.disk_writes;
        self.fsyncs += rhs.fsyncs;
    }
}

impl Add for IoStats {
    type Output = IoStats;

    fn add(mut self, rhs: IoStats) -> IoStats {
        self += rhs;
        self
    }
}

impl std::fmt::Display for IoStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "logical={} phys_reads={} phys_writes={} (physical={})",
            self.logical,
            self.physical_reads,
            self.physical_writes,
            self.physical()
        )?;
        if self.disk_reads != 0 || self.disk_writes != 0 || self.fsyncs != 0 {
            write!(
                f,
                " disk_reads={} disk_writes={} fsyncs={}",
                self.disk_reads, self.disk_writes, self.fsyncs
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn physical_sums_reads_and_writes() {
        let s = IoStats {
            logical: 10,
            physical_reads: 3,
            physical_writes: 2,
            ..Default::default()
        };
        assert_eq!(s.physical(), 5);
    }

    #[test]
    fn since_is_saturating() {
        let a = IoStats {
            logical: 5,
            physical_reads: 1,
            physical_writes: 0,
            ..Default::default()
        };
        let b = IoStats {
            logical: 7,
            physical_reads: 4,
            physical_writes: 1,
            ..Default::default()
        };
        let d = b.since(a);
        assert_eq!(d.logical, 2);
        assert_eq!(d.physical_reads, 3);
        assert_eq!(d.physical_writes, 1);
        // reversed order saturates to zero rather than underflowing
        let z = a.since(b);
        assert_eq!(z.logical, 0);
        assert_eq!(z.physical_reads, 0);
    }

    #[test]
    fn hit_ratio_handles_zero_requests() {
        assert_eq!(IoStats::default().hit_ratio(), 1.0);
        let s = IoStats {
            logical: 4,
            physical_reads: 1,
            physical_writes: 0,
            ..Default::default()
        };
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn sub_operator_matches_since() {
        let a = IoStats {
            logical: 2,
            physical_reads: 2,
            physical_writes: 2,
            ..Default::default()
        };
        let b = IoStats {
            logical: 9,
            physical_reads: 5,
            physical_writes: 3,
            ..Default::default()
        };
        assert_eq!(b - a, b.since(a));
    }
}
