//! R-tree node representation and its on-page binary codec.
//!
//! Every node occupies exactly one page. The layout (little-endian) is:
//!
//! ```text
//! offset  size  field
//! 0       1     tag: 0 = leaf, 1 = inner
//! 1       1     level (0 for leaves; child level + 1 for inner nodes)
//! 2       2     entry count (u16)
//! 4       4     reserved
//! 8       ...   entries
//! ```
//!
//! Leaf entry: `dim` × f64 point coordinates followed by a u64 object id
//! (`8·dim + 8` bytes). Inner entry: `2·dim` × f64 MBR (lower corner then
//! upper corner) followed by a u32 child page id (`16·dim + 4` bytes).
//!
//! With the paper's 4096-byte pages this yields, e.g. for `D = 3`, a leaf
//! fanout of 127 and an inner fanout of 78 — the same regime as the C++
//! implementation the paper measured.

use bytes::{Buf, BufMut};

use crate::geometry::Mbr;
use crate::pager::PageId;

const HEADER_BYTES: usize = 8;
const TAG_LEAF: u8 = 0;
const TAG_INNER: u8 = 1;

/// A decoded R-tree node: either a leaf of points or an inner node of
/// child MBRs.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// Level-0 node holding data points.
    Leaf(LeafNode),
    /// Node at level ≥ 1 holding child page references.
    Inner(InnerNode),
}

/// A leaf node: `count` points with object ids, stored flat.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LeafNode {
    dim: usize,
    /// Flat coordinates, stride `dim`.
    points: Vec<f64>,
    /// Object id of each point.
    oids: Vec<u64>,
}

/// An inner node: `count` child entries, each an MBR plus a child page id.
#[derive(Debug, Clone, PartialEq)]
pub struct InnerNode {
    dim: usize,
    /// Level of *this* node (≥ 1).
    level: u8,
    /// Flat MBRs, stride `2·dim`: `lo` corner then `hi` corner.
    mbrs: Vec<f64>,
    /// Child page of each entry.
    children: Vec<u32>,
}

impl Node {
    /// Level of the node (0 = leaf).
    #[inline]
    pub fn level(&self) -> u8 {
        match self {
            Node::Leaf(_) => 0,
            Node::Inner(n) => n.level,
        }
    }

    /// Number of entries in the node.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            Node::Leaf(n) => n.len(),
            Node::Inner(n) => n.len(),
        }
    }

    /// True iff the node holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dimensionality of the indexed space.
    #[inline]
    pub fn dim(&self) -> usize {
        match self {
            Node::Leaf(n) => n.dim,
            Node::Inner(n) => n.dim,
        }
    }

    /// The tight MBR covering everything in this node.
    pub fn mbr(&self) -> Mbr {
        let mut m = Mbr::empty(self.dim());
        match self {
            Node::Leaf(n) => {
                for i in 0..n.len() {
                    m.union_point(n.point(i));
                }
            }
            Node::Inner(n) => {
                for i in 0..n.len() {
                    m.union_rect(n.lo(i), n.hi(i));
                }
            }
        }
        m
    }

    /// Borrow as a leaf.
    ///
    /// # Panics
    /// Panics if the node is an inner node.
    #[inline]
    pub fn as_leaf(&self) -> &LeafNode {
        match self {
            Node::Leaf(n) => n,
            Node::Inner(_) => panic!("expected leaf node, found inner node"),
        }
    }

    /// Borrow as an inner node.
    ///
    /// # Panics
    /// Panics if the node is a leaf.
    #[inline]
    pub fn as_inner(&self) -> &InnerNode {
        match self {
            Node::Inner(n) => n,
            Node::Leaf(_) => panic!("expected inner node, found leaf node"),
        }
    }

    /// Mutable leaf accessor (see [`Node::as_leaf`]).
    #[inline]
    pub fn as_leaf_mut(&mut self) -> &mut LeafNode {
        match self {
            Node::Leaf(n) => n,
            Node::Inner(_) => panic!("expected leaf node, found inner node"),
        }
    }

    /// Mutable inner accessor (see [`Node::as_inner`]).
    #[inline]
    pub fn as_inner_mut(&mut self) -> &mut InnerNode {
        match self {
            Node::Inner(n) => n,
            Node::Leaf(_) => panic!("expected inner node, found leaf node"),
        }
    }

    /// Serialized size in bytes (must fit the page).
    pub fn encoded_len(&self) -> usize {
        match self {
            Node::Leaf(n) => HEADER_BYTES + n.len() * (8 * n.dim + 8),
            Node::Inner(n) => HEADER_BYTES + n.len() * (16 * n.dim + 4),
        }
    }

    /// Encode into `buf` (the page image). `buf.len()` must be at least
    /// [`Node::encoded_len`].
    pub fn encode(&self, buf: &mut [u8]) {
        let need = self.encoded_len();
        assert!(
            buf.len() >= need,
            "node of {need} bytes does not fit page of {} bytes",
            buf.len()
        );
        let mut w = &mut buf[..];
        match self {
            Node::Leaf(n) => {
                w.put_u8(TAG_LEAF);
                w.put_u8(0);
                w.put_u16_le(n.len() as u16);
                w.put_u32_le(0);
                for i in 0..n.len() {
                    for &c in n.point(i) {
                        w.put_f64_le(c);
                    }
                    w.put_u64_le(n.oids[i]);
                }
            }
            Node::Inner(n) => {
                w.put_u8(TAG_INNER);
                w.put_u8(n.level);
                w.put_u16_le(n.len() as u16);
                w.put_u32_le(0);
                for i in 0..n.len() {
                    for &c in n.lo(i) {
                        w.put_f64_le(c);
                    }
                    for &c in n.hi(i) {
                        w.put_f64_le(c);
                    }
                    w.put_u32_le(n.children[i]);
                }
            }
        }
    }

    /// Decode a node from a page image.
    ///
    /// # Panics
    /// Panics on a malformed page (wrong tag, truncated entries); pages
    /// are produced only by [`Node::encode`], so corruption is a logic
    /// error in the simulation, not a runtime condition to recover from.
    pub fn decode(dim: usize, buf: &[u8]) -> Node {
        let mut r = buf;
        assert!(r.len() >= HEADER_BYTES, "page too small for node header");
        let tag = r.get_u8();
        let level = r.get_u8();
        let count = r.get_u16_le() as usize;
        let _reserved = r.get_u32_le();
        match tag {
            TAG_LEAF => {
                let mut n = LeafNode::new(dim);
                assert!(r.len() >= count * (8 * dim + 8), "truncated leaf page");
                for _ in 0..count {
                    let mut p = Vec::with_capacity(dim);
                    for _ in 0..dim {
                        p.push(r.get_f64_le());
                    }
                    let oid = r.get_u64_le();
                    n.push(&p, oid);
                }
                Node::Leaf(n)
            }
            TAG_INNER => {
                assert!(level >= 1, "inner node with level 0");
                let mut n = InnerNode::new(dim, level);
                assert!(r.len() >= count * (16 * dim + 4), "truncated inner page");
                let mut lo = vec![0.0; dim];
                let mut hi = vec![0.0; dim];
                for _ in 0..count {
                    for c in lo.iter_mut() {
                        *c = r.get_f64_le();
                    }
                    for c in hi.iter_mut() {
                        *c = r.get_f64_le();
                    }
                    let child = PageId(r.get_u32_le());
                    n.push(&lo, &hi, child);
                }
                Node::Inner(n)
            }
            other => panic!("unknown node tag {other}"),
        }
    }
}

impl LeafNode {
    /// New empty leaf for a `dim`-dimensional space.
    pub fn new(dim: usize) -> LeafNode {
        LeafNode {
            dim,
            points: Vec::new(),
            oids: Vec::new(),
        }
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.oids.len()
    }

    /// True iff the leaf is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.oids.is_empty()
    }

    /// Dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrow point `i`.
    #[inline]
    pub fn point(&self, i: usize) -> &[f64] {
        &self.points[i * self.dim..(i + 1) * self.dim]
    }

    /// Object id of point `i`.
    #[inline]
    pub fn oid(&self, i: usize) -> u64 {
        self.oids[i]
    }

    /// Append a `(point, oid)` entry.
    pub fn push(&mut self, p: &[f64], oid: u64) {
        debug_assert_eq!(p.len(), self.dim);
        self.points.extend_from_slice(p);
        self.oids.push(oid);
    }

    /// Remove entry `i` (order is not preserved; `swap_remove` semantics
    /// keep removal O(dim)).
    pub fn swap_remove(&mut self, i: usize) {
        let last = self.len() - 1;
        if i != last {
            let (head, tail) = self.points.split_at_mut(last * self.dim);
            head[i * self.dim..(i + 1) * self.dim].copy_from_slice(&tail[..self.dim]);
            self.oids.swap(i, last);
        }
        self.points.truncate(last * self.dim);
        self.oids.pop();
    }

    /// Index of the entry with the given point and id, if present.
    pub fn find(&self, p: &[f64], oid: u64) -> Option<usize> {
        (0..self.len()).find(|&i| self.oids[i] == oid && self.point(i) == p)
    }

    /// Iterate `(oid, point)` pairs.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (u64, &[f64])> + '_ {
        self.oids
            .iter()
            .copied()
            .zip(self.points.chunks_exact(self.dim))
    }
}

impl InnerNode {
    /// New empty inner node at `level` (≥ 1).
    pub fn new(dim: usize, level: u8) -> InnerNode {
        debug_assert!(level >= 1);
        InnerNode {
            dim,
            level,
            mbrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Number of child entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.children.len()
    }

    /// True iff the node has no children.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }

    /// Dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Level of this node.
    #[inline]
    pub fn level(&self) -> u8 {
        self.level
    }

    /// Lower corner of entry `i`'s MBR.
    #[inline]
    pub fn lo(&self, i: usize) -> &[f64] {
        &self.mbrs[i * 2 * self.dim..i * 2 * self.dim + self.dim]
    }

    /// Upper corner of entry `i`'s MBR.
    #[inline]
    pub fn hi(&self, i: usize) -> &[f64] {
        &self.mbrs[i * 2 * self.dim + self.dim..(i + 1) * 2 * self.dim]
    }

    /// Child page of entry `i`.
    #[inline]
    pub fn child(&self, i: usize) -> PageId {
        PageId(self.children[i])
    }

    /// Append a child entry.
    pub fn push(&mut self, lo: &[f64], hi: &[f64], child: PageId) {
        debug_assert_eq!(lo.len(), self.dim);
        debug_assert_eq!(hi.len(), self.dim);
        self.mbrs.extend_from_slice(lo);
        self.mbrs.extend_from_slice(hi);
        self.children.push(child.0);
    }

    /// Replace the child page id of entry `i` (copy-on-write parent
    /// rewiring: the child was rewritten to a fresh page).
    pub fn set_child(&mut self, i: usize, child: PageId) {
        self.children[i] = child.0;
    }

    /// Replace the MBR of entry `i`.
    pub fn set_mbr(&mut self, i: usize, lo: &[f64], hi: &[f64]) {
        let base = i * 2 * self.dim;
        self.mbrs[base..base + self.dim].copy_from_slice(lo);
        self.mbrs[base + self.dim..base + 2 * self.dim].copy_from_slice(hi);
    }

    /// Remove entry `i` (order not preserved).
    pub fn swap_remove(&mut self, i: usize) {
        let last = self.len() - 1;
        let stride = 2 * self.dim;
        if i != last {
            let (head, tail) = self.mbrs.split_at_mut(last * stride);
            head[i * stride..(i + 1) * stride].copy_from_slice(&tail[..stride]);
            self.children.swap(i, last);
        }
        self.mbrs.truncate(last * stride);
        self.children.pop();
    }

    /// Index of the entry pointing at `child`, if present.
    pub fn position_of(&self, child: PageId) -> Option<usize> {
        self.children.iter().position(|&c| c == child.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_leaf() -> LeafNode {
        let mut n = LeafNode::new(2);
        n.push(&[0.1, 0.9], 7);
        n.push(&[0.5, 0.5], 8);
        n.push(&[0.9, 0.1], 9);
        n
    }

    #[test]
    fn leaf_encode_decode_round_trip() {
        let n = Node::Leaf(sample_leaf());
        let mut page = vec![0u8; 4096];
        n.encode(&mut page);
        let back = Node::decode(2, &page);
        assert_eq!(back, n);
        assert_eq!(back.level(), 0);
        assert_eq!(back.len(), 3);
    }

    #[test]
    fn inner_encode_decode_round_trip() {
        let mut n = InnerNode::new(3, 2);
        n.push(&[0.0, 0.0, 0.0], &[0.5, 0.5, 0.5], PageId(11));
        n.push(&[0.5, 0.1, 0.2], &[1.0, 0.9, 0.8], PageId(12));
        let n = Node::Inner(n);
        let mut page = vec![0u8; 4096];
        n.encode(&mut page);
        let back = Node::decode(3, &page);
        assert_eq!(back, n);
        assert_eq!(back.level(), 2);
    }

    #[test]
    fn empty_nodes_round_trip() {
        for n in [
            Node::Leaf(LeafNode::new(4)),
            Node::Inner(InnerNode::new(4, 1)),
        ] {
            let mut page = vec![0u8; 256];
            n.encode(&mut page);
            assert_eq!(Node::decode(4, &page), n);
        }
    }

    #[test]
    fn leaf_swap_remove_keeps_remaining_entries() {
        let mut n = sample_leaf();
        n.swap_remove(0);
        assert_eq!(n.len(), 2);
        // last entry moved into slot 0
        assert_eq!(n.point(0), &[0.9, 0.1]);
        assert_eq!(n.oid(0), 9);
        assert_eq!(n.point(1), &[0.5, 0.5]);
        n.swap_remove(1);
        n.swap_remove(0);
        assert!(n.is_empty());
    }

    #[test]
    fn leaf_find_matches_point_and_oid() {
        let n = sample_leaf();
        assert_eq!(n.find(&[0.5, 0.5], 8), Some(1));
        assert_eq!(n.find(&[0.5, 0.5], 99), None);
        assert_eq!(n.find(&[0.4, 0.5], 8), None);
    }

    #[test]
    fn inner_swap_remove_and_set_mbr() {
        let mut n = InnerNode::new(2, 1);
        n.push(&[0.0, 0.0], &[0.4, 0.4], PageId(1));
        n.push(&[0.4, 0.4], &[0.8, 0.8], PageId(2));
        n.push(&[0.8, 0.8], &[1.0, 1.0], PageId(3));
        n.set_mbr(1, &[0.3, 0.3], &[0.9, 0.9]);
        assert_eq!(n.lo(1), &[0.3, 0.3]);
        assert_eq!(n.hi(1), &[0.9, 0.9]);
        n.swap_remove(0);
        assert_eq!(n.len(), 2);
        assert_eq!(n.child(0), PageId(3));
        assert_eq!(n.position_of(PageId(2)), Some(1));
        assert_eq!(n.position_of(PageId(1)), None);
    }

    #[test]
    fn node_mbr_covers_all_entries() {
        let n = Node::Leaf(sample_leaf());
        let m = n.mbr();
        assert_eq!(&*m.lo, &[0.1, 0.1]);
        assert_eq!(&*m.hi, &[0.9, 0.9]);
    }

    #[test]
    fn encoded_len_matches_layout_math() {
        let n = Node::Leaf(sample_leaf());
        assert_eq!(n.encoded_len(), 8 + 3 * (16 + 8));
        let mut i = InnerNode::new(2, 1);
        i.push(&[0.0, 0.0], &[1.0, 1.0], PageId(5));
        assert_eq!(Node::Inner(i).encoded_len(), 8 + (32 + 4));
    }

    #[test]
    #[should_panic(expected = "unknown node tag")]
    fn decode_rejects_bad_tag() {
        let mut page = vec![0u8; 64];
        page[0] = 9;
        let _ = Node::decode(2, &page);
    }
}
