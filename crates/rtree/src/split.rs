//! R\*-tree node split (Beckmann et al., SIGMOD 1990).
//!
//! When a node overflows, its `cap + 1` entries are partitioned into two
//! groups by the topological split heuristic:
//!
//! 1. **Choose axis** — for every axis, sort the entries by lower and by
//!    upper MBR coordinate and sum the margins of every legal
//!    "first k vs. rest" distribution; pick the axis with the smallest
//!    margin sum.
//! 2. **Choose distribution** — along the chosen axis, pick the
//!    distribution with minimum overlap between the two group MBRs,
//!    breaking ties by minimum total area.
//!
//! The implementation is generic over the node kind: callers describe
//! entries as bare MBRs and receive an index partition back.

use crate::geometry::{rect_area, rect_margin, rect_overlap, Mbr};

/// An entry to be partitioned: its MBR (a point entry uses `lo == hi`).
#[derive(Debug, Clone)]
pub struct SplitEntry {
    /// Lower corner.
    pub lo: Box<[f64]>,
    /// Upper corner.
    pub hi: Box<[f64]>,
}

impl SplitEntry {
    /// Entry for a point (degenerate MBR).
    pub fn from_point(p: &[f64]) -> SplitEntry {
        SplitEntry {
            lo: p.into(),
            hi: p.into(),
        }
    }

    /// Entry for a rectangle.
    pub fn from_rect(lo: &[f64], hi: &[f64]) -> SplitEntry {
        SplitEntry {
            lo: lo.into(),
            hi: hi.into(),
        }
    }
}

/// Partition `entries` (length ≥ 2) into two groups, each of size at least
/// `min_fill`, using the R\* topological split. Returns the entry indices
/// of the two groups; the first group always contains at least one entry,
/// as does the second.
///
/// # Panics
/// Panics if `entries.len() < 2` or `min_fill` makes a legal split
/// impossible (`2 * min_fill > entries.len()`).
pub fn rstar_split(entries: &[SplitEntry], min_fill: usize) -> (Vec<usize>, Vec<usize>) {
    let n = entries.len();
    assert!(n >= 2, "cannot split fewer than two entries");
    let min_fill = min_fill.max(1);
    assert!(
        2 * min_fill <= n,
        "min_fill {min_fill} leaves no legal distribution for {n} entries"
    );
    let dim = entries[0].lo.len();

    // Axis selection: minimize the sum of margins over all distributions
    // and both sort orders.
    let mut best_axis = 0;
    let mut best_axis_margin = f64::INFINITY;
    for axis in 0..dim {
        let mut margin_sum = 0.0;
        for sort_by_hi in [false, true] {
            let order = sorted_order(entries, axis, sort_by_hi);
            margin_sum += distributions_margin_sum(entries, &order, min_fill);
        }
        if margin_sum < best_axis_margin {
            best_axis_margin = margin_sum;
            best_axis = axis;
        }
    }

    // Distribution selection on the chosen axis: min overlap, tie by area.
    let mut best: Option<(f64, f64, Vec<usize>, usize)> = None; // (overlap, area, order, k)
    for sort_by_hi in [false, true] {
        let order = sorted_order(entries, best_axis, sort_by_hi);
        let (prefix, suffix) = sweep_mbrs(entries, &order);
        for k in min_fill..=(n - min_fill) {
            let g1 = &prefix[k - 1];
            let g2 = &suffix[k];
            let overlap = rect_overlap(&g1.lo, &g1.hi, &g2.lo, &g2.hi);
            let area = rect_area(&g1.lo, &g1.hi) + rect_area(&g2.lo, &g2.hi);
            let better = match &best {
                None => true,
                Some((bo, ba, _, _)) => overlap < *bo || (overlap == *bo && area < *ba),
            };
            if better {
                best = Some((overlap, area, order.clone(), k));
            }
        }
    }

    let (_, _, order, k) = best.expect("at least one distribution exists");
    let left = order[..k].to_vec();
    let right = order[k..].to_vec();
    (left, right)
}

/// Entry indices sorted along `axis` by lower (or upper) coordinate, with
/// the other coordinate and the index as deterministic tie-breakers.
fn sorted_order(entries: &[SplitEntry], axis: usize, by_hi: bool) -> Vec<usize> {
    let mut order: Vec<usize> = (0..entries.len()).collect();
    order.sort_by(|&a, &b| {
        let (pa, sa) = (entries[a].lo[axis], entries[a].hi[axis]);
        let (pb, sb) = (entries[b].lo[axis], entries[b].hi[axis]);
        let (ka, kb) = if by_hi { (sa, sb) } else { (pa, pb) };
        ka.total_cmp(&kb)
            .then_with(|| sa.total_cmp(&sb))
            .then_with(|| a.cmp(&b))
    });
    order
}

/// Sum of `margin(G1) + margin(G2)` over every legal distribution of the
/// given order.
fn distributions_margin_sum(entries: &[SplitEntry], order: &[usize], min_fill: usize) -> f64 {
    let n = order.len();
    let (prefix, suffix) = sweep_mbrs(entries, order);
    let mut sum = 0.0;
    for k in min_fill..=(n - min_fill) {
        let g1 = &prefix[k - 1];
        let g2 = &suffix[k];
        sum += rect_margin(&g1.lo, &g1.hi) + rect_margin(&g2.lo, &g2.hi);
    }
    sum
}

/// `prefix[i]` = MBR of `order[0..=i]`; `suffix[i]` = MBR of `order[i..]`.
fn sweep_mbrs(entries: &[SplitEntry], order: &[usize]) -> (Vec<Mbr>, Vec<Mbr>) {
    let n = order.len();
    let dim = entries[0].lo.len();
    let mut prefix = Vec::with_capacity(n);
    let mut acc = Mbr::empty(dim);
    for &i in order {
        acc.union_rect(&entries[i].lo, &entries[i].hi);
        prefix.push(acc.clone());
    }
    let mut suffix = vec![Mbr::empty(dim); n];
    let mut acc = Mbr::empty(dim);
    for pos in (0..n).rev() {
        let i = order[pos];
        acc.union_rect(&entries[i].lo, &entries[i].hi);
        suffix[pos] = acc.clone();
    }
    (prefix, suffix)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn points(ps: &[[f64; 2]]) -> Vec<SplitEntry> {
        ps.iter().map(|p| SplitEntry::from_point(p)).collect()
    }

    #[test]
    fn split_partitions_all_entries_exactly_once() {
        let es = points(&[
            [0.1, 0.1],
            [0.2, 0.2],
            [0.8, 0.8],
            [0.9, 0.9],
            [0.15, 0.15],
            [0.85, 0.85],
        ]);
        let (l, r) = rstar_split(&es, 2);
        assert_eq!(l.len() + r.len(), es.len());
        let mut all: Vec<usize> = l.iter().chain(r.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4, 5]);
        assert!(l.len() >= 2 && r.len() >= 2);
    }

    #[test]
    fn split_separates_two_obvious_clusters() {
        let es = points(&[
            [0.0, 0.0],
            [0.05, 0.05],
            [0.1, 0.0],
            [0.9, 0.9],
            [0.95, 1.0],
            [1.0, 0.95],
        ]);
        let (l, r) = rstar_split(&es, 2);
        // whichever side holds index 0 must hold exactly the low cluster
        let low: Vec<usize> = vec![0, 1, 2];
        let mut l = l;
        let mut r = r;
        l.sort_unstable();
        r.sort_unstable();
        if l.contains(&0) {
            assert_eq!(l, low);
        } else {
            assert_eq!(r, low);
        }
    }

    #[test]
    fn split_respects_min_fill() {
        // 10 collinear points, min fill 4: both sides must have >= 4
        let es: Vec<SplitEntry> = (0..10)
            .map(|i| SplitEntry::from_point(&[i as f64 / 10.0, 0.5]))
            .collect();
        let (l, r) = rstar_split(&es, 4);
        assert!(l.len() >= 4 && r.len() >= 4);
    }

    #[test]
    fn split_handles_rect_entries() {
        let es = vec![
            SplitEntry::from_rect(&[0.0, 0.0], &[0.2, 0.2]),
            SplitEntry::from_rect(&[0.1, 0.0], &[0.3, 0.1]),
            SplitEntry::from_rect(&[0.7, 0.8], &[0.9, 1.0]),
            SplitEntry::from_rect(&[0.8, 0.7], &[1.0, 0.9]),
        ];
        let (l, r) = rstar_split(&es, 1);
        assert_eq!(l.len() + r.len(), 4);
        // clusters {0,1} and {2,3} should not be mixed
        let side_of = |i: usize| l.contains(&i);
        assert_eq!(side_of(0), side_of(1));
        assert_eq!(side_of(2), side_of(3));
        assert_ne!(side_of(0), side_of(2));
    }

    #[test]
    fn split_of_identical_entries_is_balanced_enough() {
        let es = points(&[[0.5, 0.5]; 8]);
        let (l, r) = rstar_split(&es, 3);
        assert!(l.len() >= 3 && r.len() >= 3);
        assert_eq!(l.len() + r.len(), 8);
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn split_rejects_single_entry() {
        let es = points(&[[0.5, 0.5]]);
        let _ = rstar_split(&es, 1);
    }
}
