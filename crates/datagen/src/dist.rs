//! Distribution primitives built on `rand`'s uniform source.
//!
//! The approved dependency set does not include `rand_distr`, so the few
//! distributions the generators need — Gaussian (Box–Muller), log-normal,
//! exponential, and weighted discrete choice — are implemented here
//! directly.

use rand::Rng;

/// Standard normal variate via the Box–Muller transform.
pub fn std_normal(rng: &mut impl Rng) -> f64 {
    // avoid ln(0)
    let u1: f64 = loop {
        let u = rng.gen::<f64>();
        if u > 1e-300 {
            break u;
        }
    };
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Normal variate with the given mean and standard deviation.
#[inline]
pub fn normal(rng: &mut impl Rng, mean: f64, sd: f64) -> f64 {
    mean + sd * std_normal(rng)
}

/// Log-normal variate: `exp(N(mu, sigma))`.
#[inline]
pub fn log_normal(rng: &mut impl Rng, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Exponential variate with rate 1.
#[inline]
pub fn exponential(rng: &mut impl Rng) -> f64 {
    let u: f64 = loop {
        let u = rng.gen::<f64>();
        if u > 1e-300 {
            break u;
        }
    };
    -u.ln()
}

/// Index drawn from the (unnormalized, non-negative) `weights`.
///
/// # Panics
/// Panics if `weights` is empty or sums to zero.
pub fn discrete(rng: &mut impl Rng, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "discrete distribution needs weights");
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "discrete weights must not sum to zero");
    let mut x = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        if x < w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1
}

/// Uniform sample from the standard simplex (`Σxᵢ = 1, xᵢ ≥ 0`) — the
/// Dirichlet(1, …, 1) distribution, via normalized exponentials.
pub fn simplex_uniform(rng: &mut impl Rng, dim: usize, out: &mut Vec<f64>) {
    out.clear();
    let mut sum = 0.0;
    for _ in 0..dim {
        let e = exponential(rng);
        out.push(e);
        sum += e;
    }
    for x in out.iter_mut() {
        *x /= sum;
    }
}

/// Clamp to the unit interval.
#[inline]
pub fn unit_clamp(x: f64) -> f64 {
    x.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn std_normal_moments() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| std_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn exponential_mean_is_one() {
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 50_000;
        let mean = (0..n).map(|_| exponential(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn discrete_respects_weights() {
        let mut rng = SmallRng::seed_from_u64(3);
        let w = [1.0, 3.0, 6.0];
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[discrete(&mut rng, &w)] += 1;
        }
        let f1 = counts[1] as f64 / 30_000.0;
        let f2 = counts[2] as f64 / 30_000.0;
        assert!((f1 - 0.3).abs() < 0.02, "P(1) = {f1}");
        assert!((f2 - 0.6).abs() < 0.02, "P(2) = {f2}");
    }

    #[test]
    fn simplex_sums_to_one() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut buf = Vec::new();
        for _ in 0..100 {
            simplex_uniform(&mut rng, 5, &mut buf);
            assert!((buf.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert!(buf.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn log_normal_is_positive_and_skewed() {
        let mut rng = SmallRng::seed_from_u64(5);
        let xs: Vec<f64> = (0..20_000)
            .map(|_| log_normal(&mut rng, 0.0, 1.0))
            .collect();
        assert!(xs.iter().all(|&x| x > 0.0));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let mut sorted = xs.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[xs.len() / 2];
        assert!(mean > median, "log-normal mean must exceed median");
    }
}
