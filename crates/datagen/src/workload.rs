//! Workload assembly: an object set plus a function set, built from one
//! seed.

use mpq_rtree::PointSet;
use mpq_ta::FunctionSet;

use crate::functions::{skewed_weights, uniform_weights};
use crate::objects::Distribution;

/// How preference weights are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FunctionStyle {
    /// Uniform on the simplex (the paper's setting).
    #[default]
    Uniform,
    /// One dominant attribute per user.
    Skewed,
}

/// A complete experiment input.
#[derive(Debug)]
pub struct Workload {
    /// The object set `O`.
    pub objects: PointSet,
    /// The preference functions `F`.
    pub functions: FunctionSet,
}

/// Builder for [`Workload`]s.
///
/// Defaults mirror the paper's base configuration: 100 K independent
/// objects, 5 K uniform functions, `D = 3`.
#[derive(Debug, Clone)]
pub struct WorkloadBuilder {
    n_objects: usize,
    n_functions: usize,
    dim: usize,
    distribution: Distribution,
    style: FunctionStyle,
    seed: u64,
}

impl Default for WorkloadBuilder {
    fn default() -> Self {
        WorkloadBuilder {
            n_objects: 100_000,
            n_functions: 5_000,
            dim: 3,
            distribution: Distribution::Independent,
            style: FunctionStyle::Uniform,
            seed: 0,
        }
    }
}

impl WorkloadBuilder {
    /// Start from the paper's defaults.
    pub fn new() -> WorkloadBuilder {
        WorkloadBuilder::default()
    }

    /// Number of objects `|O|`.
    pub fn objects(mut self, n: usize) -> Self {
        self.n_objects = n;
        self
    }

    /// Number of preference functions `|F|`.
    pub fn functions(mut self, n: usize) -> Self {
        self.n_functions = n;
        self
    }

    /// Dimensionality `D` (forced to 5 by [`Distribution::Zillow`]).
    pub fn dim(mut self, dim: usize) -> Self {
        self.dim = dim;
        self
    }

    /// Object-value distribution.
    pub fn distribution(mut self, d: Distribution) -> Self {
        self.distribution = d;
        self
    }

    /// Weight-vector style.
    pub fn function_style(mut self, s: FunctionStyle) -> Self {
        self.style = s;
        self
    }

    /// Seed for both generators (object and function streams are
    /// decorrelated internally).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generate the workload.
    pub fn build(&self) -> Workload {
        let dim = if self.distribution == Distribution::Zillow {
            5
        } else {
            self.dim
        };
        let objects = self.distribution.generate(self.n_objects, dim, self.seed);
        let fseed = self.seed ^ 0xF00D_F00D_F00D_F00D;
        let functions = match self.style {
            FunctionStyle::Uniform => uniform_weights(self.n_functions, dim, fseed),
            FunctionStyle::Skewed => skewed_weights(self.n_functions, dim, fseed),
        };
        Workload { objects, functions }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_requested_sizes() {
        let w = WorkloadBuilder::new()
            .objects(123)
            .functions(7)
            .dim(4)
            .distribution(Distribution::AntiCorrelated)
            .seed(5)
            .build();
        assert_eq!(w.objects.len(), 123);
        assert_eq!(w.objects.dim(), 4);
        assert_eq!(w.functions.n_alive(), 7);
        assert_eq!(w.functions.dim(), 4);
    }

    #[test]
    fn zillow_overrides_dim() {
        let w = WorkloadBuilder::new()
            .objects(10)
            .functions(3)
            .dim(3) // ignored
            .distribution(Distribution::Zillow)
            .build();
        assert_eq!(w.objects.dim(), 5);
        assert_eq!(w.functions.dim(), 5);
    }

    #[test]
    fn object_and_function_streams_differ() {
        let w = WorkloadBuilder::new()
            .objects(5)
            .functions(5)
            .dim(2)
            .seed(1)
            .build();
        // functions are not a copy of the objects
        let o0 = w.objects.get(0);
        let f0 = w.functions.weights(0);
        assert_ne!(o0, f0);
    }

    #[test]
    fn same_seed_same_workload() {
        let a = WorkloadBuilder::new()
            .objects(20)
            .functions(4)
            .seed(9)
            .build();
        let b = WorkloadBuilder::new()
            .objects(20)
            .functions(4)
            .seed(9)
            .build();
        assert_eq!(a.objects, b.objects);
        assert_eq!(a.functions, b.functions);
    }
}
