//! Object-set generators following the skyline-benchmark methodology of
//! Börzsönyi et al. (ICDE 2001).
//!
//! All generators emit points in `[0,1]^D` under the larger-is-better
//! convention and are deterministic for a given seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use mpq_rtree::PointSet;

use crate::dist::{normal, simplex_uniform, unit_clamp};

/// The object-value distributions used across the experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distribution {
    /// Attribute values i.i.d. uniform in `[0,1]` ("independent" in the
    /// paper; small skylines).
    Independent,
    /// Attributes positively correlated: objects good in one dimension
    /// tend to be good in all (tiny skylines).
    Correlated,
    /// Attributes negatively correlated: objects good in one dimension
    /// tend to be poor in the others (large skylines; the paper's hard
    /// case).
    AntiCorrelated,
    /// Gaussian clusters around random centers.
    Clustered {
        /// Number of cluster centers.
        clusters: usize,
    },
    /// The Zillow real-estate surrogate (fixed `D = 5`); see
    /// [`crate::zillow`].
    Zillow,
}

impl Distribution {
    /// Generate `n` points of dimensionality `dim`.
    ///
    /// # Panics
    /// Panics if `dim == 0`, or for [`Distribution::Zillow`] when
    /// `dim != 5`.
    pub fn generate(&self, n: usize, dim: usize, seed: u64) -> PointSet {
        match *self {
            Distribution::Independent => independent(n, dim, seed),
            Distribution::Correlated => correlated(n, dim, seed),
            Distribution::AntiCorrelated => anti_correlated(n, dim, seed),
            Distribution::Clustered { clusters } => clustered(n, dim, clusters, seed),
            Distribution::Zillow => {
                assert_eq!(dim, 5, "the Zillow schema has exactly 5 attributes");
                crate::zillow::zillow_preference_space(n, seed)
            }
        }
    }

    /// Short name used by the benchmark harness output.
    pub fn name(&self) -> &'static str {
        match self {
            Distribution::Independent => "independent",
            Distribution::Correlated => "correlated",
            Distribution::AntiCorrelated => "anti-correlated",
            Distribution::Clustered { .. } => "clustered",
            Distribution::Zillow => "zillow",
        }
    }
}

/// i.i.d. uniform points in `[0,1]^dim`.
pub fn independent(n: usize, dim: usize, seed: u64) -> PointSet {
    assert!(dim > 0);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut ps = PointSet::with_capacity(dim, n);
    let mut p = vec![0.0; dim];
    for _ in 0..n {
        for c in p.iter_mut() {
            *c = rng.gen();
        }
        ps.push(&p);
    }
    ps
}

/// Correlated points: a common "quality" value per object plus small
/// Gaussian jitter per attribute.
pub fn correlated(n: usize, dim: usize, seed: u64) -> PointSet {
    assert!(dim > 0);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut ps = PointSet::with_capacity(dim, n);
    let mut p = vec![0.0; dim];
    for _ in 0..n {
        let base: f64 = rng.gen();
        for c in p.iter_mut() {
            *c = unit_clamp(base + normal(&mut rng, 0.0, 0.05));
        }
        ps.push(&p);
    }
    ps
}

/// Anti-correlated points: each point lies near the hyperplane
/// `Σxᵢ ≈ dim/2`, with its "budget" split uniformly across dimensions
/// (Dirichlet split), so a high value in one attribute forces low values
/// elsewhere. Points with any coordinate outside `[0,1]` are resampled.
pub fn anti_correlated(n: usize, dim: usize, seed: u64) -> PointSet {
    assert!(dim > 0);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut ps = PointSet::with_capacity(dim, n);
    let mut w = Vec::with_capacity(dim);
    let mut p = vec![0.0; dim];
    for _ in 0..n {
        loop {
            let budget = normal(&mut rng, 0.5, 0.05) * dim as f64;
            simplex_uniform(&mut rng, dim, &mut w);
            let mut ok = true;
            for i in 0..dim {
                p[i] = w[i] * budget;
                if !(0.0..=1.0).contains(&p[i]) {
                    ok = false;
                    break;
                }
            }
            if ok {
                break;
            }
        }
        ps.push(&p);
    }
    ps
}

/// Gaussian clusters around `clusters` uniform random centers
/// (σ = 0.05 per attribute, clamped to the unit cube).
pub fn clustered(n: usize, dim: usize, clusters: usize, seed: u64) -> PointSet {
    assert!(dim > 0);
    assert!(clusters > 0, "need at least one cluster");
    let mut rng = SmallRng::seed_from_u64(seed);
    let centers: Vec<Vec<f64>> = (0..clusters)
        .map(|_| (0..dim).map(|_| rng.gen()).collect())
        .collect();
    let mut ps = PointSet::with_capacity(dim, n);
    let mut p = vec![0.0; dim];
    for i in 0..n {
        let c = &centers[i % clusters];
        for (j, x) in p.iter_mut().enumerate() {
            *x = unit_clamp(c[j] + normal(&mut rng, 0.0, 0.05));
        }
        ps.push(&p);
    }
    ps
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pearson(ps: &PointSet, a: usize, b: usize) -> f64 {
        let n = ps.len() as f64;
        let (mut ma, mut mb) = (0.0, 0.0);
        for (_, p) in ps.iter() {
            ma += p[a];
            mb += p[b];
        }
        ma /= n;
        mb /= n;
        let (mut cov, mut va, mut vb) = (0.0, 0.0, 0.0);
        for (_, p) in ps.iter() {
            let (da, db) = (p[a] - ma, p[b] - mb);
            cov += da * db;
            va += da * da;
            vb += db * db;
        }
        cov / (va.sqrt() * vb.sqrt())
    }

    #[test]
    fn independent_is_roughly_uncorrelated_and_uniform() {
        let ps = independent(20_000, 3, 1);
        assert_eq!(ps.len(), 20_000);
        let r = pearson(&ps, 0, 1);
        assert!(r.abs() < 0.03, "correlation {r}");
        let mean0: f64 = ps.iter().map(|(_, p)| p[0]).sum::<f64>() / 20_000.0;
        assert!((mean0 - 0.5).abs() < 0.01);
    }

    #[test]
    fn correlated_has_strong_positive_correlation() {
        let ps = correlated(10_000, 4, 2);
        let r = pearson(&ps, 0, 3);
        assert!(r > 0.8, "correlation {r}");
    }

    #[test]
    fn anti_correlated_has_negative_pairwise_correlation() {
        for dim in [2, 4, 6] {
            let ps = anti_correlated(10_000, dim, 3);
            let r = pearson(&ps, 0, dim - 1);
            assert!(r < -0.1, "dim {dim}: correlation {r}");
            // all in the unit cube
            assert!(ps
                .iter()
                .all(|(_, p)| p.iter().all(|&x| (0.0..=1.0).contains(&x))));
        }
    }

    #[test]
    fn anti_correlated_budget_concentrates() {
        let ps = anti_correlated(5_000, 4, 4);
        let sums: Vec<f64> = ps.iter().map(|(_, p)| p.iter().sum()).collect();
        // rejection of out-of-cube points biases the mean slightly low
        let mean = sums.iter().sum::<f64>() / sums.len() as f64;
        assert!((mean - 2.0).abs() < 0.15, "budget mean {mean}");
        let var = sums.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / sums.len() as f64;
        assert!(var < 0.1, "budget variance {var} too large");
    }

    #[test]
    fn clustered_points_hug_their_centers() {
        let ps = clustered(5_000, 3, 5, 5);
        assert_eq!(ps.len(), 5_000);
        // with sigma 0.05, points are within 0.3 of their center w.h.p.;
        // so the set of rounded "cells" is small
        let mut cells = std::collections::HashSet::new();
        for (_, p) in ps.iter() {
            let cell: Vec<i32> = p.iter().map(|&x| (x * 5.0) as i32).collect();
            cells.insert(cell);
        }
        assert!(
            cells.len() < 200,
            "too many occupied cells: {}",
            cells.len()
        );
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let a = anti_correlated(100, 3, 42);
        let b = anti_correlated(100, 3, 42);
        let c = anti_correlated(100, 3, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn distribution_enum_dispatch() {
        for d in [
            Distribution::Independent,
            Distribution::Correlated,
            Distribution::AntiCorrelated,
            Distribution::Clustered { clusters: 3 },
        ] {
            let ps = d.generate(50, 3, 9);
            assert_eq!(ps.len(), 50);
            assert_eq!(ps.dim(), 3);
        }
        let z = Distribution::Zillow.generate(50, 5, 9);
        assert_eq!(z.dim(), 5);
    }
}
