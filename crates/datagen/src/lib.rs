//! # mpq-datagen — synthetic workloads for preference-query experiments
//!
//! Reproduces the data methodology of the paper's evaluation (§V):
//!
//! * **Independent** and **anti-correlated** object sets following the
//!   benchmark generators of Börzsönyi et al. (*The Skyline Operator*,
//!   ICDE 2001), plus correlated and clustered variants ([`objects`]).
//! * A **Zillow surrogate** ([`zillow`]): the paper evaluates on a crawl
//!   of 2M real-estate records (bathrooms, bedrooms, living area, price,
//!   lot area) that is proprietary; we synthesize records with the same
//!   schema, skew and cross-attribute correlation, which are the
//!   distributional properties the experiment exercises.
//! * **Preference-function generators** ([`functions`]): normalized
//!   linear weights, uniform on the simplex or skewed toward a focus
//!   attribute.
//! * A [`WorkloadBuilder`] that packages objects + functions for the
//!   matchers and benchmark harness.
//!
//! All generators are deterministic given a seed.
//!
//! ```
//! use mpq_datagen::{Distribution, WorkloadBuilder};
//!
//! let w = WorkloadBuilder::new()
//!     .objects(1000)
//!     .functions(50)
//!     .dim(3)
//!     .distribution(Distribution::AntiCorrelated)
//!     .seed(7)
//!     .build();
//! assert_eq!(w.objects.len(), 1000);
//! assert_eq!(w.functions.n_alive(), 50);
//! ```

#![warn(missing_docs)]

pub mod dist;
pub mod functions;
pub mod objects;
pub mod workload;
pub mod zillow;

pub use objects::Distribution;
pub use workload::{FunctionStyle, Workload, WorkloadBuilder};
pub use zillow::{record_to_preference, zillow_preference_space, zillow_records, ZillowRecord};
