//! Synthetic surrogate for the paper's Zillow real-estate dataset.
//!
//! The paper evaluates on 2M records crawled from zillow.com with five
//! attributes: number of bathrooms, number of bedrooms, living area,
//! price, and lot area. That crawl is proprietary; what the experiment
//! actually exercises is that the data is **highly skewed and
//! cross-correlated** (the paper: "Zillow is highly skewed and this
//! worsens the performance of Brute Force and Chain ... but not that of
//! SB"). This module synthesizes records with those properties:
//!
//! * bedrooms: discrete 1–6, mode at 3 (census-like shape);
//! * bathrooms: discrete 1–5, correlated with bedrooms;
//! * living area: log-normal, scale grows with bedrooms;
//! * lot area: living area times a heavy-tailed log-normal multiplier;
//! * price: living area times a log-normal price-per-sqft (heavy tail).
//!
//! [`zillow_preference_space`] maps records to `[0,1]^5` under
//! larger-is-better: counts and areas are log-min-max normalized, price
//! is *inverted* (cheap = good). The mapping is monotone per attribute,
//! so preference semantics are preserved.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use mpq_rtree::PointSet;

use crate::dist::{discrete, log_normal, normal, unit_clamp};

/// One synthetic real-estate listing (raw attribute units).
#[derive(Debug, Clone, PartialEq)]
pub struct ZillowRecord {
    /// Number of bedrooms (1–6).
    pub bedrooms: u8,
    /// Number of bathrooms (1–5).
    pub bathrooms: u8,
    /// Living area in square feet.
    pub living_sqft: f64,
    /// Lot area in square feet.
    pub lot_sqft: f64,
    /// Asking price in dollars.
    pub price: f64,
}

/// Census-like bedroom-count weights for 1..=6 bedrooms.
const BEDROOM_WEIGHTS: [f64; 6] = [10.0, 22.0, 34.0, 20.0, 9.0, 5.0];

/// Generate `n` raw records.
pub fn zillow_records(n: usize, seed: u64) -> Vec<ZillowRecord> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let bedrooms = (discrete(&mut rng, &BEDROOM_WEIGHTS) + 1) as u8;
        let bathrooms =
            ((bedrooms as f64 / 2.0 + normal(&mut rng, 0.5, 0.6)).round() as i64).clamp(1, 5) as u8;
        // living area: ~700 sqft per bedroom with multiplicative noise
        let living_sqft = (450.0 + 520.0 * bedrooms as f64) * log_normal(&mut rng, 0.0, 0.28);
        // lot: house plus a heavy-tailed yard multiplier
        let lot_sqft = living_sqft * (1.0 + log_normal(&mut rng, 0.9, 0.85));
        // price: price-per-sqft is log-normal with a fat right tail
        let ppsf = log_normal(&mut rng, 5.2, 0.45); // median ≈ $181/sqft
        let price = living_sqft * ppsf;
        out.push(ZillowRecord {
            bedrooms,
            bathrooms,
            living_sqft,
            lot_sqft,
            price,
        });
    }
    out
}

/// Normalization bounds (log scale for the continuous attributes) chosen
/// to cover essentially all generated mass.
const LIVING_LOG_RANGE: (f64, f64) = (6.0, 9.5); // ~400 .. ~13,000 sqft
const LOT_LOG_RANGE: (f64, f64) = (6.5, 12.0); // ~660 .. ~163,000 sqft
const PRICE_LOG_RANGE: (f64, f64) = (10.5, 16.0); // ~$36K .. ~$8.9M

fn log_minmax(x: f64, (lo, hi): (f64, f64)) -> f64 {
    unit_clamp((x.ln() - lo) / (hi - lo))
}

/// Map one record into the `[0,1]^5` larger-is-better preference space.
///
/// Attribute order: `[bathrooms, bedrooms, living, cheapness, lot]` — the
/// order the paper lists the Zillow attributes in, with price replaced by
/// "cheapness" (`1 - normalized log price`).
pub fn record_to_preference(r: &ZillowRecord) -> [f64; 5] {
    [
        (r.bathrooms as f64 - 1.0) / 4.0,
        (r.bedrooms as f64 - 1.0) / 5.0,
        log_minmax(r.living_sqft, LIVING_LOG_RANGE),
        1.0 - log_minmax(r.price, PRICE_LOG_RANGE),
        log_minmax(r.lot_sqft, LOT_LOG_RANGE),
    ]
}

/// Generate `n` records and map them straight into the preference space.
pub fn zillow_preference_space(n: usize, seed: u64) -> PointSet {
    let mut ps = PointSet::with_capacity(5, n);
    for r in zillow_records(n, seed) {
        ps.push(&record_to_preference(&r));
    }
    ps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_have_sane_ranges() {
        let rs = zillow_records(5_000, 1);
        for r in &rs {
            assert!((1..=6).contains(&r.bedrooms));
            assert!((1..=5).contains(&r.bathrooms));
            assert!(r.living_sqft > 100.0 && r.living_sqft < 50_000.0);
            assert!(r.lot_sqft > r.living_sqft, "lot contains the house");
            assert!(r.price > 1_000.0);
        }
    }

    #[test]
    fn bedrooms_mode_is_three() {
        let rs = zillow_records(20_000, 2);
        let mut counts = [0usize; 7];
        for r in &rs {
            counts[r.bedrooms as usize] += 1;
        }
        let mode = (1..=6).max_by_key(|&b| counts[b]).unwrap();
        assert_eq!(mode, 3);
    }

    #[test]
    fn price_correlates_with_living_area() {
        let rs = zillow_records(20_000, 3);
        let n = rs.len() as f64;
        let ml = rs.iter().map(|r| r.living_sqft.ln()).sum::<f64>() / n;
        let mp = rs.iter().map(|r| r.price.ln()).sum::<f64>() / n;
        let (mut cov, mut vl, mut vp) = (0.0, 0.0, 0.0);
        for r in &rs {
            let dl = r.living_sqft.ln() - ml;
            let dp = r.price.ln() - mp;
            cov += dl * dp;
            vl += dl * dl;
            vp += dp * dp;
        }
        let rho = cov / (vl.sqrt() * vp.sqrt());
        assert!(rho > 0.4, "log price vs log area correlation {rho}");
    }

    #[test]
    fn preference_space_is_unit_cube_and_skewed() {
        let ps = zillow_preference_space(20_000, 4);
        assert_eq!(ps.dim(), 5);
        for (_, p) in ps.iter() {
            assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
        // skew: the living-area attribute should not look uniform —
        // compare mean to median
        let mut living: Vec<f64> = ps.iter().map(|(_, p)| p[2]).collect();
        living.sort_by(f64::total_cmp);
        let median = living[living.len() / 2];
        let mean = living.iter().sum::<f64>() / living.len() as f64;
        assert!((mean - median).abs() > 0.002, "suspiciously symmetric");
    }

    #[test]
    fn cheapness_is_anticorrelated_with_size() {
        let ps = zillow_preference_space(20_000, 5);
        let n = ps.len() as f64;
        let m2 = ps.iter().map(|(_, p)| p[2]).sum::<f64>() / n;
        let m3 = ps.iter().map(|(_, p)| p[3]).sum::<f64>() / n;
        let (mut cov, mut v2, mut v3) = (0.0, 0.0, 0.0);
        for (_, p) in ps.iter() {
            let (d2, d3) = (p[2] - m2, p[3] - m3);
            cov += d2 * d3;
            v2 += d2 * d2;
            v3 += d3 * d3;
        }
        let rho = cov / (v2.sqrt() * v3.sqrt());
        assert!(rho < -0.3, "bigger must cost more: rho {rho}");
    }

    #[test]
    fn preference_mapping_is_monotone() {
        let a = ZillowRecord {
            bedrooms: 3,
            bathrooms: 2,
            living_sqft: 1500.0,
            lot_sqft: 6000.0,
            price: 300_000.0,
        };
        let mut better = a.clone();
        better.living_sqft = 2500.0;
        better.price = 250_000.0;
        let pa = record_to_preference(&a);
        let pb = record_to_preference(&better);
        assert!(pb[2] > pa[2], "more area = better");
        assert!(pb[3] > pa[3], "lower price = better");
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(zillow_records(100, 7), zillow_records(100, 7));
        assert_ne!(zillow_records(100, 7), zillow_records(100, 8));
    }
}
