//! Preference-function (weight vector) generators.
//!
//! The paper: "The preference functions are linear with weights generated
//! independently", normalized so that `Σᵢ αᵢ = 1`. The natural model for
//! independent-then-normalized weights is the uniform distribution on the
//! simplex ([`uniform_weights`]). [`skewed_weights`] additionally models
//! populations where most users care predominantly about one attribute
//! (e.g. price-sensitive hotel shoppers), used by the examples and the
//! |F|-sweep ablation.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use mpq_ta::FunctionSet;

use crate::dist::simplex_uniform;

/// `n` weight vectors uniform on the `dim`-simplex.
pub fn uniform_weights(n: usize, dim: usize, seed: u64) -> FunctionSet {
    assert!(dim > 0);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut fs = FunctionSet::new(dim);
    let mut w = Vec::with_capacity(dim);
    for _ in 0..n {
        simplex_uniform(&mut rng, dim, &mut w);
        fs.push(&w);
    }
    fs
}

/// `n` weight vectors where each user focuses on one random attribute:
/// the focus attribute receives weight `focus ∈ [0.5, 0.95]` and the
/// remainder is split uniformly across the other attributes.
pub fn skewed_weights(n: usize, dim: usize, seed: u64) -> FunctionSet {
    assert!(dim > 0);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut fs = FunctionSet::new(dim);
    let mut rest = Vec::with_capacity(dim.saturating_sub(1));
    for _ in 0..n {
        let focus_dim = rng.gen_range(0..dim);
        if dim == 1 {
            fs.push(&[1.0]);
            continue;
        }
        let focus: f64 = rng.gen_range(0.5..0.95);
        simplex_uniform(&mut rng, dim - 1, &mut rest);
        let mut w = vec![0.0; dim];
        let mut k = 0;
        for (d, x) in w.iter_mut().enumerate() {
            if d == focus_dim {
                *x = focus;
            } else {
                *x = (1.0 - focus) * rest[k];
                k += 1;
            }
        }
        fs.push(&w);
    }
    fs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_weights_are_normalized() {
        let fs = uniform_weights(500, 4, 1);
        assert_eq!(fs.n_alive(), 500);
        for (_, w) in fs.iter_alive() {
            assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert!(w.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn uniform_weights_cover_the_simplex_symmetrically() {
        let fs = uniform_weights(30_000, 3, 2);
        let mut means = [0.0; 3];
        for (_, w) in fs.iter_alive() {
            for d in 0..3 {
                means[d] += w[d];
            }
        }
        for m in means.iter_mut() {
            *m /= 30_000.0;
        }
        for (d, m) in means.iter().enumerate() {
            assert!((m - 1.0 / 3.0).abs() < 0.01, "dim {d} mean {m}");
        }
    }

    #[test]
    fn skewed_weights_have_a_dominant_attribute() {
        let fs = skewed_weights(1000, 5, 3);
        for (_, w) in fs.iter_alive() {
            let max = w.iter().cloned().fold(0.0, f64::max);
            assert!(max >= 0.5 - 1e-12, "no dominant weight in {w:?}");
            assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn one_dimensional_functions_degenerate_to_unit_weight() {
        let fs = skewed_weights(10, 1, 4);
        for (_, w) in fs.iter_alive() {
            assert_eq!(w, &[1.0]);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = uniform_weights(50, 3, 9);
        let b = uniform_weights(50, 3, 9);
        assert_eq!(a, b);
    }
}
