//! A deliberately small HTTP/1.1 implementation: exactly what the wire
//! front-end needs, and nothing the container can't provide.
//!
//! The parser is **incremental**: feed it whatever bytes the socket
//! produced ([`RequestParser::feed`]) and ask whether a full request has
//! materialized ([`RequestParser::take_request`]). Splitting the input
//! at any byte boundary must never change the outcome — the proptest
//! suite in `tests/parser.rs` holds the parser to that.
//!
//! Scope (documented, not accidental):
//!
//! * Request head terminated by `\r\n\r\n`; head size capped by
//!   [`ParserLimits::max_head_bytes`] (violations are [`HttpError::HeadersTooLarge`],
//!   which the server maps to `431`).
//! * Bodies are `Content-Length` only — `Transfer-Encoding` is rejected
//!   with `400` rather than mis-framed. Body size is capped by
//!   [`ParserLimits::max_body_bytes`] (`413`).
//! * Header names are lower-cased on parse; values are trimmed of
//!   optional whitespace. Obsolete line folding is rejected.
//! * `HTTP/1.1` and `HTTP/1.0` are accepted; anything else is `400`.
//!
//! Responses are written by [`Response`], which always emits an explicit
//! `Content-Length` and a `Connection` header so keep-alive is never
//! ambiguous.

use std::collections::BTreeMap;
use std::fmt;

/// Hard caps the parser enforces while buffering a request.
#[derive(Debug, Clone, Copy)]
pub struct ParserLimits {
    /// Maximum bytes of request line + headers (through the blank line).
    pub max_head_bytes: usize,
    /// Maximum bytes of request body (`Content-Length`).
    pub max_body_bytes: usize,
}

impl Default for ParserLimits {
    fn default() -> Self {
        ParserLimits {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 4 * 1024 * 1024,
        }
    }
}

/// Why a request could not be parsed. Each variant pins the status code
/// the server answers with before closing the connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed request line, header, or framing → `400 Bad Request`.
    BadRequest(&'static str),
    /// The head exceeded [`ParserLimits::max_head_bytes`] → `431`.
    HeadersTooLarge,
    /// The declared body exceeds [`ParserLimits::max_body_bytes`] → `413`.
    BodyTooLarge,
}

impl HttpError {
    /// The HTTP status code this parse failure maps to.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequest(_) => 400,
            HttpError::HeadersTooLarge => 431,
            HttpError::BodyTooLarge => 413,
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::BadRequest(why) => write!(f, "bad request: {why}"),
            HttpError::HeadersTooLarge => write!(f, "request head too large"),
            HttpError::BodyTooLarge => write!(f, "request body too large"),
        }
    }
}

impl std::error::Error for HttpError {}

/// A fully parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercased method token as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Request target, e.g. `/t/hotels/match`.
    pub path: String,
    /// `true` for `HTTP/1.1`, `false` for `HTTP/1.0`.
    pub http11: bool,
    /// Headers with lower-cased names; later duplicates overwrite.
    pub headers: BTreeMap<String, String>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// Look up a header by (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .get(&name.to_ascii_lowercase())
            .map(|s| s.as_str())
    }

    /// Whether the connection should stay open after this request:
    /// HTTP/1.1 defaults to keep-alive unless `Connection: close`;
    /// HTTP/1.0 defaults to close unless `Connection: keep-alive`.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection").map(|v| v.to_ascii_lowercase()) {
            Some(v) if v.split(',').any(|t| t.trim() == "close") => false,
            Some(v) if v.split(',').any(|t| t.trim() == "keep-alive") => true,
            _ => self.http11,
        }
    }
}

enum ParseState {
    /// Buffering until the `\r\n\r\n` that ends the head.
    Head,
    /// Head parsed; waiting for `remaining` more body bytes.
    Body { request: Request, remaining: usize },
    /// A request is ready for [`RequestParser::take_request`].
    Ready(Request),
    /// A parse error was hit; the connection must be torn down.
    Failed(HttpError),
}

/// Incremental HTTP/1.1 request parser. One parser instance per
/// connection; it carries leftover bytes across requests so pipelined
/// requests are handled correctly.
pub struct RequestParser {
    limits: ParserLimits,
    buf: Vec<u8>,
    state: ParseState,
}

impl RequestParser {
    /// A fresh parser with the given limits.
    pub fn new(limits: ParserLimits) -> Self {
        RequestParser {
            limits,
            buf: Vec::new(),
            state: ParseState::Head,
        }
    }

    /// Feed bytes read from the socket. Errors are sticky: once a feed
    /// fails, the parser stays failed and the connection should close
    /// (after answering with [`HttpError::status`]).
    pub fn feed(&mut self, bytes: &[u8]) -> Result<(), HttpError> {
        if let ParseState::Failed(e) = &self.state {
            return Err(e.clone());
        }
        self.buf.extend_from_slice(bytes);
        self.advance().inspect_err(|e| {
            self.state = ParseState::Failed(e.clone());
        })
    }

    /// Take a completed request, if one has fully arrived. Leftover
    /// bytes (a pipelined next request) stay buffered.
    pub fn take_request(&mut self) -> Option<Request> {
        if matches!(self.state, ParseState::Ready(_)) {
            let state = std::mem::replace(&mut self.state, ParseState::Head);
            let ParseState::Ready(req) = state else {
                unreachable!()
            };
            // Leftover bytes may already contain the next request.
            if let Err(e) = self.advance() {
                self.state = ParseState::Failed(e);
            }
            Some(req)
        } else {
            None
        }
    }

    /// Whether any bytes are buffered (a partially received request).
    /// Used by the server to distinguish "idle keep-alive close" from
    /// "peer vanished mid-request".
    pub fn mid_request(&self) -> bool {
        !self.buf.is_empty() || matches!(self.state, ParseState::Body { .. })
    }

    fn advance(&mut self) -> Result<(), HttpError> {
        loop {
            match &mut self.state {
                ParseState::Head => {
                    let Some(head_end) = find_head_end(&self.buf) else {
                        if self.buf.len() > self.limits.max_head_bytes {
                            return Err(HttpError::HeadersTooLarge);
                        }
                        return Ok(());
                    };
                    if head_end > self.limits.max_head_bytes {
                        return Err(HttpError::HeadersTooLarge);
                    }
                    let head: Vec<u8> = self.buf.drain(..head_end).collect();
                    let request = parse_head(&head)?;
                    let remaining = match request.header("transfer-encoding") {
                        Some(_) => {
                            return Err(HttpError::BadRequest("transfer-encoding unsupported"))
                        }
                        None => match request.header("content-length") {
                            Some(v) => v
                                .trim()
                                .parse::<usize>()
                                .map_err(|_| HttpError::BadRequest("invalid content-length"))?,
                            None => 0,
                        },
                    };
                    if remaining > self.limits.max_body_bytes {
                        return Err(HttpError::BodyTooLarge);
                    }
                    self.state = ParseState::Body { request, remaining };
                }
                ParseState::Body { request, remaining } => {
                    let take = (*remaining).min(self.buf.len());
                    request.body.extend(self.buf.drain(..take));
                    *remaining -= take;
                    if *remaining > 0 {
                        return Ok(());
                    }
                    let state = std::mem::replace(&mut self.state, ParseState::Head);
                    let ParseState::Body { request, .. } = state else {
                        unreachable!()
                    };
                    self.state = ParseState::Ready(request);
                    return Ok(());
                }
                // A ready request must be taken before more parsing; the
                // buffered bytes simply wait.
                ParseState::Ready(_) => return Ok(()),
                ParseState::Failed(e) => return Err(e.clone()),
            }
        }
    }
}

/// Index one past the `\r\n\r\n` terminating the head, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

fn parse_head(head: &[u8]) -> Result<Request, HttpError> {
    let head = std::str::from_utf8(head).map_err(|_| HttpError::BadRequest("head not utf-8"))?;
    // `head` ends with "\r\n\r\n"; split into lines on CRLF strictly.
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or(HttpError::BadRequest("empty head"))?;
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or_default();
    let path = parts
        .next()
        .ok_or(HttpError::BadRequest("missing target"))?;
    let version = parts
        .next()
        .ok_or(HttpError::BadRequest("missing version"))?;
    if parts.next().is_some() {
        return Err(HttpError::BadRequest("malformed request line"));
    }
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::BadRequest("malformed method"));
    }
    if path.is_empty() || !path.starts_with('/') {
        return Err(HttpError::BadRequest("malformed target"));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(HttpError::BadRequest("unsupported version")),
    };
    let mut headers = BTreeMap::new();
    for line in lines {
        if line.is_empty() {
            continue; // the trailing blank line(s) from "\r\n\r\n"
        }
        if line.starts_with(' ') || line.starts_with('\t') {
            return Err(HttpError::BadRequest("obsolete line folding"));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest("malformed header"));
        };
        if name.is_empty()
            || !name
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
        {
            return Err(HttpError::BadRequest("malformed header name"));
        }
        headers.insert(name.to_ascii_lowercase(), value.trim().to_string());
    }
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        http11,
        headers,
        body: Vec::new(),
    })
}

/// Reason phrase for the status codes the server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// An outgoing response, rendered with explicit framing.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (see [`reason`] for the phrases we know).
    pub status: u16,
    /// Extra headers beyond the framing set; names used as given.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A response with a JSON body.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            headers: vec![("Content-Type".to_string(), "application/json".to_string())],
            body: body.into_bytes(),
        }
    }

    /// A plain-text response (errors, healthz).
    pub fn text(status: u16, body: &str) -> Self {
        Response {
            status,
            headers: vec![("Content-Type".to_string(), "text/plain".to_string())],
            body: body.as_bytes().to_vec(),
        }
    }

    /// Add a header.
    pub fn with_header(mut self, name: &str, value: String) -> Self {
        self.headers.push((name.to_string(), value));
        self
    }

    /// Serialize head + body, stamping `Content-Length` and
    /// `Connection: keep-alive`/`close` from `keep_alive`.
    pub fn write_to(&self, keep_alive: bool) -> Vec<u8> {
        let mut out = Vec::with_capacity(128 + self.body.len());
        out.extend_from_slice(
            format!("HTTP/1.1 {} {}\r\n", self.status, reason(self.status)).as_bytes(),
        );
        for (name, value) in &self.headers {
            out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        out.extend_from_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        out.extend_from_slice(if keep_alive {
            b"Connection: keep-alive\r\n".as_slice()
        } else {
            b"Connection: close\r\n".as_slice()
        });
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        let mut p = RequestParser::new(ParserLimits::default());
        p.feed(bytes)?;
        Ok(p.take_request())
    }

    #[test]
    fn parses_a_get_in_one_feed() {
        let req = parse_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.http11);
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
        assert!(req.keep_alive());
    }

    #[test]
    fn parses_a_post_with_body_split_anywhere() {
        let raw = b"POST /match HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        for cut in 0..=raw.len() {
            let mut p = RequestParser::new(ParserLimits::default());
            p.feed(&raw[..cut]).unwrap();
            p.feed(&raw[cut..]).unwrap();
            let req = p.take_request().expect("request completes");
            assert_eq!(req.body, b"hello");
            assert_eq!(req.path, "/match");
        }
    }

    #[test]
    fn pipelined_requests_come_out_in_order() {
        let mut p = RequestParser::new(ParserLimits::default());
        p.feed(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n")
            .unwrap();
        assert_eq!(p.take_request().unwrap().path, "/a");
        assert_eq!(p.take_request().unwrap().path, "/b");
        assert!(p.take_request().is_none());
    }

    #[test]
    fn rejects_malformed_request_lines() {
        for raw in [
            b"GET\r\n\r\n".as_slice(),
            b"GET /\r\n\r\n",
            b"get / HTTP/1.1\r\n\r\n",
            b"GET / HTTP/2.0\r\n\r\n",
            b"GET / HTTP/1.1 extra\r\n\r\n",
            b"GET noslash HTTP/1.1\r\n\r\n",
            b"\r\n\r\n",
        ] {
            assert!(
                matches!(parse_all(raw), Err(HttpError::BadRequest(_))),
                "should reject {:?}",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn rejects_bad_headers_and_framing() {
        assert!(matches!(
            parse_all(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse_all(b"GET / HTTP/1.1\r\nA: 1\r\n folded\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse_all(b"POST / HTTP/1.1\r\nContent-Length: nan\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse_all(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn oversized_head_is_431_even_without_terminator() {
        let limits = ParserLimits {
            max_head_bytes: 64,
            max_body_bytes: 1024,
        };
        let mut p = RequestParser::new(limits);
        let mut err = None;
        for _ in 0..16 {
            if let Err(e) = p.feed(b"GET / HTTP/1.1\r\nX: yyyyyyyy\r\n") {
                err = Some(e);
                break;
            }
        }
        assert_eq!(err, Some(HttpError::HeadersTooLarge));
        // Sticky: further feeds keep failing.
        assert_eq!(p.feed(b"x"), Err(HttpError::HeadersTooLarge));
    }

    #[test]
    fn oversized_body_is_413_at_the_header() {
        let limits = ParserLimits {
            max_head_bytes: 1024,
            max_body_bytes: 8,
        };
        let mut p = RequestParser::new(limits);
        let res = p.feed(b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n");
        assert_eq!(res, Err(HttpError::BodyTooLarge));
    }

    #[test]
    fn connection_close_and_http10_defaults() {
        let req = parse_all(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive());
        let req = parse_all(b"GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive());
        let req = parse_all(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(req.keep_alive());
    }

    #[test]
    fn response_framing_is_explicit() {
        let bytes = Response::json(200, "{}".to_string()).write_to(true);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
        let bytes = Response::text(429, "slow down")
            .with_header("Retry-After", "2".to_string())
            .write_to(false);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.contains("Retry-After: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
    }
}
