//! The blocking HTTP server: one accept loop, one thread per
//! connection, no async runtime.
//!
//! The threading model follows the rest of the workspace (the build
//! container has no tokio, and the service layer is already a
//! thread-pool): the listener runs nonblocking and is polled by the
//! accept thread, each accepted connection gets a thread that owns its
//! [`RequestParser`], and the connection
//! thread parks **on the ticket**, not the queue — so a slow evaluation
//! never blocks parsing on other connections.
//!
//! ## Routes
//!
//! | method & path            | behaviour                                     |
//! |--------------------------|-----------------------------------------------|
//! | `GET /healthz`           | `200` with per-tenant health states as JSON   |
//! | `GET /metrics`           | all tenants' [`ServiceMetrics`] as JSON       |
//! | `GET /t/NAME/metrics`    | one tenant's metrics                          |
//! | `POST /t/NAME/match`     | evaluate a [`WireRequest`] on tenant `NAME`   |
//! | `POST /match`            | same, tenant from `X-Mpq-Tenant` header — or  |
//! |                          | the sole tenant of a single-tenant server     |
//! | `POST /t/NAME/mutate`    | apply a [`WireMutation`] to tenant `NAME`     |
//! | `POST /mutate`           | same tenant resolution as `POST /match`       |
//!
//! ## Status mapping
//!
//! * queue full ([`MpqError::Overloaded`]) → `429` with a `Retry-After`
//!   estimated from the tenant's queue depth and p50 latency,
//! * queue deadline lapsed ([`MpqError::DeadlineExceeded`]) → `504`,
//! * service stopped → `503`, worker panic / I/O error → `500`,
//! * a mutation hitting degraded storage ([`MpqError::StorageDegraded`]
//!   or an I/O error) → `503` with a `Retry-After` from the tenant's
//!   health monitor backoff — reads are unaffected and keep serving
//!   from the engine's snapshot,
//! * a request head or body that trickles in slower than
//!   [`ServerConfig::request_read_timeout`] → `408` and close (so a
//!   slow-loris peer cannot pin a connection slot),
//! * every validation error → `400` with the reason in the body.
//!
//! ## Client disconnects cancel work
//!
//! While a connection thread waits on its ticket it polls the socket;
//! a peer that hung up ([`TcpStream::peek`] returning `Ok(0)`) gets its
//! queued request [`cancel`](mpq_core::Ticket::cancel)led so an
//! abandoned submission stops occupying a queue slot.
//!
//! [`ServiceMetrics`]: mpq_core::ServiceMetrics
//! [`WireRequest`]: crate::codec::WireRequest
//! [`WireMutation`]: crate::codec::WireMutation

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use mpq_core::json::Json;
use mpq_core::{MpqError, SubmitOptions, Ticket};

use crate::codec::{decode_match_request, decode_mutation, encode_matching, encode_mutation_ack};
use crate::http::{ParserLimits, Request, RequestParser, Response};
use crate::tenant::{Tenant, TenantRegistry};

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Concurrent connections; excess connections get `503` and close.
    pub max_connections: usize,
    /// Parser caps (head → `431`, body → `413`).
    pub limits: ParserLimits,
    /// Idle keep-alive connections are closed after this long.
    pub keep_alive_timeout: Duration,
    /// A started request (some bytes received, framing incomplete) must
    /// finish arriving within this long, or the connection is answered
    /// `408` and closed. This is the slow-loris bound: without it a
    /// peer drip-feeding one byte per keep-alive period holds a
    /// connection slot forever.
    pub request_read_timeout: Duration,
    /// Granularity of socket polling — bounds shutdown latency,
    /// disconnect-detection latency and accept latency.
    pub poll_interval: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 256,
            limits: ParserLimits::default(),
            keep_alive_timeout: Duration::from_secs(30),
            request_read_timeout: Duration::from_secs(10),
            poll_interval: Duration::from_millis(25),
        }
    }
}

struct Shared {
    registry: TenantRegistry,
    config: ServerConfig,
    stop: AtomicBool,
    active: AtomicUsize,
}

/// A running server. Dropping it (or calling [`Server::shutdown`])
/// stops the accept loop, joins every connection thread, and — via the
/// registry drop — shuts down the tenant services.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: std::net::SocketAddr,
    accept_handle: Option<thread::JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and start serving `registry`.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        registry: TenantRegistry,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            registry,
            config,
            stop: AtomicBool::new(false),
            active: AtomicUsize::new(0),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_handle = thread::Builder::new()
            .name("mpq-net-accept".to_string())
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawn accept thread");
        Ok(Server {
            shared,
            local_addr,
            accept_handle: Some(accept_handle),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// The hosted tenants (read access, e.g. for tests comparing wire
    /// results against direct evaluation).
    pub fn registry(&self) -> &TenantRegistry {
        &self.shared.registry
    }

    /// Stop accepting, drain connection threads, and return. Equivalent
    /// to dropping the server, but explicit at call sites that care.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        // Connection threads observe the stop flag within one poll
        // interval; wait for the count to drain rather than collecting
        // their JoinHandles (threads remove themselves on exit).
        while self.shared.active.load(Ordering::SeqCst) > 0 {
            thread::sleep(Duration::from_millis(1));
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr)
            .field("tenants", &self.shared.registry.len())
            .field(
                "active_connections",
                &self.shared.active.load(Ordering::SeqCst),
            )
            .finish()
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let poll = shared.config.poll_interval;
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.active.load(Ordering::SeqCst) >= shared.config.max_connections {
                    // Shed before spawning: answer 503 inline and close.
                    let _ = stream.set_nonblocking(false);
                    let resp = Response::text(503, "connection limit reached\n").write_to(false);
                    let mut stream = stream;
                    let _ = stream.write_all(&resp);
                    continue;
                }
                shared.active.fetch_add(1, Ordering::SeqCst);
                let conn_shared = Arc::clone(&shared);
                let spawned = thread::Builder::new()
                    .name("mpq-net-conn".to_string())
                    .spawn(move || {
                        let _ = serve_connection(stream, &conn_shared);
                        conn_shared.active.fetch_sub(1, Ordering::SeqCst);
                    });
                if spawned.is_err() {
                    shared.active.fetch_sub(1, Ordering::SeqCst);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(poll),
            Err(_) => thread::sleep(poll),
        }
    }
}

fn serve_connection(mut stream: TcpStream, shared: &Shared) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(shared.config.poll_interval))?;
    let mut parser = RequestParser::new(shared.config.limits);
    let mut buf = [0u8; 16 * 1024];
    let mut idle_since = Instant::now();
    // When the current request's first byte arrived — the slow-loris
    // clock. `None` between requests.
    let mut request_started: Option<Instant> = None;
    loop {
        // Drain every request the parser already holds (pipelining).
        while let Some(request) = parser.take_request() {
            idle_since = Instant::now();
            let keep_alive = request.keep_alive();
            match handle_request(&request, &stream, shared) {
                Outcome::Respond(resp) => {
                    stream.write_all(&resp.write_to(keep_alive))?;
                    if !keep_alive {
                        return Ok(());
                    }
                }
                Outcome::PeerGone => return Ok(()),
            }
        }
        // The drain consumed complete requests; whatever is buffered
        // now is the (possibly empty) start of the next one.
        if !parser.mid_request() {
            request_started = None;
        }
        if shared.stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        match stream.read(&mut buf) {
            Ok(0) => return Ok(()), // peer closed
            Ok(n) => {
                idle_since = Instant::now();
                if let Err(e) = parser.feed(&buf[..n]) {
                    // Answer with the parse error's status and close —
                    // framing is unknown from here on.
                    let resp = Response::text(e.status(), &format!("{e}\n"));
                    let _ = stream.write_all(&resp.write_to(false));
                    return Ok(());
                }
                request_started = if parser.mid_request() {
                    request_started.or(Some(idle_since))
                } else {
                    None
                };
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if !parser.mid_request() && idle_since.elapsed() >= shared.config.keep_alive_timeout
                {
                    return Ok(()); // idle keep-alive expiry
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Ok(()), // reset/broken pipe: nothing to salvage
        }
        // Slow-loris bound: a request that started but has not finished
        // arriving within the budget gets `408` and the slot back. The
        // check runs every loop turn, so trickled bytes (which reset
        // `idle_since` but not `request_started`) do not extend it.
        if let Some(started) = request_started {
            if started.elapsed() >= shared.config.request_read_timeout {
                let resp = Response::text(408, "request read timeout\n");
                let _ = stream.write_all(&resp.write_to(false));
                return Ok(());
            }
        }
    }
}

enum Outcome {
    Respond(Response),
    /// The peer hung up while we were evaluating; nothing to write.
    PeerGone,
}

fn handle_request(request: &Request, stream: &TcpStream, shared: &Shared) -> Outcome {
    let path = request.path.as_str();
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => Outcome::Respond(healthz(shared)),
        ("GET", ["metrics"]) => Outcome::Respond(all_metrics(shared)),
        ("GET", ["t", name, "metrics"]) => match shared.registry.get(name) {
            Some(tenant) => {
                Outcome::Respond(Response::json(200, tenant.metrics().to_json().render()))
            }
            None => Outcome::Respond(Response::text(404, "no such tenant\n")),
        },
        ("POST", ["t", name, "match"]) => match shared.registry.get(name) {
            Some(tenant) => handle_match(request, stream, shared, tenant),
            None => Outcome::Respond(Response::text(404, "no such tenant\n")),
        },
        ("POST", ["match"]) => {
            let tenant = match request.header("x-mpq-tenant") {
                Some(name) => shared.registry.get(name),
                None => shared.registry.sole_tenant(),
            };
            match tenant {
                Some(tenant) => handle_match(request, stream, shared, &Arc::clone(tenant)),
                None => Outcome::Respond(Response::text(
                    404,
                    "tenant required: use /t/NAME/match or X-Mpq-Tenant\n",
                )),
            }
        }
        ("POST", ["t", name, "mutate"]) => match shared.registry.get(name) {
            Some(tenant) => Outcome::Respond(handle_mutate(request, tenant)),
            None => Outcome::Respond(Response::text(404, "no such tenant\n")),
        },
        ("POST", ["mutate"]) => {
            let tenant = match request.header("x-mpq-tenant") {
                Some(name) => shared.registry.get(name),
                None => shared.registry.sole_tenant(),
            };
            match tenant {
                Some(tenant) => Outcome::Respond(handle_mutate(request, tenant)),
                None => Outcome::Respond(Response::text(
                    404,
                    "tenant required: use /t/NAME/mutate or X-Mpq-Tenant\n",
                )),
            }
        }
        ("GET" | "POST", _) => Outcome::Respond(Response::text(404, "no such route\n")),
        _ => Outcome::Respond(Response::text(405, "method not allowed\n")),
    }
}

/// `/healthz`: always `200` while the listener is up (the process is
/// alive and routing), with each tenant's storage-health state in the
/// body so operators and load-balancers can see degradation without
/// taking reads out of rotation — a degraded tenant still serves them.
fn healthz(shared: &Shared) -> Response {
    let tenants: BTreeMap<String, Json> = shared
        .registry
        .iter()
        .map(|t| {
            (
                t.name().to_string(),
                Json::Str(t.health().state().as_str().to_string()),
            )
        })
        .collect();
    let all_healthy = shared
        .registry
        .iter()
        .all(|t| t.health().state().is_healthy());
    let doc = Json::obj([
        (
            "status",
            Json::Str(if all_healthy { "ok" } else { "degraded" }.to_string()),
        ),
        ("tenants", Json::Obj(tenants)),
    ]);
    Response::json(200, doc.render())
}

fn all_metrics(shared: &Shared) -> Response {
    let tenants: BTreeMap<String, Json> = shared
        .registry
        .iter()
        .map(|t| (t.name().to_string(), t.metrics().to_json()))
        .collect();
    let doc = Json::obj([
        ("schema", Json::Str("mpq.metrics/1".to_string())),
        ("tenants", Json::Obj(tenants)),
    ]);
    Response::json(200, doc.render())
}

fn handle_match(
    request: &Request,
    stream: &TcpStream,
    shared: &Shared,
    tenant: &Arc<Tenant>,
) -> Outcome {
    let wire = match decode_match_request(&request.body) {
        Ok(wire) => wire,
        Err(why) => return Outcome::Respond(error_response(400, &why)),
    };
    let mut options = SubmitOptions::default().priority(wire.priority);
    if let Some(ms) = wire.deadline_ms {
        options = options.deadline(Duration::from_millis(ms));
    }
    let submitted = tenant.submit_match(
        &wire.functions,
        wire.algorithm,
        &wire.exclude,
        wire.capacities.as_deref(),
        options,
    );
    let ticket = match submitted {
        Ok(ticket) => ticket,
        Err(e) => return Outcome::Respond(mpq_error_response(&e, tenant)),
    };
    match await_ticket(ticket, stream, shared) {
        TicketOutcome::Done(result) => match *result {
            Ok(matching) => {
                Outcome::Respond(Response::json(200, encode_matching(&matching).render()))
            }
            Err(e) => Outcome::Respond(mpq_error_response(&e, tenant)),
        },
        TicketOutcome::PeerGone => Outcome::PeerGone,
    }
}

/// Apply a `POST .../mutate` body to the tenant's engine. Mutations
/// run inline on the connection thread — they are index maintenance,
/// not evaluations, and never park on a ticket.
fn handle_mutate(request: &Request, tenant: &Arc<Tenant>) -> Response {
    let mutation = match decode_mutation(&request.body) {
        Ok(m) => m,
        Err(why) => return error_response(400, &why),
    };
    match tenant.mutate(&mutation) {
        Ok((oid, version)) => Response::json(200, encode_mutation_ack(oid, version).render()),
        Err(e @ (MpqError::Io(_) | MpqError::StorageDegraded)) => {
            // Storage failure: the tenant is (now) degraded. Tell the
            // client when the recovery probe will next try, so retries
            // line up with repair instead of hammering a broken device.
            let secs = tenant.health().retry_after().as_secs().clamp(1, 30);
            error_response(503, &e.to_string()).with_header("Retry-After", secs.to_string())
        }
        Err(e) => error_response(400, &e.to_string()),
    }
}

enum TicketOutcome {
    Done(Box<Result<mpq_core::Matching, MpqError>>),
    PeerGone,
}

/// Park on the ticket in poll-interval slices, watching the socket for
/// a client disconnect between slices. A gone peer cancels the ticket.
fn await_ticket(mut ticket: Ticket, stream: &TcpStream, shared: &Shared) -> TicketOutcome {
    let poll = shared.config.poll_interval;
    loop {
        match ticket.wait_timeout(poll) {
            Ok(result) => return TicketOutcome::Done(Box::new(result)),
            Err(pending) => ticket = pending,
        }
        if shared.stop.load(Ordering::SeqCst) {
            // Server shutdown: let the service resolve or reject it;
            // one more bounded wait keeps the answer deterministic.
            return TicketOutcome::Done(Box::new(
                ticket
                    .wait_timeout(poll)
                    .unwrap_or(Err(MpqError::ServiceStopped)),
            ));
        }
        if peer_disconnected(stream) {
            ticket.cancel();
            return TicketOutcome::PeerGone;
        }
    }
}

/// `true` iff the peer has closed its end: a nonblocking `peek` that
/// returns `Ok(0)` or a hard error. Pending pipelined bytes (`Ok(n)`)
/// and `WouldBlock` both mean the peer is still there.
fn peer_disconnected(stream: &TcpStream) -> bool {
    if stream.set_nonblocking(true).is_err() {
        return true;
    }
    let mut probe = [0u8; 1];
    let gone = match stream.peek(&mut probe) {
        Ok(0) => true,
        Ok(_) => false,
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => false,
        Err(e) if e.kind() == io::ErrorKind::Interrupted => false,
        Err(_) => true,
    };
    // Restore blocking-with-timeout mode for the main read loop.
    if stream.set_nonblocking(false).is_err() {
        return true;
    }
    gone
}

fn error_response(status: u16, message: &str) -> Response {
    let body = Json::obj([("error", Json::Str(message.to_string()))]).render();
    Response::json(status, body)
}

/// Map an [`MpqError`] onto the wire, attaching `Retry-After` to `429`.
fn mpq_error_response(e: &MpqError, tenant: &Tenant) -> Response {
    let status = match e {
        MpqError::Overloaded => 429,
        MpqError::DeadlineExceeded => 504,
        MpqError::ServiceStopped | MpqError::Cancelled | MpqError::StorageDegraded => 503,
        MpqError::WorkerPanicked | MpqError::Io(_) => 500,
        _ => 400,
    };
    let resp = error_response(status, &e.to_string());
    if status == 429 {
        resp.with_header("Retry-After", retry_after_secs(tenant).to_string())
    } else {
        resp
    }
}

/// Estimate how long until a queue slot frees: outstanding work
/// (queued + running) divided across the workers, times the p50
/// latency, clamped to `[1, 30]` seconds. Coarse on purpose — it is a
/// hint for backoff, not a promise.
fn retry_after_secs(tenant: &Tenant) -> u64 {
    let metrics = tenant.metrics();
    let outstanding = (metrics.queue_depth + metrics.in_flight) as f64;
    let workers = tenant.workers().max(1) as f64;
    let p50 = metrics.p50_latency.as_secs_f64().max(0.001);
    ((outstanding / workers) * p50).ceil().clamp(1.0, 30.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = ServerConfig::default();
        assert!(c.max_connections >= 64);
        assert!(c.poll_interval < c.keep_alive_timeout);
    }
}
