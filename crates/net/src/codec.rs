//! JSON wire codec: request bodies in, matchings out.
//!
//! A `POST .../match` body is a [`WireRequest`]:
//!
//! ```json
//! {
//!   "functions": [[0.7, 0.3], [0.5, 0.5]],
//!   "algorithm": "sb",
//!   "exclude": [17, 42],
//!   "capacities": [2, 1],
//!   "deadline_ms": 250,
//!   "priority": 5
//! }
//! ```
//!
//! Only `functions` is required. The response is [`encode_matching`]:
//! `{"pairs":[{"fid":..,"oid":..,"score":..}],"len":..,"total_score":..}`.
//! Scores cross the wire through [`Json`]'s shortest-round-trip `f64`
//! rendering, so a decoded pair is **bit-identical** to what
//! `Engine::evaluate` produced — the e2e suite asserts exactly that.
//!
//! Decoding is strict where it matters (types, finiteness, ranges) and
//! produces a human-readable message for the `400` body; semantic
//! validation (dimension mismatch, empty sets, weight errors) stays in
//! the engine, which already does it canonically.

//! `POST .../mutate` bodies are a [`WireMutation`]:
//!
//! ```json
//! {"op": "insert", "point": [0.3, 0.7]}
//! {"op": "remove", "oid": 17}
//! {"op": "update", "oid": 17, "point": [0.4, 0.6]}
//! ```

use mpq_core::json::Json;
use mpq_core::{Algorithm, Matching, Pair};
use mpq_ta::FunctionSet;

/// A decoded `POST .../match` body, ready to submit.
#[derive(Debug, Clone)]
pub struct WireRequest {
    /// The preference functions, one weight row per function.
    pub functions: FunctionSet,
    /// Matching algorithm (default [`Algorithm::Sb`]).
    pub algorithm: Algorithm,
    /// Object ids excluded from this evaluation.
    pub exclude: Vec<u64>,
    /// Optional per-function capacities.
    pub capacities: Option<Vec<u32>>,
    /// Optional per-request deadline in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Queue priority (higher runs first; default 0).
    pub priority: i32,
}

fn field_u64(json: &Json, key: &str) -> Result<Option<u64>, String> {
    match json.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => {
            let n = v
                .as_f64()
                .ok_or_else(|| format!("'{key}' must be a number"))?;
            if !(n.fract() == 0.0 && (0.0..=u64::MAX as f64).contains(&n)) {
                return Err(format!("'{key}' must be a non-negative integer"));
            }
            Ok(Some(n as u64))
        }
    }
}

/// Decode a request body. `Err` carries the message for the `400` body.
pub fn decode_match_request(body: &[u8]) -> Result<WireRequest, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not valid UTF-8".to_string())?;
    let json = Json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    if !matches!(json, Json::Obj(_)) {
        return Err("body must be a JSON object".to_string());
    }

    let rows_json = json
        .get("functions")
        .ok_or_else(|| "missing 'functions'".to_string())?;
    let rows_json = rows_json
        .as_arr()
        .ok_or_else(|| "'functions' must be an array of weight rows".to_string())?;
    if rows_json.is_empty() {
        return Err("'functions' must not be empty".to_string());
    }
    let mut rows = Vec::with_capacity(rows_json.len());
    for (i, row) in rows_json.iter().enumerate() {
        let row = row
            .as_arr()
            .ok_or_else(|| format!("function {i} must be an array of numbers"))?;
        let mut weights = Vec::with_capacity(row.len());
        for w in row {
            weights.push(
                w.as_f64()
                    .ok_or_else(|| format!("function {i} has a non-numeric weight"))?,
            );
        }
        rows.push(weights);
    }
    let dim = rows[0].len();
    let functions = FunctionSet::try_from_rows(dim, &rows)
        .map_err(|(i, e)| format!("function {i} is invalid: {e}"))?;

    let algorithm = match json.get("algorithm") {
        None | Some(Json::Null) => Algorithm::Sb,
        Some(v) => {
            let name = v
                .as_str()
                .ok_or_else(|| "'algorithm' must be a string".to_string())?;
            name.parse::<Algorithm>()
                .map_err(|e| format!("'algorithm': {e}"))?
        }
    };

    let exclude = match json.get("exclude") {
        None | Some(Json::Null) => Vec::new(),
        Some(v) => {
            let arr = v
                .as_arr()
                .ok_or_else(|| "'exclude' must be an array of object ids".to_string())?;
            let mut oids = Vec::with_capacity(arr.len());
            for (i, oid) in arr.iter().enumerate() {
                let n = oid
                    .as_f64()
                    .filter(|n| n.fract() == 0.0 && *n >= 0.0)
                    .ok_or_else(|| format!("'exclude[{i}]' must be a non-negative integer"))?;
                oids.push(n as u64);
            }
            oids
        }
    };

    let capacities = match json.get("capacities") {
        None | Some(Json::Null) => None,
        Some(v) => {
            let arr = v
                .as_arr()
                .ok_or_else(|| "'capacities' must be an array of counts".to_string())?;
            let mut caps = Vec::with_capacity(arr.len());
            for (i, c) in arr.iter().enumerate() {
                let n = c
                    .as_f64()
                    .filter(|n| n.fract() == 0.0 && (0.0..=u32::MAX as f64).contains(n))
                    .ok_or_else(|| format!("'capacities[{i}]' must be a non-negative integer"))?;
                caps.push(n as u32);
            }
            Some(caps)
        }
    };

    let deadline_ms = field_u64(&json, "deadline_ms")?;

    let priority = match json.get("priority") {
        None | Some(Json::Null) => 0,
        Some(v) => {
            let n = v
                .as_f64()
                .filter(|n| n.fract() == 0.0 && (i32::MIN as f64..=i32::MAX as f64).contains(n))
                .ok_or_else(|| "'priority' must be an integer".to_string())?;
            n as i32
        }
    };

    Ok(WireRequest {
        functions,
        algorithm,
        exclude,
        capacities,
        deadline_ms,
        priority,
    })
}

/// Encode a matching as the response body.
pub fn encode_matching(m: &Matching) -> Json {
    Json::obj([
        (
            "pairs",
            Json::Arr(
                m.pairs()
                    .iter()
                    .map(|p| {
                        Json::obj([
                            ("fid", Json::Num(p.fid as f64)),
                            ("oid", Json::Num(p.oid as f64)),
                            ("score", Json::Num(p.score)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("len", Json::Num(m.len() as f64)),
        ("total_score", Json::Num(m.total_score())),
    ])
}

/// Decode the pairs from a response body (the client side of
/// [`encode_matching`]). Returns `(fid, oid, score)` triples in wire
/// order.
pub fn decode_pairs(body: &[u8]) -> Result<Vec<Pair>, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not valid UTF-8".to_string())?;
    let json = Json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let arr = json
        .get("pairs")
        .and_then(|p| p.as_arr())
        .ok_or_else(|| "missing 'pairs' array".to_string())?;
    let mut pairs = Vec::with_capacity(arr.len());
    for (i, p) in arr.iter().enumerate() {
        let fid = p
            .get("fid")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("pair {i} missing 'fid'"))? as u32;
        let oid = p
            .get("oid")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("pair {i} missing 'oid'"))? as u64;
        let score = p
            .get("score")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("pair {i} missing 'score'"))?;
        pairs.push(Pair { fid, oid, score });
    }
    Ok(pairs)
}

/// A decoded `POST .../mutate` body.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMutation {
    /// Insert a new object at `point`; the ack carries its oid.
    Insert(Vec<f64>),
    /// Remove object `oid`.
    Remove(u64),
    /// Move object `oid` to `point`.
    Update(u64, Vec<f64>),
}

fn field_point(json: &Json) -> Result<Vec<f64>, String> {
    let arr = json
        .get("point")
        .and_then(|p| p.as_arr())
        .ok_or_else(|| "'point' must be an array of numbers".to_string())?;
    if arr.is_empty() {
        return Err("'point' must not be empty".to_string());
    }
    let mut point = Vec::with_capacity(arr.len());
    for (i, v) in arr.iter().enumerate() {
        let x = v
            .as_f64()
            .filter(|x| x.is_finite())
            .ok_or_else(|| format!("'point[{i}]' must be a finite number"))?;
        point.push(x);
    }
    Ok(point)
}

/// Decode a mutation body. `Err` carries the message for the `400` body.
pub fn decode_mutation(body: &[u8]) -> Result<WireMutation, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not valid UTF-8".to_string())?;
    let json = Json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    if !matches!(json, Json::Obj(_)) {
        return Err("body must be a JSON object".to_string());
    }
    let op = json
        .get("op")
        .and_then(|v| v.as_str())
        .ok_or_else(|| "'op' must be one of \"insert\", \"remove\", \"update\"".to_string())?;
    let oid = || field_u64(&json, "oid")?.ok_or_else(|| format!("'{op}' requires an 'oid'"));
    match op {
        "insert" => Ok(WireMutation::Insert(field_point(&json)?)),
        "remove" => Ok(WireMutation::Remove(oid()?)),
        "update" => Ok(WireMutation::Update(oid()?, field_point(&json)?)),
        other => Err(format!("unknown op {other:?}")),
    }
}

/// Encode a successful mutation's ack:
/// `{"ok":true,"oid":..,"inventory_version":..}` (`oid` only for
/// inserts).
pub fn encode_mutation_ack(oid: Option<u64>, inventory_version: u64) -> Json {
    let mut fields = vec![("ok", Json::Bool(true))];
    if let Some(oid) = oid {
        fields.push(("oid", Json::Num(oid as f64)));
    }
    fields.push(("inventory_version", Json::Num(inventory_version as f64)));
    Json::obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_a_minimal_request() {
        let req = decode_match_request(br#"{"functions":[[0.7,0.3],[0.5,0.5]]}"#).unwrap();
        assert_eq!(req.functions.len(), 2);
        assert_eq!(req.functions.dim(), 2);
        assert!(matches!(req.algorithm, Algorithm::Sb));
        assert!(req.exclude.is_empty());
        assert!(req.capacities.is_none());
        assert!(req.deadline_ms.is_none());
        assert_eq!(req.priority, 0);
    }

    #[test]
    fn decodes_all_optional_fields() {
        let req = decode_match_request(
            br#"{"functions":[[1.0,0.0]],"algorithm":"bf","exclude":[3,9],
                 "capacities":[2],"deadline_ms":250,"priority":-1}"#,
        )
        .unwrap();
        assert!(matches!(req.algorithm, Algorithm::BruteForce));
        assert_eq!(req.exclude, vec![3, 9]);
        assert_eq!(req.capacities, Some(vec![2]));
        assert_eq!(req.deadline_ms, Some(250));
        assert_eq!(req.priority, -1);
    }

    #[test]
    fn rejects_malformed_bodies_with_a_reason() {
        for (body, needle) in [
            (&b"not json"[..], "invalid JSON"),
            (br#"[1,2]"#, "must be a JSON object"),
            (br#"{}"#, "missing 'functions'"),
            (br#"{"functions":[]}"#, "must not be empty"),
            (br#"{"functions":[["x"]]}"#, "non-numeric weight"),
            (br#"{"functions":[[0.5,0.5]],"algorithm":3}"#, "'algorithm'"),
            (
                br#"{"functions":[[0.5,0.5]],"exclude":[-1]}"#,
                "'exclude[0]'",
            ),
            (
                br#"{"functions":[[0.5,0.5]],"deadline_ms":1.5}"#,
                "'deadline_ms'",
            ),
            (
                br#"{"functions":[[0.5,0.5]],"capacities":[0.5]}"#,
                "'capacities[0]'",
            ),
        ] {
            let err = decode_match_request(body).unwrap_err();
            assert!(
                err.contains(needle),
                "body {:?} gave {err:?}, wanted {needle:?}",
                String::from_utf8_lossy(body)
            );
        }
    }

    #[test]
    fn invalid_weight_rows_are_refused_at_decode() {
        // Negative weights violate the FunctionSet contract; the decoder
        // surfaces that as a 400-worthy message rather than a panic.
        let err = decode_match_request(br#"{"functions":[[-0.5,0.5]]}"#).unwrap_err();
        assert!(err.contains("function 0"), "{err}");
    }

    #[test]
    fn decodes_mutations() {
        assert_eq!(
            decode_mutation(br#"{"op":"insert","point":[0.3,0.7]}"#).unwrap(),
            WireMutation::Insert(vec![0.3, 0.7])
        );
        assert_eq!(
            decode_mutation(br#"{"op":"remove","oid":17}"#).unwrap(),
            WireMutation::Remove(17)
        );
        assert_eq!(
            decode_mutation(br#"{"op":"update","oid":3,"point":[0.1,0.2]}"#).unwrap(),
            WireMutation::Update(3, vec![0.1, 0.2])
        );
    }

    #[test]
    fn rejects_malformed_mutations_with_a_reason() {
        for (body, needle) in [
            (&br#"{"point":[0.1]}"#[..], "'op'"),
            (br#"{"op":"explode"}"#, "unknown op"),
            (br#"{"op":"insert"}"#, "'point'"),
            (br#"{"op":"insert","point":[]}"#, "must not be empty"),
            (br#"{"op":"insert","point":["x"]}"#, "'point[0]'"),
            (br#"{"op":"remove"}"#, "requires an 'oid'"),
            (br#"{"op":"remove","oid":-1}"#, "'oid'"),
            (br#"{"op":"update","oid":1}"#, "'point'"),
        ] {
            let err = decode_mutation(body).unwrap_err();
            assert!(
                err.contains(needle),
                "body {:?} gave {err:?}, wanted {needle:?}",
                String::from_utf8_lossy(body)
            );
        }
    }

    #[test]
    fn mutation_ack_includes_oid_only_for_inserts() {
        let with = encode_mutation_ack(Some(5), 9).render();
        assert!(with.contains("\"oid\":5"), "{with}");
        let without = encode_mutation_ack(None, 9).render();
        assert!(!without.contains("oid"), "{without}");
        assert!(without.contains("\"inventory_version\":9"), "{without}");
    }

    #[test]
    fn matchings_round_trip_bit_exactly() {
        let pairs = vec![
            Pair {
                fid: 0,
                oid: 7,
                score: 0.1 + 0.2, // deliberately non-representable sum
            },
            Pair {
                fid: 1,
                oid: 3,
                score: 1.0 / 3.0,
            },
        ];
        let m = Matching::new(pairs.clone(), Default::default());
        let body = encode_matching(&m).render();
        let back = decode_pairs(body.as_bytes()).unwrap();
        assert_eq!(back.len(), pairs.len());
        for (a, b) in pairs.iter().zip(&back) {
            assert_eq!(a.fid, b.fid);
            assert_eq!(a.oid, b.oid);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }
}
