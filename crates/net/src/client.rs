//! A small blocking HTTP client over one keep-alive connection.
//!
//! This is the counterpart the server's own tests, the CLI tests, the
//! `netload` harness and `examples/client.rs` all share — deliberately
//! minimal (no redirects, no TLS, no chunked bodies) because it only
//! ever talks to [`crate::server::Server`].

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A parsed response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Headers, lower-cased names.
    pub headers: BTreeMap<String, String>,
    /// Body bytes (Content-Length framed).
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// Header lookup by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .get(&name.to_ascii_lowercase())
            .map(|s| s.as_str())
    }

    /// The body as UTF-8 text (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A persistent connection to one server.
pub struct HttpClient {
    stream: TcpStream,
    leftover: Vec<u8>,
}

impl HttpClient {
    /// Connect to `addr`.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(HttpClient {
            stream,
            leftover: Vec::new(),
        })
    }

    /// Set a read timeout for responses (None = block forever).
    pub fn set_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// `GET path` and read the response.
    pub fn get(&mut self, path: &str) -> io::Result<HttpResponse> {
        self.request("GET", path, &[], b"")
    }

    /// `POST path` with a JSON body.
    pub fn post_json(&mut self, path: &str, body: &str) -> io::Result<HttpResponse> {
        self.request(
            "POST",
            path,
            &[("Content-Type", "application/json")],
            body.as_bytes(),
        )
    }

    /// Issue a request with arbitrary extra headers.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> io::Result<HttpResponse> {
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: mpq\r\n");
        for (name, value) in headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)?;
        self.read_response()
    }

    /// Write a request but never read the response — used by tests that
    /// exercise the server's disconnect-cancellation path.
    pub fn fire_and_forget(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<()> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: mpq\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)
    }

    fn read_response(&mut self) -> io::Result<HttpResponse> {
        let mut buf = std::mem::take(&mut self.leftover);
        let head_end = loop {
            if let Some(i) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break i + 4;
            }
            let mut chunk = [0u8; 8 * 1024];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed before response head",
                ));
            }
            buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or_default();
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad status: {status_line}"),
                )
            })?;
        let mut headers = BTreeMap::new();
        for line in lines {
            if let Some((name, value)) = line.split_once(':') {
                headers.insert(name.to_ascii_lowercase(), value.trim().to_string());
            }
        }
        let content_length: usize = headers
            .get("content-length")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        let mut body = buf.split_off(head_end);
        buf.clear();
        while body.len() < content_length {
            let mut chunk = [0u8; 8 * 1024];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                ));
            }
            body.extend_from_slice(&chunk[..n]);
        }
        // Anything past the declared body belongs to the next response.
        self.leftover = body.split_off(content_length);
        Ok(HttpResponse {
            status,
            headers,
            body,
        })
    }
}
