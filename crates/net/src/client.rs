//! A small blocking HTTP client over one keep-alive connection.
//!
//! This is the counterpart the server's own tests, the CLI tests, the
//! `netload` harness and `examples/client.rs` all share — deliberately
//! minimal (no redirects, no TLS, no chunked bodies) because it only
//! ever talks to [`crate::server::Server`].

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Backoff tuning for [`HttpClient::send_with_retry`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts, including the first (so `1` means no retries).
    pub attempts: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_backoff: Duration,
    /// Cap on any single backoff — also caps an honored `Retry-After`,
    /// so a server asking for 30 s cannot stall a caller that budgeted
    /// less.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `retry` (0-based), honoring the
    /// server's `Retry-After` hint when it is larger: exponential from
    /// [`base_backoff`](RetryPolicy::base_backoff), jittered to 50-100%
    /// so synchronized clients spread out, capped at
    /// [`max_backoff`](RetryPolicy::max_backoff).
    fn backoff(&self, retry: u32, retry_after: Option<Duration>, jitter_seed: u64) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << retry.min(16))
            .min(self.max_backoff);
        let hinted = match retry_after {
            Some(ra) => exp.max(ra.min(self.max_backoff)),
            None => exp,
        };
        // Multiplicative 50-100% jitter from a tiny splitmix step — a
        // real RNG would be a dependency for one scalar.
        let mut z = jitter_seed.wrapping_add(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        let frac = 0.5 + 0.5 * ((z >> 11) as f64 / (1u64 << 53) as f64);
        hinted.mul_f64(frac)
    }
}

/// A parsed response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Headers, lower-cased names.
    pub headers: BTreeMap<String, String>,
    /// Body bytes (Content-Length framed).
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// Header lookup by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .get(&name.to_ascii_lowercase())
            .map(|s| s.as_str())
    }

    /// The body as UTF-8 text (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A persistent connection to one server.
pub struct HttpClient {
    stream: TcpStream,
    leftover: Vec<u8>,
    /// The server's resolved address — kept for reconnecting after a
    /// reset inside [`HttpClient::send_with_retry`].
    addr: SocketAddr,
    timeout: Option<Duration>,
}

impl HttpClient {
    /// Connect to `addr`.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let addr = stream.peer_addr()?;
        Ok(HttpClient {
            stream,
            leftover: Vec::new(),
            addr,
            timeout: None,
        })
    }

    /// Set a read timeout for responses (None = block forever). The
    /// timeout survives a retry-triggered reconnect.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.timeout = timeout;
        self.stream.set_read_timeout(timeout)
    }

    /// Drop the current connection and dial the server again.
    pub fn reconnect(&mut self) -> io::Result<()> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(self.timeout)?;
        self.stream = stream;
        self.leftover.clear();
        Ok(())
    }

    /// `GET path` and read the response.
    pub fn get(&mut self, path: &str) -> io::Result<HttpResponse> {
        self.request("GET", path, &[], b"")
    }

    /// `POST path` with a JSON body.
    pub fn post_json(&mut self, path: &str, body: &str) -> io::Result<HttpResponse> {
        self.request(
            "POST",
            path,
            &[("Content-Type", "application/json")],
            body.as_bytes(),
        )
    }

    /// Issue a request with arbitrary extra headers.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> io::Result<HttpResponse> {
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: mpq\r\n");
        for (name, value) in headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)?;
        self.read_response()
    }

    /// Issue a request, retrying on backpressure and broken
    /// connections.
    ///
    /// Retries happen on `429 Too Many Requests` (honoring the server's
    /// `Retry-After`, capped by the policy) and on connection errors
    /// (reset, broken pipe, unexpected EOF — the client reconnects
    /// first), with jittered exponential backoff between attempts.
    /// Other statuses — including `4xx`/`5xx` — return immediately:
    /// whether e.g. a `503` mutation is safe to resend is the caller's
    /// call, not the transport's. **Only send idempotent requests
    /// through this** (`/match` is: evaluation never mutates), since a
    /// request whose response was lost may execute twice.
    ///
    /// Returns the last response once one arrives and no retry applies
    /// (so an exhausted budget surfaces the final `429` to the caller),
    /// or the last connection error if the budget ends without any
    /// response.
    pub fn send_with_retry(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
        policy: RetryPolicy,
    ) -> io::Result<HttpResponse> {
        let attempts = policy.attempts.max(1);
        let mut last_err: Option<io::Error> = None;
        for attempt in 0..attempts {
            if last_err.is_some() {
                // The previous attempt died mid-exchange; the old
                // stream's framing is unknown, start fresh.
                match self.reconnect() {
                    Ok(()) => last_err = None,
                    Err(e) => {
                        last_err = Some(e);
                        continue;
                    }
                }
            }
            let retry_after = match self.request(method, path, headers, body) {
                Ok(resp) if resp.status == 429 && attempt + 1 < attempts => resp
                    .header("retry-after")
                    .and_then(|v| v.trim().parse::<u64>().ok())
                    .map(Duration::from_secs),
                Ok(resp) => return Ok(resp),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::ConnectionReset
                            | io::ErrorKind::ConnectionAborted
                            | io::ErrorKind::BrokenPipe
                            | io::ErrorKind::UnexpectedEof
                    ) =>
                {
                    last_err = Some(e);
                    None
                }
                Err(e) => return Err(e),
            };
            if attempt + 1 < attempts {
                let seed = (attempt as u64) << 32 | self.addr.port() as u64;
                std::thread::sleep(policy.backoff(attempt, retry_after, seed));
            }
        }
        Err(last_err.unwrap_or_else(|| {
            io::Error::other("retry budget exhausted without a terminal response")
        }))
    }

    /// Write a request but never read the response — used by tests that
    /// exercise the server's disconnect-cancellation path.
    pub fn fire_and_forget(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<()> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: mpq\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)
    }

    fn read_response(&mut self) -> io::Result<HttpResponse> {
        let mut buf = std::mem::take(&mut self.leftover);
        let head_end = loop {
            if let Some(i) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break i + 4;
            }
            let mut chunk = [0u8; 8 * 1024];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed before response head",
                ));
            }
            buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or_default();
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad status: {status_line}"),
                )
            })?;
        let mut headers = BTreeMap::new();
        for line in lines {
            if let Some((name, value)) = line.split_once(':') {
                headers.insert(name.to_ascii_lowercase(), value.trim().to_string());
            }
        }
        let content_length: usize = headers
            .get("content-length")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        let mut body = buf.split_off(head_end);
        buf.clear();
        while body.len() < content_length {
            let mut chunk = [0u8; 8 * 1024];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                ));
            }
            body.extend_from_slice(&chunk[..n]);
        }
        // Anything past the declared body belongs to the next response.
        self.leftover = body.split_off(content_length);
        Ok(HttpResponse {
            status,
            headers,
            body,
        })
    }
}
