//! # mpq-net — the network front-end
//!
//! Puts the [`mpq_core`] service layer on the wire: a std-only
//! HTTP/1.1 server (no async runtime — the build container vendors no
//! tokio, and the service layer is already thread-based) hosting one or
//! more named engines ("tenants") behind a single listener.
//!
//! * [`http`] — incremental request parser with hard limits, and an
//!   explicit-framing response writer.
//! * [`codec`] — the JSON wire format for match requests and matchings
//!   (bit-exact score round-trips via [`mpq_core::json`]).
//! * [`tenant`] — [`TenantRegistry`]: per-tenant engine + service +
//!   cache, which is the isolation boundary.
//! * [`server`] — the accept loop, routing, backpressure mapping
//!   (`429` + `Retry-After`), deadline mapping (`504`), and
//!   disconnect-cancellation.
//! * [`client`] — the minimal blocking client used by tests, the CLI
//!   tests, the `netload` harness and the examples.
//!
//! ```no_run
//! use std::sync::Arc;
//! use mpq_net::{Server, ServerConfig, TenantConfig, TenantRegistry};
//! # fn objects() -> mpq_rtree::PointSet { unimplemented!() }
//!
//! let mut registry = TenantRegistry::new();
//! registry.add_objects("hotels", &objects(), TenantConfig::default()).unwrap();
//! let server = Server::bind("127.0.0.1:8080", registry, ServerConfig::default()).unwrap();
//! println!("listening on {}", server.local_addr());
//! // ... server serves until dropped ...
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod codec;
pub mod http;
pub mod server;
pub mod tenant;

pub use client::{HttpClient, HttpResponse, RetryPolicy};
pub use codec::{
    decode_match_request, decode_mutation, decode_pairs, encode_matching, encode_mutation_ack,
    WireMutation, WireRequest,
};
pub use http::{HttpError, ParserLimits, Request, RequestParser, Response};
pub use server::{Server, ServerConfig};
pub use tenant::{Tenant, TenantConfig, TenantRegistry};
