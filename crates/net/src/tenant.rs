//! Multi-tenant hosting: several named engines behind one listener.
//!
//! Each [`Tenant`] owns its engine **and its own [`EngineService`]** —
//! worker pool, bounded queue, result cache. That per-tenant service is
//! the isolation mechanism: a tenant that saturates its queue sheds its
//! own load with `429`s while the other tenants' workers, queues and
//! caches are untouched. The server routes by path (`/t/<name>/match`)
//! or by the `X-Mpq-Tenant` header; see [`crate::server`].
//!
//! Backpressure is forced to [`BackpressurePolicy::Reject`] regardless
//! of what the config says: a blocking submit would park the connection
//! thread inside another tenant's queue, which is exactly the coupling
//! multi-tenancy exists to prevent. The wire answer to a full queue is
//! `429 Too Many Requests` with a `Retry-After` estimate, never a
//! stalled socket.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use mpq_core::service::{BackpressurePolicy, QueueOrdering};
use mpq_core::{
    Algorithm, Engine, EngineService, HealthMonitor, MpqError, ServiceClient, ServiceConfig,
    ShardedEngine, SubmitOptions, Ticket,
};
use mpq_ta::FunctionSet;

use crate::codec::WireMutation;
use mpq_rtree::PointSet;

/// Configuration for one hosted tenant.
#[derive(Debug, Clone)]
pub struct TenantConfig {
    /// Worker threads of this tenant's service (0 = one per core).
    pub workers: usize,
    /// Bounded submission-queue capacity.
    pub queue_capacity: usize,
    /// Result-cache entry budget (0 disables the cache).
    pub cache_capacity: usize,
    /// Result-cache byte budget.
    pub cache_max_bytes: usize,
    /// Near-miss seeding delta bound: an exact cache miss within this
    /// many flipped exclusions / changed function rows of a cached
    /// entry evaluates *seeded* from that entry's captured skyline
    /// state (`0` disables; results stay bit-identical either way).
    pub seed_delta_bound: usize,
    /// Rolling latency window for p50/p99 (also feeds `Retry-After`).
    pub latency_window: usize,
    /// Shards of the hosted engine: `1` hosts a plain [`Engine`], `> 1`
    /// a [`ShardedEngine`] with this many hash-partitioned shards.
    /// `0` is rejected at tenant creation.
    pub shards: usize,
}

impl Default for TenantConfig {
    fn default() -> Self {
        TenantConfig {
            workers: 1,
            queue_capacity: 64,
            cache_capacity: 256,
            cache_max_bytes: 32 * 1024 * 1024,
            seed_delta_bound: 16,
            latency_window: 1024,
            shards: 1,
        }
    }
}

impl TenantConfig {
    fn service_config(&self) -> ServiceConfig {
        ServiceConfig::default()
            .workers(self.workers)
            .queue_capacity(self.queue_capacity)
            // See the module docs: Reject is structural, not a default.
            .backpressure(BackpressurePolicy::Reject)
            // The wire request carries a `priority` field; FIFO would
            // reject any nonzero value.
            .ordering(QueueOrdering::Priority)
            .cache_capacity(self.cache_capacity)
            .cache_max_bytes(self.cache_max_bytes)
            .seed_delta_bound(self.seed_delta_bound)
            .latency_window(self.latency_window)
    }
}

/// One hosted engine with its private service.
///
/// ## Health and degraded mode
///
/// The tenant's [`HealthMonitor`] (shared with its service) tracks
/// storage health: a mutation that fails on a storage error flips the
/// tenant to `Degraded` (escalating to `Failed` after repeated
/// failures), after which further mutations are refused up front —
/// the server answers `503` with a `Retry-After` from the monitor's
/// backoff — while reads keep serving from the engine's pinned epoch
/// snapshot and result cache. A background **recovery probe** thread
/// retries [`Engine::checkpoint`] with capped exponential backoff; the
/// first success restores `Healthy`.
pub struct Tenant {
    name: String,
    engine: TenantEngine,
    service: EngineService,
    client: ServiceClient,
    probe_stop: Arc<AtomicBool>,
    probe_handle: Option<thread::JoinHandle<()>>,
}

/// The engine a tenant hosts: a plain [`Engine`] or, with
/// `shards=K > 1` in its [`TenantConfig`], a [`ShardedEngine`]. Both
/// expose the same wire surface (match submission, mutations,
/// checkpoint-as-repair), so everything above this enum is
/// shard-agnostic.
#[derive(Clone)]
enum TenantEngine {
    Single(Arc<Engine>),
    Sharded(Arc<ShardedEngine>),
}

impl TenantEngine {
    fn checkpoint(&self) -> Result<(), MpqError> {
        match self {
            TenantEngine::Single(e) => e.checkpoint(),
            TenantEngine::Sharded(s) => s.checkpoint(),
        }
    }

    fn insert_object(&self, point: &[f64]) -> Result<u64, MpqError> {
        match self {
            TenantEngine::Single(e) => e.insert_object(point),
            TenantEngine::Sharded(s) => s.insert_object(point),
        }
    }

    fn remove_object(&self, oid: u64) -> Result<(), MpqError> {
        match self {
            TenantEngine::Single(e) => e.remove_object(oid),
            TenantEngine::Sharded(s) => s.remove_object(oid),
        }
    }

    fn update_object(&self, oid: u64, point: &[f64]) -> Result<(), MpqError> {
        match self {
            TenantEngine::Single(e) => e.update_object(oid, point),
            TenantEngine::Sharded(s) => s.update_object(oid, point),
        }
    }

    /// A monotone scalar version for mutation acks: the single engine's
    /// inventory version, or the sum of the sharded version vector
    /// (each mutation bumps exactly one component, so the sum advances
    /// by one per committed mutation).
    fn ack_version(&self) -> u64 {
        match self {
            TenantEngine::Single(e) => e.inventory_version(),
            TenantEngine::Sharded(s) => s.version_vector().iter().sum(),
        }
    }
}

impl Drop for Tenant {
    fn drop(&mut self) {
        self.probe_stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.probe_handle.take() {
            let _ = handle.join();
        }
    }
}

/// How often the recovery-probe thread checks whether a probe is due.
/// Bounds probe latency and tenant-drop latency, nothing else — the
/// actual retry pacing is the monitor's exponential backoff.
const PROBE_POLL: Duration = Duration::from_millis(10);

fn spawn_probe(
    engine: TenantEngine,
    health: Arc<HealthMonitor>,
    stop: Arc<AtomicBool>,
) -> thread::JoinHandle<()> {
    thread::Builder::new()
        .name("mpq-net-probe".to_string())
        .spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                if health.probe_due() {
                    health.begin_probe();
                    // A checkpoint is the repair primitive: it flushes
                    // the dirty pages, commits a new header and
                    // truncates (un-wedging) the WAL.
                    match engine.checkpoint() {
                        Ok(()) => health.report_success(),
                        Err(_) => {
                            let _ = health.report_failure();
                        }
                    }
                }
                thread::sleep(PROBE_POLL);
            }
        })
        .expect("spawn probe thread")
}

impl Tenant {
    /// The tenant's route name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The hosted engine (for request building and direct evaluation in
    /// tests).
    ///
    /// # Panics
    ///
    /// If the tenant hosts a sharded engine (`shards > 1`) — use
    /// [`Tenant::sharded`] there, or the shard-agnostic
    /// [`Tenant::submit_match`].
    pub fn engine(&self) -> &Arc<Engine> {
        match &self.engine {
            TenantEngine::Single(engine) => engine,
            TenantEngine::Sharded(_) => {
                panic!("this tenant hosts a sharded engine; use Tenant::sharded")
            }
        }
    }

    /// The hosted [`ShardedEngine`], when this tenant was created with
    /// `shards > 1`; `None` for a plain engine.
    pub fn sharded(&self) -> Option<&Arc<ShardedEngine>> {
        match &self.engine {
            TenantEngine::Single(_) => None,
            TenantEngine::Sharded(sharded) => Some(sharded),
        }
    }

    /// Shards of the hosted engine (`1` for a plain engine).
    pub fn shard_count(&self) -> usize {
        match &self.engine {
            TenantEngine::Single(_) => 1,
            TenantEngine::Sharded(sharded) => sharded.shard_count(),
        }
    }

    /// A cloneable submission handle to this tenant's service.
    pub fn client(&self) -> &ServiceClient {
        &self.client
    }

    /// Build and submit a match request against whichever engine this
    /// tenant hosts — the shard-agnostic submission path the wire layer
    /// uses. Validation, cache consultation and in-flight dedupe all
    /// behave identically for both engine kinds.
    pub fn submit_match(
        &self,
        functions: &FunctionSet,
        algorithm: Algorithm,
        exclude: &[u64],
        capacities: Option<&[u32]>,
        options: SubmitOptions,
    ) -> Result<Ticket, MpqError> {
        match &self.engine {
            TenantEngine::Single(engine) => {
                let mut req = engine
                    .request(functions)
                    .algorithm(algorithm)
                    .exclude(exclude.iter().copied());
                if let Some(caps) = capacities {
                    req = req.capacities(caps);
                }
                self.client.submit_with(req, options)
            }
            TenantEngine::Sharded(sharded) => {
                let mut req = sharded
                    .request(functions)
                    .algorithm(algorithm)
                    .exclude(exclude.iter().copied());
                if let Some(caps) = capacities {
                    req = req.capacities(caps);
                }
                self.client.submit_sharded_with(req, options)
            }
        }
    }

    /// Snapshot of this tenant's service metrics.
    pub fn metrics(&self) -> mpq_core::ServiceMetrics {
        self.service.metrics()
    }

    /// Worker count of this tenant's pool (for `Retry-After` math).
    pub fn workers(&self) -> usize {
        self.service.workers()
    }

    /// The tenant's health monitor (shared with its service, so
    /// `/metrics` and `/healthz` report the same state).
    pub fn health(&self) -> &Arc<HealthMonitor> {
        self.service.health()
    }

    /// Apply a wire mutation to the hosted engine.
    ///
    /// Returns `(oid, inventory_version)` — `oid` only for inserts.
    /// Storage failures ([`MpqError::Io`], [`MpqError::StorageDegraded`])
    /// are reported to the health monitor, and while the tenant is not
    /// healthy further mutations are refused up front with
    /// [`MpqError::StorageDegraded`] so a broken device is not hammered
    /// by every client. Validation errors pass through untouched — they
    /// say nothing about storage.
    pub fn mutate(&self, mutation: &WireMutation) -> Result<(Option<u64>, u64), MpqError> {
        if !self.health().state().is_healthy() {
            return Err(MpqError::StorageDegraded);
        }
        let result = match mutation {
            WireMutation::Insert(point) => self.engine.insert_object(point).map(Some),
            WireMutation::Remove(oid) => self.engine.remove_object(*oid).map(|()| None),
            WireMutation::Update(oid, point) => {
                self.engine.update_object(*oid, point).map(|()| None)
            }
        };
        match result {
            Ok(oid) => {
                self.health().report_success();
                Ok((oid, self.engine.ack_version()))
            }
            Err(e @ (MpqError::Io(_) | MpqError::StorageDegraded)) => {
                let _ = self.health().report_failure();
                Err(e)
            }
            Err(e) => Err(e),
        }
    }
}

/// `true` iff `name` is usable in a route: non-empty ASCII
/// `[A-Za-z0-9_-]`.
pub fn valid_tenant_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
}

/// The set of tenants a server hosts, keyed by route name.
#[derive(Default)]
pub struct TenantRegistry {
    tenants: BTreeMap<String, Arc<Tenant>>,
}

impl TenantRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Host `engine` as tenant `name`, spawning its service.
    ///
    /// Fails with [`MpqError::UnsupportedRequest`] on an invalid or
    /// duplicate name.
    pub fn add_engine(
        &mut self,
        name: &str,
        engine: Arc<Engine>,
        config: TenantConfig,
    ) -> Result<(), MpqError> {
        let service = Arc::clone(&engine).serve(config.service_config());
        self.host(name, TenantEngine::Single(engine), service)
    }

    /// Host a pre-built [`ShardedEngine`] as tenant `name`.
    pub fn add_sharded_engine(
        &mut self,
        name: &str,
        engine: Arc<ShardedEngine>,
        config: TenantConfig,
    ) -> Result<(), MpqError> {
        let service = Arc::clone(&engine).serve(config.service_config());
        self.host(name, TenantEngine::Sharded(engine), service)
    }

    fn host(
        &mut self,
        name: &str,
        engine: TenantEngine,
        service: EngineService,
    ) -> Result<(), MpqError> {
        if !valid_tenant_name(name) {
            return Err(MpqError::UnsupportedRequest(
                "tenant names must be non-empty [A-Za-z0-9_-]",
            ));
        }
        if self.tenants.contains_key(name) {
            return Err(MpqError::UnsupportedRequest("duplicate tenant name"));
        }
        let client = service.client();
        let probe_stop = Arc::new(AtomicBool::new(false));
        let probe_handle = spawn_probe(
            engine.clone(),
            Arc::clone(service.health()),
            Arc::clone(&probe_stop),
        );
        self.tenants.insert(
            name.to_string(),
            Arc::new(Tenant {
                name: name.to_string(),
                engine,
                service,
                client,
                probe_stop,
                probe_handle: Some(probe_handle),
            }),
        );
        Ok(())
    }

    /// Build an in-memory engine over `objects` and host it. With
    /// `config.shards > 1` the engine is a hash-partitioned
    /// [`ShardedEngine`]; `config.shards == 0` is rejected.
    pub fn add_objects(
        &mut self,
        name: &str,
        objects: &PointSet,
        config: TenantConfig,
    ) -> Result<(), MpqError> {
        if config.shards != 1 {
            // 0 is rejected by the builder with a tenant-legible error.
            let engine = Arc::new(
                ShardedEngine::builder()
                    .objects(objects)
                    .shards(config.shards)
                    .build()?,
            );
            return self.add_sharded_engine(name, engine, config);
        }
        let engine = Arc::new(Engine::builder().objects(objects).build()?);
        self.add_engine(name, engine, config)
    }

    /// Host a disk-backed tenant rooted at `data_dir`. If the directory
    /// already holds a persisted inventory it is **reopened** (WAL
    /// replay included — per shard when the directory holds a sharded
    /// layout); otherwise a fresh engine over `objects` is created
    /// there, sharded when `config.shards > 1`. `objects` may be `None`
    /// only when reopening.
    pub fn add_persistent(
        &mut self,
        name: &str,
        objects: Option<&PointSet>,
        data_dir: PathBuf,
        config: TenantConfig,
    ) -> Result<(), MpqError> {
        if ShardedEngine::persisted_at(&data_dir) {
            // An existing sharded layout wins regardless of the
            // configured shard count: the manifest is authoritative.
            let engine = Arc::new(ShardedEngine::open(&data_dir)?);
            return self.add_sharded_engine(name, engine, config);
        }
        if Engine::persisted_at(&data_dir) {
            let engine = Arc::new(Engine::open(&data_dir)?);
            return self.add_engine(name, engine, config);
        }
        let objects = objects.ok_or(MpqError::UnsupportedRequest(
            "no persisted inventory at data_dir and no objects given",
        ))?;
        if config.shards != 1 {
            let engine = Arc::new(
                ShardedEngine::builder()
                    .objects(objects)
                    .shards(config.shards)
                    .data_dir(&data_dir)
                    .build()?,
            );
            return self.add_sharded_engine(name, engine, config);
        }
        let engine = Engine::builder()
            .objects(objects)
            .data_dir(&data_dir)
            .build()?;
        self.add_engine(name, Arc::new(engine), config)
    }

    /// Look up a tenant by name.
    pub fn get(&self, name: &str) -> Option<&Arc<Tenant>> {
        self.tenants.get(name)
    }

    /// The single tenant, if exactly one is hosted — lets clients of a
    /// single-tenant server post to plain `/match` without naming it.
    pub fn sole_tenant(&self) -> Option<&Arc<Tenant>> {
        if self.tenants.len() == 1 {
            self.tenants.values().next()
        } else {
            None
        }
    }

    /// Iterate tenants in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<Tenant>> {
        self.tenants.values()
    }

    /// Number of hosted tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// `true` iff no tenants are hosted.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpq_datagen::WorkloadBuilder;

    fn small_objects() -> PointSet {
        WorkloadBuilder::new()
            .objects(50)
            .functions(4)
            .dim(2)
            .seed(7)
            .build()
            .objects
    }

    #[test]
    fn hosts_tenants_and_routes_by_name() {
        let objects = small_objects();
        let mut reg = TenantRegistry::new();
        reg.add_objects("alpha", &objects, TenantConfig::default())
            .unwrap();
        reg.add_objects("beta", &objects, TenantConfig::default())
            .unwrap();
        assert_eq!(reg.len(), 2);
        assert!(reg.get("alpha").is_some());
        assert!(reg.get("gamma").is_none());
        assert!(reg.sole_tenant().is_none());

        let names: Vec<_> = reg.iter().map(|t| t.name().to_string()).collect();
        assert_eq!(names, ["alpha", "beta"]);
    }

    #[test]
    fn sole_tenant_only_with_exactly_one() {
        let objects = small_objects();
        let mut reg = TenantRegistry::new();
        assert!(reg.sole_tenant().is_none());
        reg.add_objects("only", &objects, TenantConfig::default())
            .unwrap();
        assert_eq!(reg.sole_tenant().unwrap().name(), "only");
    }

    #[test]
    fn rejects_bad_and_duplicate_names() {
        let objects = small_objects();
        let mut reg = TenantRegistry::new();
        for bad in ["", "a b", "x/y", "héllo"] {
            assert!(reg
                .add_objects(bad, &objects, TenantConfig::default())
                .is_err());
        }
        reg.add_objects("dup", &objects, TenantConfig::default())
            .unwrap();
        assert!(reg
            .add_objects("dup", &objects, TenantConfig::default())
            .is_err());
    }

    #[test]
    fn sharded_tenants_serve_and_mutate() {
        let w = WorkloadBuilder::new()
            .objects(60)
            .functions(5)
            .dim(2)
            .seed(11)
            .build();
        let mut reg = TenantRegistry::new();
        let config = TenantConfig {
            shards: 4,
            ..TenantConfig::default()
        };
        reg.add_objects("s", &w.objects, config).unwrap();
        let tenant = reg.get("s").unwrap();
        assert_eq!(tenant.shard_count(), 4);
        assert!(tenant.sharded().is_some());

        // The shard-agnostic submission path resolves to the same
        // matching an unsharded engine would produce.
        let ticket = tenant
            .submit_match(
                &w.functions,
                Algorithm::Sb,
                &[],
                None,
                SubmitOptions::default(),
            )
            .unwrap();
        let sharded = ticket.wait().unwrap();
        let single = Engine::builder().objects(&w.objects).build().unwrap();
        let unsharded = single.request(&w.functions).evaluate().unwrap();
        assert_eq!(sharded.sorted_pairs(), unsharded.sorted_pairs());

        // Mutations route through the partitioner and ack a
        // monotonically advancing version.
        let (oid, v1) = tenant
            .mutate(&WireMutation::Insert(vec![0.4, 0.6]))
            .unwrap();
        let oid = oid.expect("insert acks its oid");
        let (_, v2) = tenant.mutate(&WireMutation::Remove(oid)).unwrap();
        assert!(v2 > v1);
    }

    #[test]
    fn zero_shard_tenants_are_rejected() {
        let objects = small_objects();
        let mut reg = TenantRegistry::new();
        let config = TenantConfig {
            shards: 0,
            ..TenantConfig::default()
        };
        let err = reg.add_objects("z", &objects, config).unwrap_err();
        assert!(matches!(err, MpqError::UnsupportedRequest(_)), "{err:?}");
        assert!(reg.is_empty());
    }

    #[test]
    fn tenant_services_answer_requests() {
        let w = WorkloadBuilder::new()
            .objects(50)
            .functions(4)
            .dim(2)
            .seed(7)
            .build();
        let mut reg = TenantRegistry::new();
        reg.add_objects("t", &w.objects, TenantConfig::default())
            .unwrap();
        let tenant = reg.get("t").unwrap();
        let ticket = tenant
            .client()
            .submit(tenant.engine().request(&w.functions))
            .unwrap();
        let m = ticket.wait().unwrap();
        assert_eq!(m.len(), 4);
    }
}
