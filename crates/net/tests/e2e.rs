//! End-to-end: real sockets against a two-tenant server.
//!
//! The acceptance bar of the networking PR lives here:
//!
//! * N concurrent HTTP clients get matchings **bit-identical** to
//!   direct `Engine::evaluate` on the same engine,
//! * a full queue answers `429` with a `Retry-After` header,
//! * a saturated tenant does not disturb an idle tenant (isolation),
//! * deadlines map to `504`, unknown tenants to `404`, and a client
//!   that hangs up gets its queued request cancelled.

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use mpq_core::json::Json;
use mpq_datagen::WorkloadBuilder;
use mpq_net::{
    decode_pairs, HttpClient, ParserLimits, Server, ServerConfig, TenantConfig, TenantRegistry,
};
use mpq_ta::FunctionSet;

/// Render a FunctionSet as the wire `functions` field. JSON numbers
/// round-trip f64 exactly (shortest-form rendering), so the server
/// rebuilds a bit-identical FunctionSet from this.
fn functions_json(fs: &FunctionSet) -> String {
    let rows: Vec<Json> = (0..fs.len() as u32)
        .map(|fid| Json::Arr(fs.weights(fid).iter().map(|w| Json::Num(*w)).collect()))
        .collect();
    Json::Arr(rows).render()
}

fn match_body(fs: &FunctionSet) -> String {
    format!(r#"{{"functions":{}}}"#, functions_json(fs))
}

/// Deterministic raw (un-normalized) weight rows via xorshift — the
/// common input both the wire path and the direct path normalize.
fn raw_rows(dim: usize, n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| (0..dim).map(|_| 0.05 + next()).collect())
        .collect()
}

fn rows_json(rows: &[Vec<f64>]) -> String {
    Json::Arr(
        rows.iter()
            .map(|r| Json::Arr(r.iter().map(|w| Json::Num(*w)).collect()))
            .collect(),
    )
    .render()
}

/// Poll a tenant's `/metrics` until `pred` holds (or panic after 10s).
fn wait_for_metrics(
    addr: std::net::SocketAddr,
    tenant: &str,
    what: &str,
    pred: impl Fn(&Json) -> bool,
) {
    let mut client = HttpClient::connect(addr).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let resp = client.get(&format!("/t/{tenant}/metrics")).unwrap();
        assert_eq!(resp.status, 200);
        let metrics = Json::parse(&resp.text()).unwrap();
        if pred(&metrics) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}; last metrics: {}",
            metrics.render()
        );
        thread::sleep(Duration::from_millis(10));
    }
}

fn metric(m: &Json, key: &str) -> f64 {
    m.get(key).and_then(|v| v.as_f64()).unwrap_or(f64::NAN)
}

#[test]
fn concurrent_clients_get_bit_identical_matchings() {
    let alpha = WorkloadBuilder::new()
        .objects(800)
        .functions(1)
        .dim(2)
        .seed(11)
        .build();
    let beta = WorkloadBuilder::new()
        .objects(600)
        .functions(1)
        .dim(3)
        .seed(22)
        .build();

    let mut registry = TenantRegistry::new();
    registry
        .add_objects("alpha", &alpha.objects, TenantConfig::default())
        .unwrap();
    registry
        .add_objects("beta", &beta.objects, TenantConfig::default())
        .unwrap();
    let server = Server::bind("127.0.0.1:0", registry, ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    // Direct ground truth per (tenant, seed): same engines the server
    // hosts, evaluated without the wire in between. Both paths start
    // from the same *raw* weight rows — the server normalizes them
    // exactly like `FunctionSet::try_from_rows` does locally, and JSON
    // numbers round-trip f64 bits, so the results must be bit-equal.
    let server = Arc::new(server);
    let n_clients = 8;
    let requests_per_client = 3;
    let mut handles = Vec::new();
    for c in 0..n_clients {
        let server = Arc::clone(&server);
        handles.push(thread::spawn(move || {
            let mut client = HttpClient::connect(addr).unwrap();
            for r in 0..requests_per_client {
                let (tenant, dim) = if (c + r) % 2 == 0 {
                    ("alpha", 2)
                } else {
                    ("beta", 3)
                };
                let rows = raw_rows(dim, 6, 1000 + (c * 31 + r) as u64);
                let body = format!(r#"{{"functions":{}}}"#, rows_json(&rows));
                let resp = client
                    .post_json(&format!("/t/{tenant}/match"), &body)
                    .unwrap();
                assert_eq!(resp.status, 200, "body: {}", resp.text());
                let wire_pairs = decode_pairs(&resp.body).unwrap();

                let fs = FunctionSet::try_from_rows(dim, &rows).unwrap();
                let engine = server.registry().get(tenant).unwrap().engine();
                let direct = engine.request(&fs).evaluate().unwrap();
                assert_eq!(wire_pairs.len(), direct.len());
                for (w, d) in wire_pairs.iter().zip(direct.pairs()) {
                    assert_eq!(w.fid, d.fid);
                    assert_eq!(w.oid, d.oid);
                    assert_eq!(
                        w.score.to_bits(),
                        d.score.to_bits(),
                        "score drifted across the wire"
                    );
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn routing_health_and_metrics_endpoints() {
    let w = WorkloadBuilder::new()
        .objects(200)
        .functions(4)
        .dim(2)
        .seed(5)
        .build();
    let mut registry = TenantRegistry::new();
    registry
        .add_objects("solo", &w.objects, TenantConfig::default())
        .unwrap();
    let server = Server::bind("127.0.0.1:0", registry, ServerConfig::default()).unwrap();
    let mut client = HttpClient::connect(server.local_addr()).unwrap();

    let resp = client.get("/healthz").unwrap();
    assert_eq!(resp.status, 200);
    let health = Json::parse(&resp.text()).unwrap();
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(
        health
            .get("tenants")
            .and_then(|t| t.get("solo"))
            .and_then(Json::as_str),
        Some("healthy")
    );

    // Sole tenant: plain /match routes without a name.
    let resp = client
        .post_json("/match", &match_body(&w.functions))
        .unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(decode_pairs(&resp.body).unwrap().len(), 4);

    // Header routing works too.
    let resp = client
        .request(
            "POST",
            "/match",
            &[
                ("X-Mpq-Tenant", "solo"),
                ("Content-Type", "application/json"),
            ],
            match_body(&w.functions).as_bytes(),
        )
        .unwrap();
    assert_eq!(resp.status, 200);

    // Unknown tenant and unknown routes are 404; bad method is 405.
    assert_eq!(
        client.post_json("/t/ghost/match", "{}").unwrap().status,
        404
    );
    assert_eq!(client.get("/nope").unwrap().status, 404);
    assert_eq!(
        client
            .request("DELETE", "/healthz", &[], b"")
            .unwrap()
            .status,
        405
    );

    // Malformed body is a 400 with a reason.
    let resp = client
        .post_json("/t/solo/match", "{\"functions\":[]}")
        .unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.text().contains("must not be empty"));

    // Aggregate metrics parse and contain the tenant with pinned gauges.
    let resp = client.get("/metrics").unwrap();
    assert_eq!(resp.status, 200);
    let doc = Json::parse(&resp.text()).unwrap();
    assert_eq!(doc.get("schema").unwrap().as_str(), Some("mpq.metrics/1"));
    let solo = doc.get("tenants").unwrap().get("solo").unwrap();
    assert!(metric(solo, "completed") >= 2.0);
    assert!(metric(solo, "workers") >= 1.0);

    server.shutdown();
}

/// A "slow" tenant: one worker, cache off, a sizeable brute-force
/// evaluation per request so the worker stays busy long enough to
/// observe queueing deterministically (we poll `/metrics` rather than
/// sleep).
fn slow_tenant_registry(queue_cap: usize) -> (TenantRegistry, FunctionSet) {
    let w = WorkloadBuilder::new()
        .objects(60_000)
        .functions(600)
        .dim(3)
        .seed(77)
        .build();
    let mut registry = TenantRegistry::new();
    registry
        .add_objects(
            "slow",
            &w.objects,
            TenantConfig {
                workers: 1,
                queue_capacity: queue_cap,
                cache_capacity: 0, // identical requests must not short-circuit
                ..TenantConfig::default()
            },
        )
        .unwrap();
    (registry, w.functions)
}

fn slow_body(fs: &FunctionSet, salt: u64) -> String {
    // Distinct `exclude` per request keeps in-flight dedupe from
    // collapsing the flood into one evaluation.
    format!(
        r#"{{"functions":{},"algorithm":"bf","exclude":[{salt}]}}"#,
        functions_json(fs)
    )
}

#[test]
fn full_queue_answers_429_with_retry_after() {
    let (registry, fs) = slow_tenant_registry(2);
    let server = Server::bind("127.0.0.1:0", registry, ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    // Occupy the single worker...
    let mut occupier = HttpClient::connect(addr).unwrap();
    occupier
        .fire_and_forget("POST", "/t/slow/match", slow_body(&fs, 1).as_bytes())
        .unwrap();
    wait_for_metrics(addr, "slow", "worker busy", |m| {
        metric(m, "in_flight") >= 1.0
    });

    // ...fill the queue...
    let mut fillers = Vec::new();
    for salt in 2..4u64 {
        let mut filler = HttpClient::connect(addr).unwrap();
        filler
            .fire_and_forget("POST", "/t/slow/match", slow_body(&fs, salt).as_bytes())
            .unwrap();
        fillers.push(filler);
    }
    wait_for_metrics(addr, "slow", "queue full", |m| {
        metric(m, "queue_depth") >= 2.0
    });

    // ...and the next submission is shed, not parked.
    let mut client = HttpClient::connect(addr).unwrap();
    let t = Instant::now();
    let resp = client
        .post_json("/t/slow/match", &slow_body(&fs, 99))
        .unwrap();
    assert_eq!(resp.status, 429, "body: {}", resp.text());
    let retry_after: u64 = resp
        .header("retry-after")
        .expect("429 carries Retry-After")
        .parse()
        .expect("Retry-After is integral seconds");
    assert!((1..=30).contains(&retry_after));
    // Shedding is immediate — it must not wait on the busy worker.
    assert!(t.elapsed() < Duration::from_secs(2));

    server.shutdown();
}

#[test]
fn queued_deadline_maps_to_504() {
    let (registry, fs) = slow_tenant_registry(8);
    let server = Server::bind("127.0.0.1:0", registry, ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    let mut occupier = HttpClient::connect(addr).unwrap();
    occupier
        .fire_and_forget("POST", "/t/slow/match", slow_body(&fs, 1).as_bytes())
        .unwrap();
    wait_for_metrics(addr, "slow", "worker busy", |m| {
        metric(m, "in_flight") >= 1.0
    });

    // With the worker occupied, a 1ms queueing deadline cannot be met.
    let mut client = HttpClient::connect(addr).unwrap();
    let body = format!(
        r#"{{"functions":{},"algorithm":"bf","exclude":[50],"deadline_ms":1}}"#,
        functions_json(&fs)
    );
    let resp = client.post_json("/t/slow/match", &body).unwrap();
    assert_eq!(resp.status, 504, "body: {}", resp.text());

    server.shutdown();
}

#[test]
fn disconnected_client_gets_cancelled() {
    let (registry, fs) = slow_tenant_registry(8);
    let server = Server::bind("127.0.0.1:0", registry, ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    let mut occupier = HttpClient::connect(addr).unwrap();
    occupier
        .fire_and_forget("POST", "/t/slow/match", slow_body(&fs, 1).as_bytes())
        .unwrap();
    wait_for_metrics(addr, "slow", "worker busy", |m| {
        metric(m, "in_flight") >= 1.0
    });

    // Queue a request, then vanish without reading the response.
    {
        let mut quitter = HttpClient::connect(addr).unwrap();
        quitter
            .fire_and_forget("POST", "/t/slow/match", slow_body(&fs, 2).as_bytes())
            .unwrap();
        wait_for_metrics(addr, "slow", "request queued", |m| {
            metric(m, "queue_depth") >= 1.0
        });
    } // drop = TCP close

    wait_for_metrics(addr, "slow", "cancellation observed", |m| {
        metric(m, "cancelled") >= 1.0
    });

    server.shutdown();
}

/// Saturating tenant `noisy` must not disturb tenant `quiet`: quiet's
/// requests keep answering `200` promptly while noisy's queue sheds
/// load. (Quiet's p99 asserts a generous absolute bound so the test is
/// robust on a single-core CI runner, where *some* CPU interference is
/// physical reality rather than an isolation bug.)
#[test]
fn saturating_one_tenant_leaves_the_other_responsive() {
    let noisy = WorkloadBuilder::new()
        .objects(4000)
        .functions(48)
        .dim(3)
        .seed(77)
        .build();
    let quiet = WorkloadBuilder::new()
        .objects(400)
        .functions(4)
        .dim(2)
        .seed(88)
        .build();

    let mut registry = TenantRegistry::new();
    registry
        .add_objects(
            "noisy",
            &noisy.objects,
            TenantConfig {
                workers: 1,
                queue_capacity: 2,
                cache_capacity: 0,
                ..TenantConfig::default()
            },
        )
        .unwrap();
    // Quiet keeps its cache: its repeated probe is the cache-hit fast
    // path, exactly how a healthy tenant rides out a noisy neighbour.
    registry
        .add_objects("quiet", &quiet.objects, TenantConfig::default())
        .unwrap();
    let server = Server::bind("127.0.0.1:0", registry, ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    // Warm quiet's cache once.
    let mut probe = HttpClient::connect(addr).unwrap();
    let quiet_body = match_body(&quiet.functions);
    assert_eq!(
        probe
            .post_json("/t/quiet/match", &quiet_body)
            .unwrap()
            .status,
        200
    );

    // Flood noisy from 4 threads for a fixed wall-clock budget.
    let stop_at = Instant::now() + Duration::from_secs(2);
    let mut floods = Vec::new();
    let noisy_fs = Arc::new(noisy.functions);
    for t in 0..4u64 {
        let noisy_fs = Arc::clone(&noisy_fs);
        floods.push(thread::spawn(move || {
            let mut shed = 0u64;
            let mut salt = t * 1_000_000;
            let mut client = HttpClient::connect(addr).unwrap();
            while Instant::now() < stop_at {
                salt += 1;
                match client.post_json("/t/noisy/match", &slow_body(&noisy_fs, salt)) {
                    Ok(resp) if resp.status == 429 => shed += 1,
                    Ok(_) => {}
                    Err(_) => break,
                }
            }
            shed
        }));
    }

    // Meanwhile quiet serves its (cached) request steadily.
    let mut quiet_latencies = Vec::new();
    while Instant::now() < stop_at {
        let t = Instant::now();
        let resp = probe.post_json("/t/quiet/match", &quiet_body).unwrap();
        assert_eq!(resp.status, 200, "quiet tenant must never be shed");
        quiet_latencies.push(t.elapsed());
        thread::sleep(Duration::from_millis(20));
    }
    let shed: u64 = floods.into_iter().map(|h| h.join().unwrap()).sum();

    assert!(
        shed > 0,
        "the noisy tenant was never saturated — flood too weak"
    );
    quiet_latencies.sort();
    let p99 = quiet_latencies[(quiet_latencies.len() * 99 / 100).min(quiet_latencies.len() - 1)];
    assert!(
        p99 < Duration::from_secs(2),
        "quiet tenant p99 {p99:?} — isolation failed"
    );

    server.shutdown();
}

#[test]
fn oversized_and_malformed_requests_close_cleanly() {
    let w = WorkloadBuilder::new()
        .objects(100)
        .functions(2)
        .dim(2)
        .seed(9)
        .build();
    let mut registry = TenantRegistry::new();
    registry
        .add_objects("t", &w.objects, TenantConfig::default())
        .unwrap();
    let config = ServerConfig {
        limits: ParserLimits {
            max_head_bytes: 512,
            max_body_bytes: 2048,
        },
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", registry, config).unwrap();
    let addr = server.local_addr();

    // Oversized declared body → 413.
    let mut client = HttpClient::connect(addr).unwrap();
    let resp = client
        .request("POST", "/t/t/match", &[], &vec![b'x'; 4096])
        .unwrap();
    assert_eq!(resp.status, 413);

    // Oversized headers → 431.
    let mut client = HttpClient::connect(addr).unwrap();
    let resp = client
        .request("GET", "/healthz", &[("X-Big", &"y".repeat(1024))], b"")
        .unwrap();
    assert_eq!(resp.status, 431);

    // Garbage request line → 400, connection closed after the answer.
    let mut client = HttpClient::connect(addr).unwrap();
    let resp = client.request("WHAT EVEN", "/x", &[], b"").unwrap();
    assert_eq!(resp.status, 400);

    // The server survives all of that and still answers.
    let mut client = HttpClient::connect(addr).unwrap();
    assert_eq!(client.get("/healthz").unwrap().status, 200);

    server.shutdown();
}

/// A refinement over the wire — the same functions with one more
/// excluded object — must be served *seeded* from the cached donor
/// (visible in `/metrics`) and stay bit-identical to a direct cold
/// evaluation of the refined request.
#[test]
fn near_miss_refinement_over_the_wire_is_seeded_and_identical() {
    let w = WorkloadBuilder::new()
        .objects(400)
        .functions(6)
        .dim(2)
        .seed(77)
        .build();
    let mut registry = TenantRegistry::new();
    registry
        .add_objects("solo", &w.objects, TenantConfig::default())
        .unwrap();
    let server = Server::bind("127.0.0.1:0", registry, ServerConfig::default()).unwrap();
    let mut client = HttpClient::connect(server.local_addr()).unwrap();

    // Warm the cache with the unrefined request.
    let resp = client
        .post_json("/t/solo/match", &match_body(&w.functions))
        .unwrap();
    assert_eq!(resp.status, 200);

    // One flipped exclusion: an exact miss, but a near miss at delta 1.
    let body = format!(
        r#"{{"functions":{},"exclude":[9]}}"#,
        functions_json(&w.functions)
    );
    let resp = client.post_json("/t/solo/match", &body).unwrap();
    assert_eq!(resp.status, 200);
    let wire_pairs = decode_pairs(&resp.body).unwrap();

    let engine = server.registry().get("solo").unwrap().engine();
    let direct = engine
        .request(&w.functions)
        .exclude([9u64])
        .evaluate()
        .unwrap();
    assert_eq!(wire_pairs.len(), direct.len());
    for (a, b) in wire_pairs.iter().zip(direct.pairs()) {
        assert_eq!(a.fid, b.fid);
        assert_eq!(a.oid, b.oid);
        assert_eq!(
            a.score.to_bits(),
            b.score.to_bits(),
            "seeded wire result drifted from cold"
        );
    }

    let resp = client.get("/t/solo/metrics").unwrap();
    assert_eq!(resp.status, 200);
    let doc = Json::parse(&resp.text()).unwrap();
    let cache = doc.get("cache").expect("metrics carry the cache block");
    assert_eq!(metric(cache, "seeded_hits"), 1.0);
    assert_eq!(metric(cache, "seed_delta"), 1.0);

    server.shutdown();
}
