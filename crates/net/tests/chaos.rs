//! Network chaos: misbehaving peers and failing storage against a live
//! server.
//!
//! * a slow-loris peer (bytes trickling in forever) is answered `408`
//!   and reaped, so it cannot pin a connection slot,
//! * disconnects mid-body and mid-response neither wedge the
//!   connection slot nor the server,
//! * a tenant whose storage fails degrades gracefully end-to-end:
//!   mutations get `503` + `Retry-After`, reads keep serving, `/healthz`
//!   and `/metrics` report the state, and the recovery probe restores
//!   `healthy` without operator action,
//! * [`HttpClient::send_with_retry`] rides out a flooded queue.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use mpq_core::json::Json;
use mpq_core::Engine;
use mpq_datagen::WorkloadBuilder;
use mpq_net::{HttpClient, RetryPolicy, Server, ServerConfig, TenantConfig, TenantRegistry};
use mpq_rtree::{FaultInjector, FaultKind, FaultOp};
use mpq_ta::FunctionSet;

fn tmp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "mpq_netchaos_{tag}_{}_{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn functions_json(fs: &FunctionSet) -> String {
    let rows: Vec<Json> = (0..fs.len() as u32)
        .map(|fid| Json::Arr(fs.weights(fid).iter().map(|w| Json::Num(*w)).collect()))
        .collect();
    Json::Arr(rows).render()
}

fn match_body(fs: &FunctionSet) -> String {
    format!(r#"{{"functions":{}}}"#, functions_json(fs))
}

/// A server whose only tenant serves `w`; short poll interval so reap
/// and disconnect detection are fast enough to assert on.
fn chaos_config() -> ServerConfig {
    ServerConfig {
        request_read_timeout: Duration::from_millis(200),
        poll_interval: Duration::from_millis(5),
        ..ServerConfig::default()
    }
}

#[test]
fn slow_loris_is_answered_408_and_reaped() {
    let w = WorkloadBuilder::new()
        .objects(40)
        .functions(3)
        .dim(2)
        .seed(1)
        .build();
    let mut registry = TenantRegistry::new();
    registry
        .add_objects("t", &w.objects, TenantConfig::default())
        .unwrap();
    let config = ServerConfig {
        max_connections: 1,
        ..chaos_config()
    };
    let server = Server::bind("127.0.0.1:0", registry, config).unwrap();
    let addr = server.local_addr();

    // The loris takes the only slot and trickles an unfinishable head.
    let mut loris = TcpStream::connect(addr).unwrap();
    loris
        .write_all(b"POST /match HTTP/1.1\r\nHost: x\r\n")
        .unwrap();
    let started = Instant::now();
    let trickler = {
        let mut loris = loris.try_clone().unwrap();
        thread::spawn(move || {
            // One header byte per 50 ms, forever (until the server
            // closes on us). Each byte resets any naive idle clock.
            for b in b"X-Slow: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
                .iter()
                .cycle()
            {
                if loris.write_all(&[*b]).is_err() {
                    return;
                }
                thread::sleep(Duration::from_millis(50));
            }
        })
    };

    // While the loris holds the slot, other connections are shed.
    {
        let mut probe = TcpStream::connect(addr).unwrap();
        let mut resp = Vec::new();
        probe.read_to_end(&mut resp).unwrap();
        let resp = String::from_utf8_lossy(&resp).into_owned();
        assert!(
            resp.starts_with("HTTP/1.1 503"),
            "expected shed, got {resp:?}"
        );
    }

    // The loris gets 408 and EOF within the read-timeout bound.
    loris
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut resp = Vec::new();
    loris.read_to_end(&mut resp).unwrap();
    let resp = String::from_utf8_lossy(&resp).into_owned();
    assert!(resp.starts_with("HTTP/1.1 408"), "got {resp:?}");
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "reap took {:?}",
        started.elapsed()
    );
    trickler.join().unwrap();

    // The slot is free again: a real client gets real service.
    let mut client = HttpClient::connect(addr).unwrap();
    let resp = client
        .post_json("/match", &match_body(&w.functions))
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    server.shutdown();
}

#[test]
fn mid_body_disconnect_frees_the_slot() {
    let w = WorkloadBuilder::new()
        .objects(40)
        .functions(3)
        .dim(2)
        .seed(2)
        .build();
    let mut registry = TenantRegistry::new();
    registry
        .add_objects("t", &w.objects, TenantConfig::default())
        .unwrap();
    let config = ServerConfig {
        max_connections: 1,
        ..chaos_config()
    };
    let server = Server::bind("127.0.0.1:0", registry, config).unwrap();
    let addr = server.local_addr();

    // Declare a 100-byte body, send 10 bytes, vanish.
    {
        let mut half = TcpStream::connect(addr).unwrap();
        half.write_all(
            b"POST /match HTTP/1.1\r\nHost: x\r\nContent-Length: 100\r\n\r\n{\"functions",
        )
        .unwrap();
    } // dropped: FIN mid-body

    // The slot must come back without waiting out any keep-alive or
    // request timeout (the server sees EOF, not silence).
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let mut client = match HttpClient::connect(addr) {
            Ok(c) => c,
            Err(_) => {
                assert!(Instant::now() < deadline, "slot never freed");
                thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        match client.post_json("/match", &match_body(&w.functions)) {
            Ok(resp) if resp.status == 200 => break,
            Ok(resp) => assert_eq!(resp.status, 503, "unexpected {}", resp.text()),
            Err(_) => {} // shed inline before our request: retry
        }
        assert!(Instant::now() < deadline, "slot never freed");
        thread::sleep(Duration::from_millis(10));
    }
    server.shutdown();
}

#[test]
fn peer_reset_mid_response_does_not_kill_the_server() {
    let w = WorkloadBuilder::new()
        .objects(60)
        .functions(4)
        .dim(2)
        .seed(3)
        .build();
    let mut registry = TenantRegistry::new();
    registry
        .add_objects("t", &w.objects, TenantConfig::default())
        .unwrap();
    let server = Server::bind("127.0.0.1:0", registry, chaos_config()).unwrap();
    let addr = server.local_addr();

    // Fire requests and hang up before reading the responses — some
    // die queued (cancelled), some die while the response is being
    // written (reset under the server's pen).
    for _ in 0..8 {
        let mut client = HttpClient::connect(addr).unwrap();
        client
            .fire_and_forget("POST", "/match", match_body(&w.functions).as_bytes())
            .unwrap();
        // drop without reading
    }

    // The server shrugs: a polite client still gets a full answer.
    let mut client = HttpClient::connect(addr).unwrap();
    let resp = client
        .post_json("/match", &match_body(&w.functions))
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    server.shutdown();
}

#[test]
fn storage_failure_degrades_gracefully_end_to_end() {
    let w = WorkloadBuilder::new()
        .objects(80)
        .functions(5)
        .dim(2)
        .seed(4)
        .build();
    let dir = tmp_dir("degraded");
    let inj = FaultInjector::shared();
    let engine = Engine::builder()
        .objects(&w.objects)
        .data_dir(&dir)
        .fault_injector(Arc::clone(&inj))
        .build()
        .unwrap();
    let mut registry = TenantRegistry::new();
    registry
        .add_engine("t", Arc::new(engine), TenantConfig::default())
        .unwrap();
    let server = Server::bind("127.0.0.1:0", registry, chaos_config()).unwrap();
    let addr = server.local_addr();
    let mut client = HttpClient::connect(addr).unwrap();

    // Healthy: mutations commit and are acked with the new version.
    let resp = client
        .post_json("/t/t/mutate", r#"{"op":"insert","point":[0.5,0.5]}"#)
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    let ack = Json::parse(&resp.text()).unwrap();
    assert!(ack.get("oid").is_some(), "{}", resp.text());
    let resp = client.get("/healthz").unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.text().contains(r#""t":"healthy""#), "{}", resp.text());

    // Break the WAL so the next commit fails AND cannot roll back: the
    // engine wedges, the tenant degrades.
    inj.fail_nth(FaultOp::WalSync, 0, FaultKind::Error);
    inj.fail_nth(FaultOp::WalRollback, 0, FaultKind::Error);
    let resp = client
        .post_json("/t/t/mutate", r#"{"op":"insert","point":[0.6,0.6]}"#)
        .unwrap();
    assert_eq!(resp.status, 503, "{}", resp.text());
    let retry_after: u64 = resp
        .header("retry-after")
        .expect("503 must carry Retry-After")
        .parse()
        .unwrap();
    assert!((1..=30).contains(&retry_after));

    // Degraded is a refusal state, not an error state: the next
    // mutation is turned away up front.
    let resp = client
        .post_json("/t/t/mutate", r#"{"op":"remove","oid":0}"#)
        .unwrap();
    assert_eq!(resp.status, 503, "{}", resp.text());
    assert!(resp.text().contains("degraded"), "{}", resp.text());

    // Reads keep serving from the pinned snapshot…
    let resp = client
        .post_json("/t/t/match", &match_body(&w.functions))
        .unwrap();
    assert_eq!(
        resp.status,
        200,
        "reads must survive degradation: {}",
        resp.text()
    );

    // …and both health surfaces report the truth. (The recovery probe
    // may already have repaired the tenant by the time we look — only
    // assert degradation if it is still in effect, via /metrics.)
    let resp = client.get("/t/t/metrics").unwrap();
    let health = Json::parse(&resp.text())
        .unwrap()
        .get("health")
        .and_then(|h| h.as_str().map(str::to_string))
        .expect("metrics carry health");
    assert!(health == "degraded" || health == "healthy", "{health}");

    // The probe (checkpoint with backoff) restores healthy service
    // without any operator action.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let resp = client.get("/healthz").unwrap();
        assert_eq!(resp.status, 200, "healthz stays 200 throughout");
        if resp.text().contains(r#""t":"healthy""#) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "probe never recovered: {}",
            resp.text()
        );
        thread::sleep(Duration::from_millis(20));
    }
    let resp = client
        .post_json("/t/t/mutate", r#"{"op":"insert","point":[0.6,0.6]}"#)
        .unwrap();
    assert_eq!(
        resp.status,
        200,
        "recovered tenant accepts mutations: {}",
        resp.text()
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn send_with_retry_rides_out_a_flooded_queue() {
    let w = WorkloadBuilder::new()
        .objects(600)
        .functions(6)
        .dim(2)
        .seed(5)
        .build();
    let inj = FaultInjector::shared();
    // Every page read stalls 3 ms and the buffer holds one page, so
    // each queued evaluation occupies the single worker long enough to
    // observe the full queue deterministically.
    let engine = Engine::builder()
        .objects(&w.objects)
        .index(mpq_core::IndexConfig {
            page_size: 512,
            buffer_fraction: 0.0,
            min_buffer_pages: 1,
        })
        .fault_injector(Arc::clone(&inj))
        .build()
        .unwrap();
    let engine = Arc::new(engine);
    let mut registry = TenantRegistry::new();
    registry
        .add_engine(
            "t",
            Arc::clone(&engine),
            TenantConfig {
                workers: 1,
                queue_capacity: 1,
                cache_capacity: 0, // no cache: each request really evaluates
                ..TenantConfig::default()
            },
        )
        .unwrap();
    let server = Server::bind("127.0.0.1:0", registry, chaos_config()).unwrap();
    let addr = server.local_addr();
    inj.fail_from(
        FaultOp::PageRead,
        0,
        FaultKind::Delay(Duration::from_millis(3)),
    );

    // Fill the worker and the queue slot with distinct slow requests.
    let tenant = Arc::clone(server.registry().get("t").unwrap());
    let t1 = tenant
        .client()
        .submit(engine.request(&w.functions))
        .unwrap();
    // Wait for the worker to pick t1 up so the queue slot is free for
    // t2 (queue_capacity is 1).
    let deadline = Instant::now() + Duration::from_secs(5);
    while tenant.client().queue_depth() > 0 {
        assert!(Instant::now() < deadline, "worker never picked up t1");
        thread::sleep(Duration::from_millis(1));
    }
    let rows: Vec<Vec<f64>> = vec![vec![0.9, 0.1], vec![0.2, 0.8]];
    let other = FunctionSet::from_rows(2, &rows);
    let t2 = tenant.client().submit(engine.request(&other)).unwrap();

    // A plain request bounces: the queue is full right now.
    let mut plain = HttpClient::connect(addr).unwrap();
    let rows: Vec<Vec<f64>> = vec![vec![0.5, 0.5]];
    let mine = FunctionSet::from_rows(2, &rows);
    let resp = plain.post_json("/t/t/match", &match_body(&mine)).unwrap();
    assert_eq!(resp.status, 429, "{}", resp.text());
    assert!(resp.header("retry-after").is_some());

    // Lift the slowdown: the flood drains at normal speed from here,
    // bounding the test while the retry loop does its job.
    inj.clear();

    // The retrying client keeps backing off until the flood drains,
    // then gets its matching.
    let body = match_body(&mine);
    let resp = plain
        .send_with_retry(
            "POST",
            "/t/t/match",
            &[("Content-Type", "application/json")],
            body.as_bytes(),
            RetryPolicy {
                attempts: 40,
                base_backoff: Duration::from_millis(20),
                max_backoff: Duration::from_millis(200),
            },
        )
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());

    t1.wait().unwrap();
    t2.wait().unwrap();
    // The flood really produced rejections (the 429s the retry rode out).
    let metrics = tenant.metrics();
    assert!(
        metrics.rejected >= 1,
        "expected rejections, got {metrics:?}"
    );
    inj.clear();
    server.shutdown();
}
