//! Property tests for the incremental HTTP parser: no input — however
//! malformed, oversized or adversarially fragmented — may panic it, and
//! split position must never change the outcome.

use proptest::prelude::*;

use mpq_net::{HttpError, ParserLimits, RequestParser};

fn small_limits() -> ParserLimits {
    ParserLimits {
        max_head_bytes: 512,
        max_body_bytes: 1024,
    }
}

/// Run the parser over `raw` split into the given chunk sizes,
/// returning either the parsed request count or the first error.
fn drive(raw: &[u8], cuts: &[usize]) -> Result<usize, HttpError> {
    let mut parser = RequestParser::new(small_limits());
    let mut taken = 0usize;
    let mut offset = 0usize;
    for &cut in cuts {
        let end = (offset + cut.max(1)).min(raw.len());
        parser.feed(&raw[offset..end])?;
        while parser.take_request().is_some() {
            taken += 1;
        }
        offset = end;
        if offset == raw.len() {
            break;
        }
    }
    if offset < raw.len() {
        parser.feed(&raw[offset..])?;
        while parser.take_request().is_some() {
            taken += 1;
        }
    }
    Ok(taken)
}

/// A canonical well-formed request with the given body.
fn well_formed(path_tail: u32, body: &[u8]) -> Vec<u8> {
    let mut raw = format!(
        "POST /t/x{path_tail}/match HTTP/1.1\r\nHost: h\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    raw.extend_from_slice(body);
    raw
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Splitting a valid request at ANY set of byte boundaries yields
    /// exactly one request, never an error.
    #[test]
    fn split_position_is_invisible(
        tail in 0u32..1000,
        body in proptest::collection::vec(any::<u8>(), 0..200),
        cuts in proptest::collection::vec(1usize..64, 0..32),
    ) {
        let raw = well_formed(tail, &body);
        prop_assert_eq!(drive(&raw, &cuts), Ok(1));
    }

    /// Two pipelined requests parse as two, under arbitrary splits.
    #[test]
    fn pipelining_survives_fragmentation(
        body in proptest::collection::vec(any::<u8>(), 0..100),
        cuts in proptest::collection::vec(1usize..48, 0..48),
    ) {
        let mut raw = well_formed(1, &body);
        raw.extend_from_slice(&well_formed(2, &body));
        prop_assert_eq!(drive(&raw, &cuts), Ok(2));
    }

    /// Arbitrary bytes never panic the parser; any reported error is
    /// one of the three typed variants with the right status code.
    #[test]
    fn garbage_never_panics(
        raw in proptest::collection::vec(any::<u8>(), 0..2048),
        cuts in proptest::collection::vec(1usize..128, 0..64),
    ) {
        match drive(&raw, &cuts) {
            Ok(_) => {}
            Err(e) => {
                prop_assert!(matches!(e.status(), 400 | 413 | 431));
            }
        }
    }

    /// Mutating one byte of a valid request never panics, and any
    /// failure is a clean typed error.
    #[test]
    fn single_byte_corruption_is_handled(
        pos_seed in 0usize..10_000,
        byte in any::<u8>(),
        cuts in proptest::collection::vec(1usize..32, 0..16),
    ) {
        let mut raw = well_formed(7, b"{\"functions\":[[1.0]]}");
        let pos = pos_seed % raw.len();
        raw[pos] = byte;
        match drive(&raw, &cuts) {
            Ok(n) => prop_assert!(n <= 1),
            Err(e) => prop_assert!(matches!(e.status(), 400 | 413 | 431)),
        }
    }

    /// A head that never terminates trips the 431 limit regardless of
    /// how the bytes arrive.
    #[test]
    fn unterminated_heads_hit_the_limit(
        filler in proptest::collection::vec(97u8..123, 1..64),
        cuts in proptest::collection::vec(1usize..64, 0..8),
    ) {
        // Build > max_head_bytes of endless header bytes with no blank line.
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        while raw.len() <= 600 {
            raw.extend_from_slice(b"X-Filler: ");
            raw.extend_from_slice(&filler);
            raw.extend_from_slice(b"\r\n");
        }
        prop_assert_eq!(drive(&raw, &cuts), Err(HttpError::HeadersTooLarge));
    }

    /// Oversized declared bodies are refused at the header, before any
    /// body bytes are buffered.
    #[test]
    fn oversized_bodies_are_413(
        extra in 1usize..10_000,
        cuts in proptest::collection::vec(1usize..64, 0..8),
    ) {
        let raw = format!(
            "POST /match HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            1024 + extra
        );
        prop_assert_eq!(drive(raw.as_bytes(), &cuts), Err(HttpError::BodyTooLarge));
    }
}

/// Exhaustive (not sampled) split sweep for one canonical request:
/// every single split point, byte by byte.
#[test]
fn every_single_split_point_parses() {
    let body = br#"{"functions":[[0.5,0.5]],"priority":1}"#;
    let raw = well_formed(3, body);
    for cut in 0..=raw.len() {
        let mut parser = RequestParser::new(small_limits());
        parser.feed(&raw[..cut]).unwrap();
        parser.feed(&raw[cut..]).unwrap();
        let req = parser
            .take_request()
            .unwrap_or_else(|| panic!("no request at split {cut}"));
        assert_eq!(req.path, "/t/x3/match");
        assert_eq!(req.body, body);
        assert!(parser.take_request().is_none());
    }
}

/// Errors are sticky: after a failure every further feed fails with the
/// same typed error.
#[test]
fn errors_are_sticky() {
    let mut parser = RequestParser::new(small_limits());
    let err = parser.feed(b"BAD/REQUEST LINE\r\n\r\n").unwrap_err();
    assert_eq!(err.status(), 400);
    for _ in 0..3 {
        assert_eq!(parser.feed(b"GET / HTTP/1.1\r\n\r\n"), Err(err.clone()));
        assert!(parser.take_request().is_none());
    }
}
