//! Minimal CSV reading/writing for numeric preference data.
//!
//! Deliberately tiny: comma separation, one header line, optional
//! leading identifier column, `f64` cells, no quoting. This covers the
//! tool's contract without pulling a parser dependency into the
//! workspace.

use std::fmt::Write as _;

/// A parsed numeric table: column names, optional row identifiers, and
/// row-major values.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Names of the numeric columns (identifier column excluded).
    pub columns: Vec<String>,
    /// Row identifiers: the first column if it is non-numeric, else
    /// `row0..rowN` synthesized.
    pub ids: Vec<String>,
    /// Row-major numeric values, `ids.len() × columns.len()`.
    pub values: Vec<f64>,
}

impl Table {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.ids.len()
    }

    /// Borrow row `i`'s numeric values.
    pub fn row(&self, i: usize) -> &[f64] {
        let w = self.columns.len();
        &self.values[i * w..(i + 1) * w]
    }
}

/// Parse CSV text into a [`Table`].
///
/// The first line is the header. If every data row's first cell fails
/// to parse as `f64`, the first column is treated as the identifier
/// column; otherwise identifiers are synthesized.
pub fn parse(text: &str) -> Result<Table, String> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header: Vec<String> = lines
        .next()
        .ok_or("empty CSV input")?
        .split(',')
        .map(|c| c.trim().to_string())
        .collect();
    if header.is_empty() {
        return Err("CSV header has no columns".into());
    }

    let rows: Vec<Vec<&str>> = lines
        .map(|l| l.split(',').map(str::trim).collect())
        .collect();
    if rows.is_empty() {
        return Err("CSV has a header but no data rows".into());
    }
    for (i, r) in rows.iter().enumerate() {
        if r.len() != header.len() {
            return Err(format!(
                "row {} has {} cells but the header has {} columns",
                i + 1,
                r.len(),
                header.len()
            ));
        }
    }

    let first_col_numeric = rows.iter().all(|r| r[0].parse::<f64>().is_ok());
    let (columns, id_offset): (Vec<String>, usize) = if first_col_numeric {
        (header.clone(), 0)
    } else {
        (header[1..].to_vec(), 1)
    };
    if columns.is_empty() {
        return Err("CSV has no numeric columns".into());
    }

    let mut ids = Vec::with_capacity(rows.len());
    let mut values = Vec::with_capacity(rows.len() * columns.len());
    for (i, r) in rows.iter().enumerate() {
        ids.push(if id_offset == 1 {
            r[0].to_string()
        } else {
            format!("row{i}")
        });
        for (j, cell) in r[id_offset..].iter().enumerate() {
            let v: f64 = cell.parse().map_err(|_| {
                format!(
                    "row {} column '{}': '{}' is not a number",
                    i + 1,
                    columns[j],
                    cell
                )
            })?;
            if !v.is_finite() {
                return Err(format!(
                    "row {} column '{}': non-finite value",
                    i + 1,
                    columns[j]
                ));
            }
            values.push(v);
        }
    }
    Ok(Table {
        columns,
        ids,
        values,
    })
}

/// Serialize rows of `(cells...)` with a header into CSV text.
pub fn write_rows(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}", header.join(","));
    for r in rows {
        let _ = writeln!(out, "{}", r.join(","));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_numeric_table_with_synthesized_ids() {
        let t = parse("a,b\n0.1,0.2\n0.3,0.4\n").unwrap();
        assert_eq!(t.columns, vec!["a", "b"]);
        assert_eq!(t.ids, vec!["row0", "row1"]);
        assert_eq!(t.row(1), &[0.3, 0.4]);
    }

    #[test]
    fn detects_identifier_column() {
        let t = parse("name,x,y\nalpha,1,2\nbeta,3,4\n").unwrap();
        assert_eq!(t.columns, vec!["x", "y"]);
        assert_eq!(t.ids, vec!["alpha", "beta"]);
        assert_eq!(t.row(0), &[1.0, 2.0]);
    }

    #[test]
    fn numeric_looking_first_column_stays_data() {
        let t = parse("x,y\n1,2\n3,4\n").unwrap();
        assert_eq!(t.columns.len(), 2);
        assert_eq!(t.row(0), &[1.0, 2.0]);
    }

    #[test]
    fn ragged_rows_are_rejected() {
        let err = parse("a,b\n1,2\n3\n").unwrap_err();
        assert!(err.contains("row 2"), "got: {err}");
    }

    #[test]
    fn garbage_cells_are_rejected() {
        let err = parse("a,b\n1,zebra\n").unwrap_err();
        assert!(err.contains("zebra"), "got: {err}");
    }

    #[test]
    fn empty_inputs_are_rejected() {
        assert!(parse("").is_err());
        assert!(parse("a,b\n").is_err());
    }

    #[test]
    fn round_trip_output() {
        let text = write_rows(
            &["user", "object", "score"],
            &[
                vec!["u1".into(), "o7".into(), "0.93".into()],
                vec!["u2".into(), "o3".into(), "0.88".into()],
            ],
        );
        assert_eq!(text, "user,object,score\nu1,o7,0.93\nu2,o3,0.88\n");
    }
}
