//! Library backing the `mpq` command-line tool: a minimal, dependency-
//! free CSV layer plus the argument-driven matching pipeline.
//!
//! CSV dialect: comma-separated, first line is a header, numeric cells
//! parsed as `f64`, no quoting/escaping (preference data is numeric).
//! The first column may be a non-numeric identifier; it is carried
//! through to the output.

pub mod csv;
pub mod run;

pub use run::{run_cli, start_server, CliError};
