//! The `mpq` command-line pipeline: parse arguments, load CSVs, run a
//! matcher, emit the assignment as CSV on stdout and metrics on stderr.
//!
//! ```text
//! mpq match --objects rooms.csv --functions users.csv [--algorithm sb|bf|chain]
//!           [--output out.csv] [--no-normalize-check]
//! mpq generate --distribution independent|correlated|anti-correlated|zillow
//!              --objects N --dim D [--seed S]   # emits an objects CSV
//! mpq throughput --objects rooms.csv --functions users.csv
//!                [--algo sb|bf|chain] [--requests R] [--threads T]
//!                # serve R copies of the request on T threads and report req/s
//! mpq serve --objects rooms.csv --functions users.csv
//!           [--algo sb|bf|chain] [--requests R] [--workers N]
//!           [--queue-cap M] [--reject] [--cache N] [--data-dir DIR]
//!           # replay R copies through the EngineService submission
//!           # queue and report ServiceMetrics (repeat-heavy: the
//!           # replay exercises the result cache; --cache 0 disables).
//!           # With --data-dir the engine is disk-backed: a directory
//!           # already holding a persisted engine is reopened (no
//!           # --objects needed), an empty one is populated from the CSV
//! mpq serve --listen ADDR [--tenant NAME=objects.csv[,KEY=VALUE...]]...
//!           # HTTP mode: host one or more tenants behind a std-only
//!           # HTTP/1.1 listener (see the `mpq_net` crate). Without
//!           # --tenant, --objects [--data-dir DIR] forms a single
//!           # tenant named "default". Stop with Ctrl-C (the process
//!           # exits; persisted tenants reopen cleanly from their WAL)
//! mpq compact --data-dir DIR
//!           # checkpoint a persisted engine: fold the WAL into the page
//!           # file so the next open replays nothing
//! ```
//!
//! Object attribute values are expected in `[0, 1]` larger-is-better
//! space (use `mpq generate` for synthetic inputs, or normalize your
//! data upstream — see the `real_estate` example for a normalization
//! recipe). Function rows are weights; they are normalized to sum to 1.

use std::fs;
use std::sync::Arc;

use mpq_core::service::resolved_workers;
use mpq_core::{Algorithm, BackpressurePolicy, Engine, MpqError, ServiceConfig, ShardedEngine};
use mpq_datagen::Distribution;
use mpq_rtree::PointSet;
use mpq_ta::FunctionSet;

use crate::csv::{parse, write_rows, Table};

/// A user-facing CLI failure (message + process exit code).
#[derive(Debug)]
pub struct CliError {
    /// Human-readable description.
    pub message: String,
    /// Suggested process exit code.
    pub code: i32,
}

impl CliError {
    fn usage(msg: impl Into<String>) -> CliError {
        CliError {
            message: msg.into(),
            code: 2,
        }
    }

    fn runtime(msg: impl Into<String>) -> CliError {
        CliError {
            message: msg.into(),
            code: 1,
        }
    }
}

/// Entry point used by `main` and by the tests. `args` excludes the
/// program name. Returns the stdout payload.
pub fn run_cli(args: &[String]) -> Result<String, CliError> {
    match args.first().map(String::as_str) {
        Some("match") => cmd_match(&args[1..]),
        Some("generate") => cmd_generate(&args[1..]),
        Some("throughput") => cmd_throughput(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("compact") => cmd_compact(&args[1..]),
        Some("--help" | "-h" | "help") | None => Err(CliError::usage(USAGE)),
        Some(other) => Err(CliError::usage(format!(
            "unknown command '{other}'\n{USAGE}"
        ))),
    }
}

const USAGE: &str = "usage:
  mpq match --objects <objects.csv> --functions <functions.csv>
            [--algo sb|bf|chain] [--shards <K>] [--output <file>]
            # --shards K > 1 partitions the objects into K per-shard
            # R-trees and resolves the (bit-identical) matching with the
            # scatter-gather merge
  mpq generate --distribution <independent|correlated|anti-correlated|clustered|zillow>
               --objects <N> --dim <D> [--seed <S>]
  mpq throughput --objects <objects.csv> --functions <functions.csv>
                 [--algo sb|bf|chain] [--requests <R>] [--threads <T>]
  mpq serve --objects <objects.csv> --functions <functions.csv>
            [--algo sb|bf|chain] [--requests <R>] [--workers <N>]
            [--queue-cap <M>] [--reject] [--cache <N>] [--data-dir <dir>]
            [--shards <K>]
            # replay R copies of the request through the EngineService
            # worker pool and report ServiceMetrics; --cache N bounds the
            # result cache to N entries (0 disables caching + dedupe);
            # --data-dir persists the engine (or reopens one already
            # persisted there, in which case --objects is not needed);
            # --shards K > 1 serves a partitioned engine
  mpq serve --listen <addr> [--tenant NAME=objects.csv[,KEY=VALUE]...]...
            # HTTP mode: serve match requests over a real socket.
            # Tenant spec keys: data-dir=DIR (persist/reopen; an empty
            # objects.csv part reopens an existing store), workers=N,
            # queue-cap=M, cache=N, shards=K (K > 1 hosts a partitioned
            # engine; 0 is rejected). Without --tenant, --objects
            # [--data-dir DIR] [--shards K] hosts a single tenant named
            # 'default'. Routes: POST /t/NAME/match, GET /t/NAME/metrics,
            # GET /metrics, GET /healthz
  mpq compact --data-dir <dir>
            # checkpoint a persisted engine: fold the WAL into the page
            # file so the next open replays nothing. A sharded store
            # (shards.mpq manifest) checkpoints every shard";

/// Parse the shared `--shards` flag: absent means `1` (unsharded), and
/// `0` is a usage error everywhere — a partitioned engine needs at
/// least one shard.
fn parse_shards(args: &[String]) -> Result<usize, CliError> {
    let shards: usize = arg_value(args, "--shards")
        .unwrap_or("1")
        .parse()
        .map_err(|_| CliError::usage("--shards must be an integer"))?;
    if shards == 0 {
        return Err(CliError::usage("--shards must be at least 1"));
    }
    Ok(shards)
}

fn arg_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn cmd_match(args: &[String]) -> Result<String, CliError> {
    let objects_path = arg_value(args, "--objects")
        .ok_or_else(|| CliError::usage(format!("--objects is required\n{USAGE}")))?;
    let functions_path = arg_value(args, "--functions")
        .ok_or_else(|| CliError::usage(format!("--functions is required\n{USAGE}")))?;
    // `--algo` is canonical; `--algorithm` stays accepted.
    let algorithm: Algorithm = arg_value(args, "--algo")
        .or_else(|| arg_value(args, "--algorithm"))
        .unwrap_or("sb")
        .parse()
        .map_err(CliError::usage)?;
    let shards = parse_shards(args)?;

    let objects_text = fs::read_to_string(objects_path)
        .map_err(|e| CliError::runtime(format!("cannot read {objects_path}: {e}")))?;
    let functions_text = fs::read_to_string(functions_path)
        .map_err(|e| CliError::runtime(format!("cannot read {functions_path}: {e}")))?;
    let objects_table =
        parse(&objects_text).map_err(|e| CliError::runtime(format!("{objects_path}: {e}")))?;
    let functions_table =
        parse(&functions_text).map_err(|e| CliError::runtime(format!("{functions_path}: {e}")))?;

    if objects_table.columns.len() != functions_table.columns.len() {
        return Err(CliError::runtime(format!(
            "dimensionality mismatch: objects have {} attributes, functions have {}",
            objects_table.columns.len(),
            functions_table.columns.len()
        )));
    }
    let (objects, functions) = build_inputs(&objects_table, &functions_table)?;

    let matching = if shards > 1 {
        let engine = ShardedEngine::builder()
            .objects(&objects)
            .shards(shards)
            .build()
            .map_err(cli_from_mpq)?;
        engine
            .request(&functions)
            .algorithm(algorithm)
            .evaluate()
            .map_err(cli_from_mpq)?
    } else {
        let engine = Engine::builder()
            .objects(&objects)
            .build()
            .map_err(cli_from_mpq)?;
        engine
            .request(&functions)
            .algorithm(algorithm)
            .evaluate()
            .map_err(cli_from_mpq)?
    };
    let met = matching.metrics();
    eprintln!(
        "{}{}: {} pairs, {:.3}s matching, {} physical I/Os ({} loops)",
        algorithm.name(),
        if shards > 1 {
            format!(" over {shards} shards")
        } else {
            String::new()
        },
        matching.len(),
        met.elapsed.as_secs_f64(),
        met.io.physical(),
        met.loops
    );

    let rows: Vec<Vec<String>> = matching
        .sorted_pairs()
        .iter()
        .map(|p| {
            vec![
                functions_table.ids[p.fid as usize].clone(),
                objects_table.ids[p.oid as usize].clone(),
                format!("{:.6}", p.score),
            ]
        })
        .collect();
    let out = write_rows(&["function", "object", "score"], &rows);

    if let Some(path) = arg_value(args, "--output") {
        fs::write(path, &out)
            .map_err(|e| CliError::runtime(format!("cannot write {path}: {e}")))?;
        Ok(format!("wrote {} assignments to {path}\n", rows.len()))
    } else {
        Ok(out)
    }
}

/// Engine-boundary validation errors become runtime CLI failures.
fn cli_from_mpq(e: MpqError) -> CliError {
    CliError::runtime(e.to_string())
}

fn build_inputs(
    objects_table: &Table,
    functions_table: &Table,
) -> Result<(PointSet, FunctionSet), CliError> {
    let dim = objects_table.columns.len();
    let mut objects = PointSet::with_capacity(dim, objects_table.rows());
    for i in 0..objects_table.rows() {
        let row = objects_table.row(i);
        if row.iter().any(|&v| !(0.0..=1.0).contains(&v)) {
            return Err(CliError::runtime(format!(
                "object '{}' has attributes outside [0,1]; normalize your data \
                 to larger-is-better unit scale first",
                objects_table.ids[i]
            )));
        }
        objects.push(row);
    }
    let mut functions = FunctionSet::new(dim);
    for i in 0..functions_table.rows() {
        let row = functions_table.row(i);
        if row.iter().any(|&v| v < 0.0) || row.iter().all(|&v| v == 0.0) {
            return Err(CliError::runtime(format!(
                "function '{}' must have non-negative, not-all-zero weights",
                functions_table.ids[i]
            )));
        }
        functions.push(row);
    }
    Ok((objects, functions))
}

/// Shared workload loader of the serving subcommands (`throughput`,
/// `serve`): read the `--objects`/`--functions` CSVs and build the
/// validated input sets.
fn load_workload(args: &[String]) -> Result<(PointSet, FunctionSet), CliError> {
    let objects_path = arg_value(args, "--objects")
        .ok_or_else(|| CliError::usage(format!("--objects is required\n{USAGE}")))?;
    let functions_path = arg_value(args, "--functions")
        .ok_or_else(|| CliError::usage(format!("--functions is required\n{USAGE}")))?;
    let objects_text = fs::read_to_string(objects_path)
        .map_err(|e| CliError::runtime(format!("cannot read {objects_path}: {e}")))?;
    let functions_text = fs::read_to_string(functions_path)
        .map_err(|e| CliError::runtime(format!("cannot read {functions_path}: {e}")))?;
    let objects_table =
        parse(&objects_text).map_err(|e| CliError::runtime(format!("{objects_path}: {e}")))?;
    let functions_table =
        parse(&functions_text).map_err(|e| CliError::runtime(format!("{functions_path}: {e}")))?;
    if objects_table.columns.len() != functions_table.columns.len() {
        return Err(CliError::runtime(format!(
            "dimensionality mismatch: objects have {} attributes, functions have {}",
            objects_table.columns.len(),
            functions_table.columns.len()
        )));
    }
    build_inputs(&objects_table, &functions_table)
}

/// Objects-only loader for `serve --data-dir` building a fresh
/// persistent engine.
fn load_objects(args: &[String]) -> Result<PointSet, CliError> {
    let path = arg_value(args, "--objects")
        .ok_or_else(|| CliError::usage(format!("--objects is required\n{USAGE}")))?;
    let text = fs::read_to_string(path)
        .map_err(|e| CliError::runtime(format!("cannot read {path}: {e}")))?;
    let table = parse(&text).map_err(|e| CliError::runtime(format!("{path}: {e}")))?;
    let dim = table.columns.len();
    let mut objects = PointSet::with_capacity(dim, table.rows());
    for i in 0..table.rows() {
        let row = table.row(i);
        if row.iter().any(|&v| !(0.0..=1.0).contains(&v)) {
            return Err(CliError::runtime(format!(
                "object '{}' has attributes outside [0,1]; normalize your data \
                 to larger-is-better unit scale first",
                table.ids[i]
            )));
        }
        objects.push(row);
    }
    Ok(objects)
}

/// Functions-only loader for `serve --data-dir` against a reopened
/// engine, whose dimensionality comes from the page file rather than an
/// objects CSV.
fn load_functions(args: &[String], dim: usize) -> Result<FunctionSet, CliError> {
    let path = arg_value(args, "--functions")
        .ok_or_else(|| CliError::usage(format!("--functions is required\n{USAGE}")))?;
    let text = fs::read_to_string(path)
        .map_err(|e| CliError::runtime(format!("cannot read {path}: {e}")))?;
    let table = parse(&text).map_err(|e| CliError::runtime(format!("{path}: {e}")))?;
    if table.columns.len() != dim {
        return Err(CliError::runtime(format!(
            "dimensionality mismatch: engine has {dim} attributes, functions have {}",
            table.columns.len()
        )));
    }
    let mut functions = FunctionSet::new(dim);
    for i in 0..table.rows() {
        let row = table.row(i);
        if row.iter().any(|&v| v < 0.0) || row.iter().all(|&v| v == 0.0) {
            return Err(CliError::runtime(format!(
                "function '{}' must have non-negative, not-all-zero weights",
                table.ids[i]
            )));
        }
        functions.push(row);
    }
    Ok(functions)
}

/// Parallel serving demo: load one `(objects, functions)` pair, build
/// the engine once (buffer sharded to the worker count), then serve `R`
/// copies of the request on `T` threads via `Engine::evaluate_batch` and
/// report the throughput against the sequential loop. The batch results
/// are verified identical to the sequential ones before anything is
/// reported.
fn cmd_throughput(args: &[String]) -> Result<String, CliError> {
    let algorithm: Algorithm = arg_value(args, "--algo")
        .or_else(|| arg_value(args, "--algorithm"))
        .unwrap_or("sb")
        .parse()
        .map_err(CliError::usage)?;
    let requests: usize = arg_value(args, "--requests")
        .unwrap_or("32")
        .parse()
        .map_err(|_| CliError::usage("--requests must be an integer"))?;
    let threads: usize = arg_value(args, "--threads")
        .unwrap_or("0") // 0 = one worker per core
        .parse()
        .map_err(|_| CliError::usage("--threads must be an integer"))?;
    let (objects, functions) = load_workload(args)?;

    let engine = Engine::builder()
        .objects(&objects)
        .buffer_shards(resolved_workers(threads))
        .build()
        .map_err(cli_from_mpq)?;

    let batch: Vec<_> = (0..requests)
        .map(|_| engine.request(&functions).algorithm(algorithm))
        .collect();

    // Cold-start the shared buffer before each timed phase, like the
    // scaling harness does — otherwise the batch pass would run on a
    // buffer the sequential pass warmed and the speedup would conflate
    // parallelism with cache warmth.
    engine.tree().clear_buffer();
    let seq_start = std::time::Instant::now();
    let mut sequential = Vec::with_capacity(requests);
    for r in &batch {
        sequential.push(r.evaluate().map_err(cli_from_mpq)?);
    }
    let seq_secs = seq_start.elapsed().as_secs_f64();

    engine.tree().clear_buffer();
    let outcome = engine
        .evaluate_batch(&batch, threads)
        .map_err(cli_from_mpq)?;
    let met = outcome.metrics();
    for (a, b) in outcome.matchings().iter().zip(&sequential) {
        if a.sorted_pairs() != b.sorted_pairs() {
            return Err(CliError::runtime(
                "batch result diverged from sequential evaluation".to_string(),
            ));
        }
    }

    let seq_rps = requests as f64 / seq_secs.max(f64::MIN_POSITIVE);
    let par_rps = met.requests_per_sec();
    Ok(format!(
        "{} x{requests} requests over {} objects\n\
         sequential: {:.2} req/s ({:.3}s)\n\
         batch t={}: {:.2} req/s ({:.3}s)  speedup {:.2}x  (all matchings identical)\n",
        algorithm.name(),
        objects.len(),
        seq_rps,
        seq_secs,
        met.threads,
        par_rps,
        met.wall.as_secs_f64(),
        if seq_rps > 0.0 {
            par_rps / seq_rps
        } else {
            0.0
        },
    ))
}

/// Async-serving demo: load one `(objects, functions)` pair, spawn an
/// [`EngineService`] worker pool over the shared engine, replay `R`
/// copies of the request through the submission queue (the same
/// workload `mpq throughput` uses), wait for all tickets, and print the
/// rolling [`ServiceMetrics`]. Every served result is verified
/// bit-identical to a sequential evaluation before anything is
/// reported.
fn cmd_serve(args: &[String]) -> Result<String, CliError> {
    if arg_value(args, "--listen").is_some() {
        return cmd_serve_listen(args);
    }
    let algorithm: Algorithm = arg_value(args, "--algo")
        .or_else(|| arg_value(args, "--algorithm"))
        .unwrap_or("sb")
        .parse()
        .map_err(CliError::usage)?;
    let requests: usize = arg_value(args, "--requests")
        .unwrap_or("32")
        .parse()
        .map_err(|_| CliError::usage("--requests must be an integer"))?;
    let workers: usize = arg_value(args, "--workers")
        .unwrap_or("0") // 0 = one worker per core
        .parse()
        .map_err(|_| CliError::usage("--workers must be an integer"))?;
    let queue_cap: usize = arg_value(args, "--queue-cap")
        .unwrap_or("64")
        .parse()
        .map_err(|_| CliError::usage("--queue-cap must be an integer"))?;
    let cache: usize = arg_value(args, "--cache")
        .unwrap_or("256")
        .parse()
        .map_err(|_| CliError::usage("--cache must be an integer (entries; 0 disables)"))?;
    let backpressure = if args.iter().any(|a| a == "--reject") {
        BackpressurePolicy::Reject
    } else {
        BackpressurePolicy::Block
    };
    let data_dir = arg_value(args, "--data-dir").map(std::path::PathBuf::from);
    let shards = parse_shards(args)?;
    if shards > 1 {
        return serve_sharded(
            args,
            ServeFlags {
                algorithm,
                requests,
                workers,
                queue_cap,
                cache,
                backpressure,
                data_dir,
                shards,
            },
        );
    }

    // A directory already holding a persisted engine is reopened —
    // page file plus WAL replay — so mutations from earlier runs are
    // visible; otherwise build from the objects CSV (persisting to
    // `--data-dir` when given).
    let (engine, storage) = match &data_dir {
        Some(dir) if Engine::persisted_at(dir) => {
            let engine = Engine::open(dir).map_err(cli_from_mpq)?;
            (Arc::new(engine), format!(", opened from {}", dir.display()))
        }
        _ => {
            let objects = load_objects(args)?;
            let mut builder = Engine::builder()
                .objects(&objects)
                .buffer_shards(resolved_workers(workers));
            let storage = match &data_dir {
                Some(dir) => {
                    builder = builder.data_dir(dir);
                    format!(", persisted to {}", dir.display())
                }
                None => String::new(),
            };
            (Arc::new(builder.build().map_err(cli_from_mpq)?), storage)
        }
    };
    let functions = load_functions(args, engine.dim())?;
    let expected = engine
        .request(&functions)
        .algorithm(algorithm)
        .evaluate()
        .map_err(cli_from_mpq)?
        .sorted_pairs();

    let service = engine.clone().serve(
        ServiceConfig::default()
            .workers(workers)
            .queue_capacity(queue_cap)
            .backpressure(backpressure)
            .cache_capacity(cache),
    );
    let client = service.client();
    let mut tickets = Vec::with_capacity(requests);
    let mut rejected = 0usize;
    for _ in 0..requests {
        match client.submit(client.engine().request(&functions).algorithm(algorithm)) {
            Ok(t) => tickets.push(t),
            Err(MpqError::Overloaded) => rejected += 1,
            Err(e) => return Err(cli_from_mpq(e)),
        }
    }
    for ticket in tickets {
        let served = ticket.wait().map_err(cli_from_mpq)?;
        if served.sorted_pairs() != expected {
            return Err(CliError::runtime(
                "served result diverged from sequential evaluation".to_string(),
            ));
        }
    }
    // Snapshot after the drain: the joined workers have retired every
    // job, so the queue/in-flight gauges are deterministically zero.
    service.shutdown();
    let metrics = client.metrics();

    Ok(format!(
        "{} x{requests} requests over {} objects via EngineService \
         (queue cap {queue_cap}, {} backpressure{}{storage})\n{metrics}\n\
         all served matchings identical to sequential\n",
        algorithm.name(),
        engine.n_objects(),
        match backpressure {
            BackpressurePolicy::Block => "block",
            BackpressurePolicy::Reject => "reject",
        },
        if rejected > 0 {
            format!(", {rejected} rejected")
        } else {
            String::new()
        },
    ))
}

/// Parsed `mpq serve` replay flags, bundled so the sharded path shares
/// them without re-parsing.
struct ServeFlags {
    algorithm: Algorithm,
    requests: usize,
    workers: usize,
    queue_cap: usize,
    cache: usize,
    backpressure: BackpressurePolicy,
    data_dir: Option<std::path::PathBuf>,
    shards: usize,
}

/// The `--shards K > 1` replay: build (or reopen) a [`ShardedEngine`],
/// serve the same replay workload through its service, and verify every
/// served matching bit-identical to a direct scatter-gather evaluation.
fn serve_sharded(args: &[String], flags: ServeFlags) -> Result<String, CliError> {
    let ServeFlags {
        algorithm,
        requests,
        workers,
        queue_cap,
        cache,
        backpressure,
        data_dir,
        shards,
    } = flags;
    let (engine, storage) = match &data_dir {
        Some(dir) if ShardedEngine::persisted_at(dir) => {
            let engine = ShardedEngine::open(dir).map_err(cli_from_mpq)?;
            (Arc::new(engine), format!(", opened from {}", dir.display()))
        }
        _ => {
            let objects = load_objects(args)?;
            let mut builder = ShardedEngine::builder().objects(&objects).shards(shards);
            let storage = match &data_dir {
                Some(dir) => {
                    builder = builder.data_dir(dir);
                    format!(", persisted to {}", dir.display())
                }
                None => String::new(),
            };
            (Arc::new(builder.build().map_err(cli_from_mpq)?), storage)
        }
    };
    let functions = load_functions(args, engine.dim())?;
    let expected = engine
        .request(&functions)
        .algorithm(algorithm)
        .evaluate()
        .map_err(cli_from_mpq)?
        .sorted_pairs();

    let service = Arc::clone(&engine).serve(
        ServiceConfig::default()
            .workers(workers)
            .queue_capacity(queue_cap)
            .backpressure(backpressure)
            .cache_capacity(cache),
    );
    let client = service.client();
    let mut tickets = Vec::with_capacity(requests);
    let mut rejected = 0usize;
    for _ in 0..requests {
        match client.submit_sharded(engine.request(&functions).algorithm(algorithm)) {
            Ok(t) => tickets.push(t),
            Err(MpqError::Overloaded) => rejected += 1,
            Err(e) => return Err(cli_from_mpq(e)),
        }
    }
    for ticket in tickets {
        let served = ticket.wait().map_err(cli_from_mpq)?;
        if served.sorted_pairs() != expected {
            return Err(CliError::runtime(
                "served result diverged from direct sharded evaluation".to_string(),
            ));
        }
    }
    service.shutdown();
    let metrics = client.metrics();

    Ok(format!(
        "{} x{requests} requests over {} objects in {} shards via EngineService \
         (queue cap {queue_cap}, {} backpressure{}{storage})\n{metrics}\n\
         all served matchings identical to direct sharded evaluation\n",
        algorithm.name(),
        engine.n_objects(),
        engine.shard_count(),
        match backpressure {
            BackpressurePolicy::Block => "block",
            BackpressurePolicy::Reject => "reject",
        },
        if rejected > 0 {
            format!(", {rejected} rejected")
        } else {
            String::new()
        },
    ))
}

/// One `--tenant NAME=objects.csv[,KEY=VALUE...]` specification.
#[derive(Debug)]
struct TenantSpec {
    name: String,
    objects_csv: Option<String>,
    data_dir: Option<std::path::PathBuf>,
    config: mpq_net::TenantConfig,
}

/// Parse a tenant spec. Grammar: `NAME=OBJECTS[,KEY=VALUE]...` where
/// `OBJECTS` may be empty when `data-dir` points at a persisted store.
fn parse_tenant_spec(spec: &str) -> Result<TenantSpec, CliError> {
    let (name, rest) = spec.split_once('=').ok_or_else(|| {
        CliError::usage(format!(
            "--tenant '{spec}': expected NAME=objects.csv[,KEY=VALUE...]"
        ))
    })?;
    let mut parts = rest.split(',');
    let objects = parts.next().unwrap_or_default();
    let mut out = TenantSpec {
        name: name.to_string(),
        objects_csv: (!objects.is_empty()).then(|| objects.to_string()),
        data_dir: None,
        config: mpq_net::TenantConfig::default(),
    };
    for part in parts {
        let (key, value) = part.split_once('=').ok_or_else(|| {
            CliError::usage(format!(
                "--tenant '{spec}': option '{part}' is not KEY=VALUE"
            ))
        })?;
        let int = |what: &str| -> Result<usize, CliError> {
            value.parse().map_err(|_| {
                CliError::usage(format!("--tenant '{spec}': {what} must be an integer"))
            })
        };
        match key {
            "data-dir" => out.data_dir = Some(std::path::PathBuf::from(value)),
            "workers" => out.config.workers = int("workers")?,
            "queue-cap" => out.config.queue_capacity = int("queue-cap")?,
            "cache" => out.config.cache_capacity = int("cache")?,
            "shards" => {
                out.config.shards = int("shards")?;
                if out.config.shards == 0 {
                    return Err(CliError::usage(format!(
                        "--tenant '{spec}': shards must be at least 1"
                    )));
                }
            }
            other => {
                return Err(CliError::usage(format!(
                    "--tenant '{spec}': unknown option '{other}' \
                     (known: data-dir, workers, queue-cap, cache, shards)"
                )))
            }
        }
    }
    if out.objects_csv.is_none() && out.data_dir.is_none() {
        return Err(CliError::usage(format!(
            "--tenant '{spec}': needs an objects.csv, a data-dir with a \
             persisted store, or both"
        )));
    }
    Ok(out)
}

/// Load one tenant CSV into a validated [`PointSet`].
fn load_objects_csv(path: &str) -> Result<PointSet, CliError> {
    let text = fs::read_to_string(path)
        .map_err(|e| CliError::runtime(format!("cannot read {path}: {e}")))?;
    let table = parse(&text).map_err(|e| CliError::runtime(format!("{path}: {e}")))?;
    let dim = table.columns.len();
    let mut objects = PointSet::with_capacity(dim, table.rows());
    for i in 0..table.rows() {
        let row = table.row(i);
        if row.iter().any(|&v| !(0.0..=1.0).contains(&v)) {
            return Err(CliError::runtime(format!(
                "{path}: object '{}' has attributes outside [0,1]",
                table.ids[i]
            )));
        }
        objects.push(row);
    }
    Ok(objects)
}

/// Build the tenant registry from `--tenant` specs (or the single
/// `--objects`/`--data-dir` default tenant) and bind the HTTP server.
/// Shared with the CLI tests, which bind port 0 and drive the server
/// over a real socket; dropping the returned server is the clean
/// shutdown path (Ctrl-C on a foreground `mpq serve --listen` kills the
/// process, and persisted tenants recover from their WAL on reopen).
pub fn start_server(args: &[String]) -> Result<mpq_net::Server, CliError> {
    let listen = arg_value(args, "--listen")
        .ok_or_else(|| CliError::usage(format!("--listen is required\n{USAGE}")))?;

    let mut specs = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--tenant" {
            let spec = args
                .get(i + 1)
                .ok_or_else(|| CliError::usage("--tenant needs a value"))?;
            specs.push(parse_tenant_spec(spec)?);
            i += 2;
        } else {
            i += 1;
        }
    }
    if specs.is_empty() {
        // Single-tenant shorthand: --objects [--data-dir DIR].
        let objects_csv = arg_value(args, "--objects").map(str::to_string);
        let data_dir = arg_value(args, "--data-dir").map(std::path::PathBuf::from);
        if objects_csv.is_none() && data_dir.is_none() {
            return Err(CliError::usage(format!(
                "serve --listen needs --tenant specs or --objects\n{USAGE}"
            )));
        }
        let mut config = mpq_net::TenantConfig::default();
        if let Some(w) = arg_value(args, "--workers") {
            config.workers = w
                .parse()
                .map_err(|_| CliError::usage("--workers must be an integer"))?;
        }
        if let Some(q) = arg_value(args, "--queue-cap") {
            config.queue_capacity = q
                .parse()
                .map_err(|_| CliError::usage("--queue-cap must be an integer"))?;
        }
        config.shards = parse_shards(args)?;
        specs.push(TenantSpec {
            name: "default".to_string(),
            objects_csv,
            data_dir,
            config,
        });
    }

    let mut registry = mpq_net::TenantRegistry::new();
    for spec in specs {
        let objects = spec
            .objects_csv
            .as_deref()
            .map(load_objects_csv)
            .transpose()?;
        let added = match spec.data_dir {
            Some(dir) => registry.add_persistent(&spec.name, objects.as_ref(), dir, spec.config),
            None => {
                let objects = objects.expect("checked by parse_tenant_spec");
                registry.add_objects(&spec.name, &objects, spec.config)
            }
        };
        added.map_err(|e| CliError::runtime(format!("tenant '{}': {e}", spec.name)))?;
    }

    mpq_net::Server::bind(listen, registry, mpq_net::ServerConfig::default())
        .map_err(|e| CliError::runtime(format!("cannot listen on {listen}: {e}")))
}

/// `mpq serve --listen`: start the server and block until the process
/// is killed. The bound address goes to stderr immediately (stdout is
/// reserved for command output), so scripts can scrape it even with
/// `--listen 127.0.0.1:0`.
fn cmd_serve_listen(args: &[String]) -> Result<String, CliError> {
    let server = start_server(args)?;
    let tenants: Vec<String> = server
        .registry()
        .iter()
        .map(|t| t.name().to_string())
        .collect();
    eprintln!(
        "mpq: listening on {} serving {} tenant(s): {}",
        server.local_addr(),
        tenants.len(),
        tenants.join(", ")
    );
    // Serve until killed: the accept loop runs on its own thread, and
    // there is nothing useful for this one to do but wait.
    loop {
        std::thread::park();
    }
}

/// Checkpoint a persisted engine: reopen it (replaying the WAL), fold
/// the recovered state into the page file, and truncate the WAL — the
/// next `serve --data-dir` opens instantly, replaying nothing. A
/// directory holding a *sharded* manifest routes through
/// [`ShardedEngine`] instead, checkpointing every shard.
fn cmd_compact(args: &[String]) -> Result<String, CliError> {
    let dir = arg_value(args, "--data-dir")
        .ok_or_else(|| CliError::usage(format!("--data-dir is required\n{USAGE}")))?;
    if ShardedEngine::persisted_at(dir) {
        let engine = ShardedEngine::open(dir).map_err(cli_from_mpq)?;
        let wal_before = engine.wal_bytes();
        engine.checkpoint().map_err(cli_from_mpq)?;
        let wal_after = engine.wal_bytes();
        let pages: usize = engine.shards().iter().map(|s| s.tree().page_count()).sum();
        return Ok(format!(
            "compacted {dir}: {} shards, {} objects over {pages} pages, wal {wal_before} -> {wal_after} bytes\n",
            engine.shards().len(),
            engine.n_objects(),
        ));
    }
    if !Engine::persisted_at(dir) {
        return Err(CliError::runtime(format!(
            "no persisted engine under {dir} (run `mpq serve --data-dir` first)"
        )));
    }
    let engine = Engine::open(dir).map_err(cli_from_mpq)?;
    let wal_before = engine.wal_bytes();
    engine.checkpoint().map_err(cli_from_mpq)?;
    let wal_after = engine.wal_bytes();
    Ok(format!(
        "compacted {dir}: {} objects over {} pages, wal {wal_before} -> {wal_after} bytes\n",
        engine.n_objects(),
        engine.tree().page_count(),
    ))
}

fn cmd_generate(args: &[String]) -> Result<String, CliError> {
    let dist = match arg_value(args, "--distribution").unwrap_or("independent") {
        "independent" => Distribution::Independent,
        "correlated" => Distribution::Correlated,
        "anti-correlated" => Distribution::AntiCorrelated,
        "clustered" => Distribution::Clustered { clusters: 10 },
        "zillow" => Distribution::Zillow,
        other => return Err(CliError::usage(format!("unknown distribution '{other}'"))),
    };
    let n: usize = arg_value(args, "--objects")
        .unwrap_or("1000")
        .parse()
        .map_err(|_| CliError::usage("--objects must be an integer"))?;
    let dim: usize = arg_value(args, "--dim")
        .unwrap_or(if dist == Distribution::Zillow {
            "5"
        } else {
            "3"
        })
        .parse()
        .map_err(|_| CliError::usage("--dim must be an integer"))?;
    let seed: u64 = arg_value(args, "--seed")
        .unwrap_or("0")
        .parse()
        .map_err(|_| CliError::usage("--seed must be an integer"))?;

    let ps = dist.generate(n, dim, seed);
    let header: Vec<String> = (0..dim).map(|d| format!("attr{d}")).collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = ps
        .iter()
        .map(|(_, p)| p.iter().map(|v| format!("{v:.6}")).collect())
        .collect();
    Ok(write_rows(&header_refs, &rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn help_and_unknown_commands() {
        assert_eq!(run_cli(&[]).unwrap_err().code, 2);
        assert_eq!(run_cli(&args(&["bogus"])).unwrap_err().code, 2);
        assert!(run_cli(&args(&["--help"]))
            .unwrap_err()
            .message
            .contains("usage"));
    }

    #[test]
    fn generate_then_match_end_to_end() {
        let dir = std::env::temp_dir().join("mpq_cli_test");
        fs::create_dir_all(&dir).unwrap();
        let objects_csv = run_cli(&args(&[
            "generate",
            "--distribution",
            "independent",
            "--objects",
            "200",
            "--dim",
            "3",
            "--seed",
            "5",
        ]))
        .unwrap();
        let opath = dir.join("objects.csv");
        fs::write(&opath, &objects_csv).unwrap();

        let fpath = dir.join("functions.csv");
        fs::write(
            &fpath,
            "user,w0,w1,w2\nana,0.7,0.2,0.1\nboris,0.1,0.1,0.8\nchloe,0.33,0.33,0.34\n",
        )
        .unwrap();

        for algo in ["sb", "bf", "chain"] {
            let out = run_cli(&args(&[
                "match",
                "--objects",
                opath.to_str().unwrap(),
                "--functions",
                fpath.to_str().unwrap(),
                "--algorithm",
                algo,
            ]))
            .unwrap();
            let lines: Vec<&str> = out.trim().lines().collect();
            assert_eq!(lines[0], "function,object,score");
            assert_eq!(lines.len(), 4, "3 users must be matched ({algo})");
            assert!(lines[1].starts_with("ana,") || lines[1].contains("boris"));
        }
    }

    #[test]
    fn all_algorithms_agree_on_csv_input() {
        let dir = std::env::temp_dir().join("mpq_cli_agree");
        fs::create_dir_all(&dir).unwrap();
        let objects_csv = run_cli(&args(&[
            "generate",
            "--distribution",
            "anti-correlated",
            "--objects",
            "300",
            "--dim",
            "2",
            "--seed",
            "9",
        ]))
        .unwrap();
        let opath = dir.join("objects.csv");
        fs::write(&opath, &objects_csv).unwrap();
        let fpath = dir.join("functions.csv");
        let mut fcsv = String::from("w0,w1\n");
        for i in 0..20 {
            fcsv.push_str(&format!("0.{:02},0.{:02}\n", 30 + i, 70 - i));
        }
        fs::write(&fpath, &fcsv).unwrap();

        let run = |algo: &str| {
            let mut out: Vec<String> = run_cli(&args(&[
                "match",
                "--objects",
                opath.to_str().unwrap(),
                "--functions",
                fpath.to_str().unwrap(),
                "--algorithm",
                algo,
            ]))
            .unwrap()
            .trim()
            .lines()
            .skip(1)
            .map(str::to_string)
            .collect();
            out.sort();
            out
        };
        let sb = run("sb");
        assert_eq!(sb, run("bf"));
        assert_eq!(sb, run("chain"));
    }

    #[test]
    fn throughput_reports_identical_parallel_serving() {
        let dir = std::env::temp_dir().join("mpq_cli_throughput");
        fs::create_dir_all(&dir).unwrap();
        let objects_csv = run_cli(&args(&[
            "generate",
            "--distribution",
            "independent",
            "--objects",
            "400",
            "--dim",
            "2",
            "--seed",
            "13",
        ]))
        .unwrap();
        let opath = dir.join("objects.csv");
        fs::write(&opath, &objects_csv).unwrap();
        let fpath = dir.join("functions.csv");
        fs::write(&fpath, "w0,w1\n0.7,0.3\n0.4,0.6\n0.5,0.5\n").unwrap();

        let out = run_cli(&args(&[
            "throughput",
            "--objects",
            opath.to_str().unwrap(),
            "--functions",
            fpath.to_str().unwrap(),
            "--requests",
            "6",
            "--threads",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("sequential:"), "{out}");
        assert!(out.contains("batch t=2:"), "{out}");
        assert!(out.contains("all matchings identical"), "{out}");
    }

    #[test]
    fn serve_replays_workload_through_the_service() {
        let dir = std::env::temp_dir().join("mpq_cli_serve");
        fs::create_dir_all(&dir).unwrap();
        let objects_csv = run_cli(&args(&[
            "generate",
            "--distribution",
            "independent",
            "--objects",
            "400",
            "--dim",
            "2",
            "--seed",
            "17",
        ]))
        .unwrap();
        let opath = dir.join("objects.csv");
        fs::write(&opath, &objects_csv).unwrap();
        let fpath = dir.join("functions.csv");
        fs::write(&fpath, "w0,w1\n0.7,0.3\n0.4,0.6\n0.5,0.5\n").unwrap();

        let out = run_cli(&args(&[
            "serve",
            "--objects",
            opath.to_str().unwrap(),
            "--functions",
            fpath.to_str().unwrap(),
            "--requests",
            "8",
            "--workers",
            "2",
            "--queue-cap",
            "4",
        ]))
        .unwrap();
        assert!(out.contains("via EngineService"), "{out}");
        assert!(out.contains("workers 2"), "{out}");
        assert!(out.contains("submitted 8"), "{out}");
        assert!(out.contains("completed 8"), "{out}");
        assert!(out.contains("latency p50"), "{out}");
        // The replay is 8 copies of one request: with the default cache
        // on, all but the first are hits or in-flight attaches.
        assert!(out.contains("cache hits"), "{out}");
        assert!(
            out.contains("all served matchings identical to sequential"),
            "{out}"
        );
    }

    #[test]
    fn serve_cache_flag_disables_caching() {
        let dir = std::env::temp_dir().join("mpq_cli_serve_nocache");
        fs::create_dir_all(&dir).unwrap();
        let objects_csv = run_cli(&args(&[
            "generate",
            "--distribution",
            "independent",
            "--objects",
            "300",
            "--dim",
            "2",
            "--seed",
            "19",
        ]))
        .unwrap();
        let opath = dir.join("objects.csv");
        fs::write(&opath, &objects_csv).unwrap();
        let fpath = dir.join("functions.csv");
        fs::write(&fpath, "w0,w1\n0.7,0.3\n0.4,0.6\n").unwrap();

        let out = run_cli(&args(&[
            "serve",
            "--objects",
            opath.to_str().unwrap(),
            "--functions",
            fpath.to_str().unwrap(),
            "--requests",
            "4",
            "--workers",
            "1",
            "--cache",
            "0",
        ]))
        .unwrap();
        assert!(out.contains("cache disabled"), "{out}");
        assert!(out.contains("completed 4"), "{out}");
        assert!(
            out.contains("all served matchings identical to sequential"),
            "{out}"
        );
    }

    #[test]
    fn serve_reject_mode_sheds_load_but_still_reports() {
        let dir = std::env::temp_dir().join("mpq_cli_serve_reject");
        fs::create_dir_all(&dir).unwrap();
        let objects_csv = run_cli(&args(&[
            "generate",
            "--distribution",
            "anti-correlated",
            "--objects",
            "2000",
            "--dim",
            "3",
            "--seed",
            "23",
        ]))
        .unwrap();
        let opath = dir.join("objects.csv");
        fs::write(&opath, &objects_csv).unwrap();
        let fpath = dir.join("functions.csv");
        let mut fcsv = String::from("w0,w1,w2\n");
        for i in 0..40 {
            fcsv.push_str(&format!("0.{:02},0.{:02},0.20\n", 20 + i, 60 - i));
        }
        fs::write(&fpath, &fcsv).unwrap();

        // 1 worker + tiny queue + a burst: some submissions are shed in
        // reject mode, and the report stays truthful about it. Caching
        // is off — the replayed requests are identical, and the default
        // cache would (correctly) dedupe them instead of shedding.
        let out = run_cli(&args(&[
            "serve",
            "--objects",
            opath.to_str().unwrap(),
            "--functions",
            fpath.to_str().unwrap(),
            "--requests",
            "16",
            "--workers",
            "1",
            "--queue-cap",
            "1",
            "--reject",
            "--cache",
            "0",
        ]))
        .unwrap();
        assert!(out.contains("reject backpressure"), "{out}");
        assert!(
            out.contains("all served matchings identical to sequential"),
            "{out}"
        );
    }

    #[test]
    fn match_with_shards_is_bit_identical() {
        let dir = std::env::temp_dir().join("mpq_cli_shards_match");
        fs::create_dir_all(&dir).unwrap();
        let objects_csv = run_cli(&args(&[
            "generate",
            "--distribution",
            "anti-correlated",
            "--objects",
            "300",
            "--dim",
            "2",
            "--seed",
            "29",
        ]))
        .unwrap();
        let opath = dir.join("objects.csv");
        fs::write(&opath, &objects_csv).unwrap();
        let fpath = dir.join("functions.csv");
        let mut fcsv = String::from("w0,w1\n");
        for i in 0..12 {
            fcsv.push_str(&format!("0.{:02},0.{:02}\n", 35 + i, 65 - i));
        }
        fs::write(&fpath, &fcsv).unwrap();

        let run_shards = |shards: &str| {
            let mut base = args(&[
                "match",
                "--objects",
                opath.to_str().unwrap(),
                "--functions",
                fpath.to_str().unwrap(),
            ]);
            if !shards.is_empty() {
                base.extend(args(&["--shards", shards]));
            }
            let mut lines: Vec<String> = run_cli(&base)
                .unwrap()
                .trim()
                .lines()
                .skip(1)
                .map(str::to_string)
                .collect();
            lines.sort();
            lines
        };
        let unsharded = run_shards("");
        for k in ["2", "4", "8"] {
            assert_eq!(unsharded, run_shards(k), "K={k} must be bit-identical");
        }
    }

    #[test]
    fn zero_shards_are_a_usage_error_everywhere() {
        let err = run_cli(&args(&[
            "match",
            "--objects",
            "x.csv",
            "--functions",
            "y.csv",
            "--shards",
            "0",
        ]))
        .unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("--shards must be at least 1"));

        let err = parse_tenant_spec("t=objects.csv,shards=0").unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("shards must be at least 1"));

        // A valid spec carries the shard count into the tenant config.
        let spec = parse_tenant_spec("t=objects.csv,shards=4").unwrap();
        assert_eq!(spec.config.shards, 4);
    }

    #[test]
    fn serve_with_shards_replays_through_the_sharded_service() {
        let dir = std::env::temp_dir().join("mpq_cli_serve_shards");
        fs::create_dir_all(&dir).unwrap();
        let objects_csv = run_cli(&args(&[
            "generate",
            "--distribution",
            "independent",
            "--objects",
            "400",
            "--dim",
            "2",
            "--seed",
            "31",
        ]))
        .unwrap();
        let opath = dir.join("objects.csv");
        fs::write(&opath, &objects_csv).unwrap();
        let fpath = dir.join("functions.csv");
        fs::write(&fpath, "w0,w1\n0.7,0.3\n0.4,0.6\n0.5,0.5\n").unwrap();

        let out = run_cli(&args(&[
            "serve",
            "--objects",
            opath.to_str().unwrap(),
            "--functions",
            fpath.to_str().unwrap(),
            "--requests",
            "6",
            "--workers",
            "2",
            "--shards",
            "4",
        ]))
        .unwrap();
        assert!(out.contains("in 4 shards via EngineService"), "{out}");
        assert!(out.contains("completed 6"), "{out}");
        assert!(out.contains("shards 4"), "{out}");
        assert!(
            out.contains("all served matchings identical to direct sharded evaluation"),
            "{out}"
        );
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let dir = std::env::temp_dir().join("mpq_cli_dim");
        fs::create_dir_all(&dir).unwrap();
        let opath = dir.join("objects.csv");
        fs::write(&opath, "a,b\n0.5,0.5\n").unwrap();
        let fpath = dir.join("functions.csv");
        fs::write(&fpath, "a,b,c\n0.3,0.3,0.4\n").unwrap();
        let err = run_cli(&args(&[
            "match",
            "--objects",
            opath.to_str().unwrap(),
            "--functions",
            fpath.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.message.contains("dimensionality mismatch"));
    }

    #[test]
    fn out_of_range_objects_are_rejected() {
        let dir = std::env::temp_dir().join("mpq_cli_range");
        fs::create_dir_all(&dir).unwrap();
        let opath = dir.join("objects.csv");
        fs::write(&opath, "a,b\n1.5,0.5\n").unwrap();
        let fpath = dir.join("functions.csv");
        fs::write(&fpath, "a,b\n0.5,0.5\n").unwrap();
        let err = run_cli(&args(&[
            "match",
            "--objects",
            opath.to_str().unwrap(),
            "--functions",
            fpath.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.message.contains("outside [0,1]"), "{}", err.message);
    }

    #[test]
    fn serve_with_data_dir_persists_across_invocations() {
        let dir = std::env::temp_dir().join("mpq_cli_persist");
        let store = dir.join("store");
        let _ = fs::remove_dir_all(&store);
        fs::create_dir_all(&dir).unwrap();
        let objects_csv = run_cli(&args(&[
            "generate",
            "--distribution",
            "independent",
            "--objects",
            "100",
            "--dim",
            "2",
            "--seed",
            "7",
        ]))
        .unwrap();
        let opath = dir.join("objects.csv");
        fs::write(&opath, &objects_csv).unwrap();
        let fpath = dir.join("functions.csv");
        fs::write(&fpath, "w0,w1\n0.8,0.2\n0.2,0.8\n").unwrap();

        // First run builds the engine from the CSV and persists it.
        let first = run_cli(&args(&[
            "serve",
            "--objects",
            opath.to_str().unwrap(),
            "--functions",
            fpath.to_str().unwrap(),
            "--data-dir",
            store.to_str().unwrap(),
            "--requests",
            "4",
            "--workers",
            "1",
        ]))
        .unwrap();
        assert!(first.contains("over 100 objects"), "{first}");
        assert!(first.contains("persisted to"), "{first}");

        // Mutate the persisted engine out of band: the WAL carries it.
        let engine = Engine::open(&store).unwrap();
        engine.insert_object(&[0.99, 0.99]).unwrap();
        drop(engine);

        // Second run reopens from disk — no --objects — and sees the
        // mutated inventory.
        let second = run_cli(&args(&[
            "serve",
            "--functions",
            fpath.to_str().unwrap(),
            "--data-dir",
            store.to_str().unwrap(),
            "--requests",
            "4",
            "--workers",
            "1",
        ]))
        .unwrap();
        assert!(second.contains("opened from"), "{second}");
        assert!(second.contains("over 101 objects"), "{second}");
        assert!(
            second.contains("all served matchings identical"),
            "{second}"
        );
    }

    #[test]
    fn compact_checkpoints_the_wal_and_preserves_the_matching() {
        let store = std::env::temp_dir().join("mpq_cli_compact").join("store");
        let _ = fs::remove_dir_all(&store);

        let mut objects = mpq_rtree::PointSet::new(2);
        for p in [[0.9_f64, 0.1], [0.1, 0.9], [0.5, 0.5]] {
            objects.push(&p);
        }
        let engine = Engine::builder()
            .objects(&objects)
            .data_dir(&store)
            .build()
            .unwrap();
        engine.insert_object(&[0.7, 0.7]).unwrap();
        engine.insert_object(&[0.2, 0.6]).unwrap();
        engine.remove_object(2).unwrap();
        assert!(engine.wal_bytes() > 0);
        let functions = mpq_ta::FunctionSet::from_rows(2, &[vec![0.8, 0.2], vec![0.2, 0.8]]);
        let expected = engine
            .request(&functions)
            .evaluate()
            .unwrap()
            .sorted_pairs();
        drop(engine);

        let report = run_cli(&args(&["compact", "--data-dir", store.to_str().unwrap()])).unwrap();
        assert!(report.contains("-> 0 bytes"), "{report}");

        let reopened = Engine::open(&store).unwrap();
        assert_eq!(reopened.wal_bytes(), 0, "WAL folded into the page file");
        let served = reopened
            .request(&functions)
            .evaluate()
            .unwrap()
            .sorted_pairs();
        assert_eq!(served, expected);

        // Compacting an empty directory is a clean runtime error.
        let missing = std::env::temp_dir().join("mpq_cli_compact").join("nope");
        let err =
            run_cli(&args(&["compact", "--data-dir", missing.to_str().unwrap()])).unwrap_err();
        assert_eq!(err.code, 1);
        assert!(
            err.message.contains("no persisted engine"),
            "{}",
            err.message
        );
    }

    #[test]
    fn compact_routes_through_the_sharded_engine() {
        let store = std::env::temp_dir().join("mpq_cli_compact").join("sharded");
        let _ = fs::remove_dir_all(&store);

        let mut objects = mpq_rtree::PointSet::new(2);
        for i in 0..12u64 {
            let t = i as f64 / 12.0;
            objects.push(&[t, 1.0 - t]);
        }
        let engine = ShardedEngine::builder()
            .objects(&objects)
            .shards(3)
            .data_dir(&store)
            .build()
            .unwrap();
        engine.insert_object(&[0.7, 0.7]).unwrap();
        engine.remove_object(2).unwrap();
        assert!(engine.wal_bytes() > 0);
        let functions = mpq_ta::FunctionSet::from_rows(2, &[vec![0.8, 0.2], vec![0.2, 0.8]]);
        let expected = engine
            .request(&functions)
            .evaluate()
            .unwrap()
            .sorted_pairs();
        drop(engine);

        let report = run_cli(&args(&["compact", "--data-dir", store.to_str().unwrap()])).unwrap();
        assert!(report.contains("3 shards"), "{report}");
        assert!(report.contains("-> 0 bytes"), "{report}");

        // Every shard's WAL was folded; the matching survives the round
        // trip bit-identically.
        let reopened = ShardedEngine::open(&store).unwrap();
        assert_eq!(reopened.wal_bytes(), 0, "all shard WALs folded");
        let served = reopened
            .request(&functions)
            .evaluate()
            .unwrap()
            .sorted_pairs();
        assert_eq!(served, expected);
    }
}
