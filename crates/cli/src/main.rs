//! `mpq` — stable matching of preference queries over CSV inventories.
//!
//! See `mpq --help` or the crate docs of [`mpq_cli`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match mpq_cli::run_cli(&args) {
        Ok(stdout) => {
            print!("{stdout}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{}", e.message);
            ExitCode::from(e.code as u8)
        }
    }
}
