//! `mpq serve --listen` over a real socket: the server starts, serves
//! matchings, hosts multiple tenants (persistent ones included), and
//! shuts down cleanly when dropped.

use std::fs;
use std::net::TcpStream;
use std::time::Duration;

use mpq_cli::{run_cli, start_server};
use mpq_net::HttpClient;

fn args(s: &[&str]) -> Vec<String> {
    s.iter().map(|x| x.to_string()).collect()
}

/// A unique scratch dir per test (temp_dir is shared across runs).
fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mpq_listen_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_objects_csv(dir: &std::path::Path, name: &str, seed: u64) -> String {
    let csv = run_cli(&args(&[
        "generate",
        "--distribution",
        "independent",
        "--objects",
        "300",
        "--dim",
        "2",
        "--seed",
        &seed.to_string(),
    ]))
    .unwrap();
    let path = dir.join(name);
    fs::write(&path, &csv).unwrap();
    path.to_str().unwrap().to_string()
}

const BODY: &str = r#"{"functions":[[0.7,0.3],[0.4,0.6]]}"#;

#[test]
fn single_tenant_serves_over_a_real_socket() {
    let dir = tmp_dir("single");
    let objects = write_objects_csv(&dir, "objects.csv", 41);

    let server = start_server(&args(&[
        "--listen",
        "127.0.0.1:0",
        "--objects",
        &objects,
        "--workers",
        "1",
    ]))
    .unwrap();
    let addr = server.local_addr();

    let mut client = HttpClient::connect(addr).unwrap();
    assert_eq!(client.get("/healthz").unwrap().status, 200);

    // The shorthand tenant is named "default" and is also the sole
    // tenant, so both routes work.
    let resp = client.post_json("/t/default/match", BODY).unwrap();
    assert_eq!(resp.status, 200, "body: {}", resp.text());
    let pairs = mpq_net::decode_pairs(&resp.body).unwrap();
    assert_eq!(pairs.len(), 2);
    let resp = client.post_json("/match", BODY).unwrap();
    assert_eq!(resp.status, 200);

    server.shutdown();
}

#[test]
fn multi_tenant_specs_route_independently_and_persist() {
    let dir = tmp_dir("multi");
    let hotels = write_objects_csv(&dir, "hotels.csv", 42);
    let rooms = write_objects_csv(&dir, "rooms.csv", 43);
    let store = dir.join("rooms_store");
    let store_str = store.to_str().unwrap().to_string();

    {
        let server = start_server(&args(&[
            "--listen",
            "127.0.0.1:0",
            "--tenant",
            &format!("hotels={hotels},workers=1,queue-cap=8"),
            "--tenant",
            &format!("rooms={rooms},data-dir={store_str},workers=1"),
        ]))
        .unwrap();
        let addr = server.local_addr();
        let mut client = HttpClient::connect(addr).unwrap();

        for tenant in ["hotels", "rooms"] {
            let resp = client
                .post_json(&format!("/t/{tenant}/match"), BODY)
                .unwrap();
            assert_eq!(resp.status, 200, "{tenant}: {}", resp.text());
        }
        // Two tenants: plain /match needs a name.
        assert_eq!(client.post_json("/match", BODY).unwrap().status, 404);
        // Drop: clean shutdown, flushing the persistent tenant.
    }

    // The rooms store persisted — reopen it WITHOUT the CSV (empty
    // objects part in the spec).
    let server = start_server(&args(&[
        "--listen",
        "127.0.0.1:0",
        "--tenant",
        &format!("rooms=,data-dir={store_str}"),
    ]))
    .unwrap();
    let mut client = HttpClient::connect(server.local_addr()).unwrap();
    let resp = client.post_json("/t/rooms/match", BODY).unwrap();
    assert_eq!(resp.status, 200, "body: {}", resp.text());
    server.shutdown();
}

#[test]
fn dropping_the_server_closes_the_listener() {
    let dir = tmp_dir("drop");
    let objects = write_objects_csv(&dir, "objects.csv", 44);

    let server = start_server(&args(&["--listen", "127.0.0.1:0", "--objects", &objects])).unwrap();
    let addr = server.local_addr();

    // Alive: a request round-trips.
    let mut client = HttpClient::connect(addr).unwrap();
    assert_eq!(client.get("/healthz").unwrap().status, 200);

    drop(server);

    // Dead: new connections are refused (or immediately closed — the
    // OS may briefly accept into a dying backlog).
    match TcpStream::connect_timeout(&addr, Duration::from_secs(2)) {
        Err(_) => {}
        Ok(stream) => {
            stream
                .set_read_timeout(Some(Duration::from_secs(2)))
                .unwrap();
            use std::io::{Read, Write};
            let mut s = stream;
            let _ = s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
            let mut buf = [0u8; 64];
            // A live server would answer; a dead one EOFs or errors.
            match s.read(&mut buf) {
                Ok(0) => {}
                Ok(_) => panic!("server still answering after drop"),
                Err(_) => {}
            }
        }
    }
}

#[test]
fn listen_mode_usage_errors() {
    // No tenants at all.
    let err = start_server(&args(&["--listen", "127.0.0.1:0"])).unwrap_err();
    assert_eq!(err.code, 2);
    assert!(err.message.contains("--tenant"), "{}", err.message);

    // Malformed tenant specs.
    for bad in [
        "nospec",
        "name=,",               // no objects, no data-dir
        "n=o.csv,workers",      // option without value
        "n=o.csv,bogus=1",      // unknown option
        "n=o.csv,workers=many", // non-integer
    ] {
        let err = start_server(&args(&["--listen", "127.0.0.1:0", "--tenant", bad])).unwrap_err();
        assert_eq!(err.code, 2, "spec {bad:?} should be a usage error");
    }

    // A tenant whose CSV does not exist is a runtime error.
    let err = start_server(&args(&[
        "--listen",
        "127.0.0.1:0",
        "--tenant",
        "ghost=/definitely/not/here.csv",
    ]))
    .unwrap_err();
    assert_eq!(err.code, 1);
}
