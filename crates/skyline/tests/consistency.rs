//! Long-horizon consistency of the maintained skyline against the
//! standalone BBS on realistic distributions: the maintainer must track
//! `compute_skyline_excluding` through hundreds of removals, on the
//! distributions the paper's experiments actually use.
//!
//! Comparisons are on coordinate sets (duplicate groups keep one
//! implementation-defined representative; see the duplicate-semantics
//! note in `mpq_skyline::maintain`).

use std::collections::HashSet;

use mpq_datagen::Distribution;
use mpq_rtree::{RTree, RTreeParams};
use mpq_skyline::{compute_skyline_excluding, SkylineMaintainer};

fn params() -> RTreeParams {
    RTreeParams {
        page_size: 1024,
        min_fill_ratio: 0.4,
        buffer_capacity: 8192,
    }
}

fn point_set_of(entries: impl Iterator<Item = Vec<u64>>) -> Vec<Vec<u64>> {
    let mut v: Vec<Vec<u64>> = entries.collect();
    v.sort_unstable();
    v
}

fn drain_and_compare(dist: Distribution, n: usize, dim: usize, batch: usize, rounds: usize) {
    let ps = dist.generate(n, dim, 4242);
    let tree = RTree::bulk_load(&ps, params());
    let mut m = SkylineMaintainer::build(&tree);
    let mut removed: HashSet<u64> = HashSet::new();

    for round in 0..rounds {
        let victims: Vec<u64> = m.iter().take(batch).map(|e| e.oid).collect();
        if victims.is_empty() {
            break;
        }
        for &v in &victims {
            removed.insert(v);
        }
        m.remove(&victims, &tree);

        let maintained = point_set_of(
            m.iter()
                .map(|e| e.point.iter().map(|c| c.to_bits()).collect()),
        );
        let recomputed = point_set_of(
            compute_skyline_excluding(&tree, |o| removed.contains(&o))
                .into_iter()
                .map(|(_, p)| p.iter().map(|c| c.to_bits()).collect()),
        );
        assert_eq!(
            maintained,
            recomputed,
            "{} dim={dim}: divergence at round {round}",
            dist.name()
        );
        // ids must reference real, unremoved objects with those coords
        for e in m.iter() {
            assert!(!removed.contains(&e.oid));
            assert_eq!(ps.get(e.oid as usize), e.point);
        }
    }
}

#[test]
fn independent_long_drain() {
    drain_and_compare(Distribution::Independent, 6_000, 3, 7, 40);
}

#[test]
fn anti_correlated_long_drain() {
    drain_and_compare(Distribution::AntiCorrelated, 4_000, 3, 9, 30);
}

#[test]
fn correlated_long_drain() {
    // tiny skylines: each removal uncovers deep layers
    drain_and_compare(Distribution::Correlated, 6_000, 3, 2, 40);
}

#[test]
fn clustered_long_drain() {
    drain_and_compare(Distribution::Clustered { clusters: 8 }, 5_000, 3, 5, 30);
}

#[test]
fn zillow_long_drain() {
    // the tie/duplicate-heavy case that exposed the fold-coverage bug
    drain_and_compare(Distribution::Zillow, 5_000, 5, 6, 30);
}

#[test]
fn full_exhaustion_on_small_zillow() {
    let ps = Distribution::Zillow.generate(600, 5, 7);
    let tree = RTree::bulk_load(&ps, params());
    let mut m = SkylineMaintainer::build(&tree);
    let mut drained = 0usize;
    while !m.is_empty() {
        let victims: Vec<u64> = m.iter().take(3).map(|e| e.oid).collect();
        drained += victims.len();
        m.remove(&victims, &tree);
        assert!(drained <= 600);
    }
    assert_eq!(drained, 600, "every object must surface exactly once");
}
