//! Quadratic reference skylines for correctness testing.

use std::collections::HashSet;

use mpq_rtree::PointSet;

use crate::dominance::dominates_or_equal;

/// Skyline object ids (sorted ascending) of the points in `ps` whose ids
/// are not in `excluded`, by exhaustive pairwise comparison.
///
/// Duplicate points keep exactly one representative: the one with the
/// smallest id (matching the "no equal-or-better object" definition with
/// deterministic tie-breaking).
pub fn naive_skyline_excluding(ps: &PointSet, excluded: &HashSet<u64>) -> Vec<u64> {
    let alive: Vec<(u64, &[f64])> = ps
        .iter()
        .map(|(i, p)| (i as u64, p))
        .filter(|(i, _)| !excluded.contains(i))
        .collect();
    let mut out = Vec::new();
    'outer: for &(i, p) in &alive {
        for &(j, q) in &alive {
            if i == j {
                continue;
            }
            if dominates_or_equal(q, p) && (q != p || j < i) {
                continue 'outer;
            }
        }
        out.push(i);
    }
    out.sort_unstable();
    out
}

/// Skyline of all points in `ps` (see [`naive_skyline_excluding`]).
pub fn naive_skyline(ps: &PointSet) -> Vec<u64> {
    naive_skyline_excluding(ps, &HashSet::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_skyline_basic() {
        let mut ps = PointSet::new(2);
        ps.push(&[0.9, 0.1]); // 0: skyline
        ps.push(&[0.1, 0.9]); // 1: skyline
        ps.push(&[0.5, 0.5]); // 2: skyline
        ps.push(&[0.4, 0.4]); // 3: dominated by 2
        assert_eq!(naive_skyline(&ps), vec![0, 1, 2]);
    }

    #[test]
    fn naive_skyline_duplicates_keep_smallest_id() {
        let mut ps = PointSet::new(2);
        ps.push(&[0.5, 0.5]);
        ps.push(&[0.5, 0.5]);
        ps.push(&[0.5, 0.5]);
        assert_eq!(naive_skyline(&ps), vec![0]);
    }

    #[test]
    fn exclusion_changes_result() {
        let mut ps = PointSet::new(2);
        ps.push(&[0.9, 0.9]); // dominates everything
        ps.push(&[0.8, 0.5]);
        ps.push(&[0.5, 0.8]);
        assert_eq!(naive_skyline(&ps), vec![0]);
        let mut ex = HashSet::new();
        ex.insert(0);
        assert_eq!(naive_skyline_excluding(&ps, &ex), vec![1, 2]);
    }

    #[test]
    fn empty_input() {
        let ps = PointSet::new(3);
        assert!(naive_skyline(&ps).is_empty());
    }
}
