//! Dominance tests under the larger-is-better convention.
//!
//! Object `a` *dominates* `b` iff `a[i] >= b[i]` in every dimension and
//! `a != b`. The paper's skyline definition excludes objects for which an
//! "equal or better" object exists, so duplicate points keep exactly one
//! representative in the skyline; pruning therefore uses the weak test
//! [`dominates_or_equal`].

/// `a[i] >= b[i]` for every `i`, with strict inequality somewhere.
#[inline]
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strict = false;
    for i in 0..a.len() {
        if a[i] < b[i] {
            return false;
        }
        if a[i] > b[i] {
            strict = true;
        }
    }
    strict
}

/// `a[i] >= b[i]` for every `i` (equality allowed everywhere). This is
/// the pruning test: a skyline point prunes an R-tree entry when it
/// dominates-or-equals the entry's *upper corner*, because every point
/// inside the entry is then equal-or-worse in all dimensions.
#[inline]
pub fn dominates_or_equal(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).all(|(&x, &y)| x >= y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_dominance_requires_one_strict_coordinate() {
        assert!(dominates(&[0.5, 0.5], &[0.5, 0.4]));
        assert!(dominates(&[0.6, 0.6], &[0.5, 0.5]));
        assert!(
            !dominates(&[0.5, 0.5], &[0.5, 0.5]),
            "equal points do not dominate"
        );
        assert!(!dominates(&[0.5, 0.4], &[0.4, 0.5]), "incomparable points");
        assert!(!dominates(&[0.4, 0.5], &[0.5, 0.4]));
    }

    #[test]
    fn weak_dominance_includes_equality() {
        assert!(dominates_or_equal(&[0.5, 0.5], &[0.5, 0.5]));
        assert!(dominates_or_equal(&[0.5, 0.6], &[0.5, 0.5]));
        assert!(!dominates_or_equal(&[0.5, 0.4], &[0.5, 0.5]));
    }

    #[test]
    fn dominance_is_antisymmetric_on_distinct_points() {
        let a = [0.7, 0.3, 0.9];
        let b = [0.6, 0.3, 0.8];
        assert!(dominates(&a, &b));
        assert!(!dominates(&b, &a));
    }
}
