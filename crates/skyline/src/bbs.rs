//! One-shot Branch-and-Bound Skyline (BBS) computation.
//!
//! This is the standalone variant of the traversal inside
//! [`crate::maintain::SkylineMaintainer`], without plist bookkeeping. It
//! exists for two reasons: as an independently testable reference for the
//! maintainer, and as the building block of the *SB-rescan* ablation
//! (recompute the skyline from scratch at every matching loop, which the
//! paper dismisses as "unacceptably expensive" — our ablation benchmark
//! quantifies that claim).
//!
//! [`compute_skyline_excluding`] treats a caller-chosen set of object ids
//! as absent: excluded points neither enter the skyline nor prune other
//! entries, which is exactly the semantics needed when objects have been
//! assigned but not physically deleted from the tree.

use std::collections::BinaryHeap;

use mpq_rtree::geometry::mindist_to_best;
use mpq_rtree::pager::PageId;
use mpq_rtree::{Node, NodeSource};

use crate::dominance::dominates_or_equal;

enum Cand {
    Point { oid: u64, point: Box<[f64]> },
    Subtree { pid: PageId, hi: Box<[f64]> },
}

impl Cand {
    fn hi(&self) -> &[f64] {
        match self {
            Cand::Point { point, .. } => point,
            Cand::Subtree { hi, .. } => hi,
        }
    }
}

struct Item {
    key: f64,
    kind: u8,
    id: u64,
    cand: Cand,
}

impl Item {
    fn new(cand: Cand) -> Item {
        let key = mindist_to_best(cand.hi());
        let (kind, id) = match &cand {
            Cand::Point { oid, .. } => (0u8, *oid),
            Cand::Subtree { pid, .. } => (1u8, pid.0 as u64),
        };
        Item {
            key,
            kind,
            id,
            cand,
        }
    }
}

impl PartialEq for Item {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for Item {}
impl PartialOrd for Item {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Item {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .key
            .total_cmp(&self.key)
            .then_with(|| other.kind.cmp(&self.kind))
            .then_with(|| other.id.cmp(&self.id))
    }
}

/// Reusable priority-queue storage for BBS traversals.
///
/// The *SB-rescan* ablation recomputes the skyline once per matching
/// loop; without reuse each recomputation allocates (and drops) the
/// traversal heap. A `BbsScratch` keeps the heap's backing storage alive
/// across calls to [`compute_skyline_excluding_with`]. The scratch is
/// opaque and starts every traversal empty — reuse affects allocation
/// only, never results.
#[derive(Default)]
pub struct BbsScratch(Vec<Item>);

impl std::fmt::Debug for BbsScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BbsScratch")
            .field("capacity", &self.0.capacity())
            .finish()
    }
}

/// Skyline of every object in the tree, as `(oid, point)` pairs in BBS
/// discovery order (ascending L1 distance to the best corner).
///
/// Generic over the node access path: pass a `&RTree` directly, or a
/// run-scoped [`mpq_rtree::IoSession`] to attribute the page traffic.
pub fn compute_skyline<R: NodeSource>(tree: &R) -> Vec<(u64, Box<[f64]>)> {
    compute_skyline_excluding(tree, |_| false)
}

/// Skyline of the objects for which `excluded(oid)` is `false`.
///
/// Excluded objects are invisible: they are skipped when popped and never
/// used for pruning, so objects dominated *only* by excluded objects are
/// reported.
pub fn compute_skyline_excluding<R: NodeSource>(
    tree: &R,
    excluded: impl Fn(u64) -> bool,
) -> Vec<(u64, Box<[f64]>)> {
    let mut sky = Vec::new();
    compute_skyline_excluding_with(tree, excluded, &mut BbsScratch::default(), &mut sky);
    sky
}

/// Like [`compute_skyline_excluding`], but reusing the traversal heap of
/// `scratch` and writing the skyline into `sky` (cleared first), so
/// repeated recomputations stop churning the allocator.
pub fn compute_skyline_excluding_with<R: NodeSource>(
    tree: &R,
    excluded: impl Fn(u64) -> bool,
    scratch: &mut BbsScratch,
    sky: &mut Vec<(u64, Box<[f64]>)>,
) {
    let mut storage = std::mem::take(&mut scratch.0);
    storage.clear();
    let mut heap: BinaryHeap<Item> = BinaryHeap::from(storage);
    heap.push(Item::new(Cand::Subtree {
        pid: tree.root_page(),
        hi: vec![1.0; tree.dim()].into(),
    }));
    sky.clear();

    let dominated =
        |sky: &[(u64, Box<[f64]>)], x: &[f64]| sky.iter().any(|(_, p)| dominates_or_equal(p, x));

    while let Some(item) = heap.pop() {
        if dominated(sky, item.cand.hi()) {
            continue;
        }
        match item.cand {
            Cand::Point { oid, point } => {
                // exclusion was checked before pushing; defensive re-check
                if !excluded(oid) {
                    sky.push((oid, point));
                }
            }
            Cand::Subtree { pid, .. } => {
                let node = tree.read_node(pid);
                match &*node {
                    Node::Leaf(leaf) => {
                        for (oid, p) in leaf.iter() {
                            if excluded(oid) || dominated(sky, p) {
                                continue;
                            }
                            heap.push(Item::new(Cand::Point {
                                oid,
                                point: p.into(),
                            }));
                        }
                    }
                    Node::Inner(inner) => {
                        for i in 0..inner.len() {
                            if dominated(sky, inner.hi(i)) {
                                continue;
                            }
                            heap.push(Item::new(Cand::Subtree {
                                pid: inner.child(i),
                                hi: inner.hi(i).into(),
                            }));
                        }
                    }
                }
            }
        }
    }
    scratch.0 = heap.into_vec();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maintain::SkylineMaintainer;
    use crate::naive::naive_skyline_excluding;
    use mpq_rtree::{PointSet, RTree, RTreeParams};
    use std::collections::HashSet;

    fn params() -> RTreeParams {
        RTreeParams {
            page_size: 256,
            min_fill_ratio: 0.4,
            buffer_capacity: 4096,
        }
    }

    fn seeded_points(n: usize, dim: usize, seed: u64) -> PointSet {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut ps = PointSet::with_capacity(dim, n);
        for _ in 0..n {
            let p: Vec<f64> = (0..dim).map(|_| next()).collect();
            ps.push(&p);
        }
        ps
    }

    #[test]
    fn bbs_matches_naive_reference() {
        for seed in [5, 6] {
            let ps = seeded_points(700, 3, seed);
            let tree = RTree::bulk_load(&ps, params());
            let mut got: Vec<u64> = compute_skyline(&tree).into_iter().map(|(o, _)| o).collect();
            got.sort_unstable();
            assert_eq!(got, naive_skyline_excluding(&ps, &HashSet::new()));
        }
    }

    #[test]
    fn reused_scratch_matches_fresh_computation() {
        let ps = seeded_points(600, 3, 9);
        let tree = RTree::bulk_load(&ps, params());
        let mut scratch = BbsScratch::default();
        let mut sky = Vec::new();
        for round in 0..3 {
            // grow the exclusion set across rounds like SB-rescan does
            let excl: HashSet<u64> = (0..round * 40).map(|i| i as u64).collect();
            compute_skyline_excluding_with(&tree, |o| excl.contains(&o), &mut scratch, &mut sky);
            let fresh = compute_skyline_excluding(&tree, |o| excl.contains(&o));
            assert_eq!(sky, fresh, "round {round} diverged under scratch reuse");
        }
    }

    #[test]
    fn bbs_emits_in_mindist_order() {
        let ps = seeded_points(500, 2, 18);
        let tree = RTree::bulk_load(&ps, params());
        let sky = compute_skyline(&tree);
        let dists: Vec<f64> = sky
            .iter()
            .map(|(_, p)| p.iter().map(|&c| 1.0 - c).sum())
            .collect();
        assert!(
            dists.windows(2).all(|w| w[0] <= w[1] + 1e-12),
            "BBS must be progressive (ascending mindist)"
        );
    }

    #[test]
    fn exclusion_reveals_second_layer() {
        let ps = seeded_points(800, 2, 20);
        let tree = RTree::bulk_load(&ps, params());
        let first: HashSet<u64> = compute_skyline(&tree).into_iter().map(|(o, _)| o).collect();
        let mut second: Vec<u64> = compute_skyline_excluding(&tree, |o| first.contains(&o))
            .into_iter()
            .map(|(o, _)| o)
            .collect();
        second.sort_unstable();
        assert_eq!(second, naive_skyline_excluding(&ps, &first));
        assert!(second.iter().all(|o| !first.contains(o)));
    }

    #[test]
    fn standalone_bbs_agrees_with_maintainer() {
        let ps = seeded_points(600, 4, 21);
        let tree = RTree::bulk_load(&ps, params());
        let m = SkylineMaintainer::build(&tree);
        let mut a: Vec<u64> = m.iter().map(|e| e.oid).collect();
        a.sort_unstable();
        let mut b: Vec<u64> = compute_skyline(&tree).into_iter().map(|(o, _)| o).collect();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_tree_has_empty_skyline() {
        let tree = RTree::new(3, params());
        assert!(compute_skyline(&tree).is_empty());
    }
}
