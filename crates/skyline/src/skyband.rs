//! K-skyband computation: the objects dominated by fewer than `k`
//! others.
//!
//! The skyline is the 1-skyband. The k-skyband is the natural
//! generalization when each user may need up to `k` alternatives (e.g.
//! presenting a short list instead of a single best offer): no object
//! outside the k-skyband can ever be among *any* monotone function's
//! top-k results, by the same argument that puts every top-1 result on
//! the skyline.
//!
//! The implementation extends BBS (Papadias et al.): entries are popped
//! in ascending L1 distance to the best corner, but an entry is pruned
//! only when **at least `k`** already-reported skyband points dominate
//! its upper corner; a popped point with fewer than `k` dominators
//! joins the skyband. Correctness follows from the BBS pop order: every
//! point that could dominate a candidate pops (and is reported or
//! pruned) before the candidate, and pruned points cannot dominate
//! anything their own `k` dominators do not already dominate... for
//! points; for duplicates the weak-dominance count is used, matching
//! [`crate::naive`]'s conventions.

use std::collections::BinaryHeap;

use mpq_rtree::geometry::mindist_to_best;
use mpq_rtree::pager::PageId;
use mpq_rtree::{Node, RTree};

use crate::dominance::dominates_or_equal;

enum Cand {
    Point { oid: u64, point: Box<[f64]> },
    Subtree { pid: PageId, hi: Box<[f64]> },
}

impl Cand {
    fn hi(&self) -> &[f64] {
        match self {
            Cand::Point { point, .. } => point,
            Cand::Subtree { hi, .. } => hi,
        }
    }
}

struct Item {
    key: f64,
    kind: u8,
    id: u64,
    cand: Cand,
}

impl Item {
    fn new(cand: Cand) -> Item {
        let key = mindist_to_best(cand.hi());
        let (kind, id) = match &cand {
            Cand::Point { oid, .. } => (0u8, *oid),
            Cand::Subtree { pid, .. } => (1u8, pid.0 as u64),
        };
        Item {
            key,
            kind,
            id,
            cand,
        }
    }
}

impl PartialEq for Item {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for Item {}
impl PartialOrd for Item {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Item {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .key
            .total_cmp(&self.key)
            .then_with(|| other.kind.cmp(&self.kind))
            .then_with(|| other.id.cmp(&self.id))
    }
}

/// The `k`-skyband of the tree's objects: every `(oid, point)` weakly
/// dominated by fewer than `k` other objects. `k = 1` is the skyline.
///
/// # Panics
/// Panics if `k == 0`.
pub fn compute_skyband(tree: &RTree, k: usize) -> Vec<(u64, Box<[f64]>)> {
    assert!(k >= 1, "the 0-skyband is empty by definition");
    let mut heap: BinaryHeap<Item> = BinaryHeap::new();
    heap.push(Item::new(Cand::Subtree {
        pid: tree.root_page(),
        hi: vec![1.0; tree.dim()].into(),
    }));
    let mut band: Vec<(u64, Box<[f64]>)> = Vec::new();

    // count of reported skyband points weakly dominating `x`
    let dominators = |band: &[(u64, Box<[f64]>)], x: &[f64]| -> usize {
        band.iter()
            .filter(|(_, p)| dominates_or_equal(p, x))
            .count()
    };

    while let Some(item) = heap.pop() {
        if dominators(&band, item.cand.hi()) >= k {
            continue;
        }
        match item.cand {
            Cand::Point { oid, point } => band.push((oid, point)),
            Cand::Subtree { pid, .. } => {
                let node = tree.read_node(pid);
                match &*node {
                    Node::Leaf(leaf) => {
                        for (oid, p) in leaf.iter() {
                            if dominators(&band, p) >= k {
                                continue;
                            }
                            heap.push(Item::new(Cand::Point {
                                oid,
                                point: p.into(),
                            }));
                        }
                    }
                    Node::Inner(inner) => {
                        for i in 0..inner.len() {
                            if dominators(&band, inner.hi(i)) >= k {
                                continue;
                            }
                            heap.push(Item::new(Cand::Subtree {
                                pid: inner.child(i),
                                hi: inner.hi(i).into(),
                            }));
                        }
                    }
                }
            }
        }
    }
    band
}

/// Quadratic reference: ids of points weakly dominated by fewer than
/// `k` others (sorted ascending). A point weakly dominates another when
/// it is `>=` everywhere and either differs somewhere or (for exact
/// duplicates) has a smaller id — so `d` identical copies count as
/// `0, 1, .., d-1` dominators respectively, mirroring the BBS pop
/// order.
pub fn naive_skyband(ps: &mpq_rtree::PointSet, k: usize) -> Vec<u64> {
    assert!(k >= 1);
    let mut out = Vec::new();
    for (i, p) in ps.iter() {
        let mut dominators = 0usize;
        for (j, q) in ps.iter() {
            if i == j {
                continue;
            }
            if dominates_or_equal(q, p) && (q != p || j < i) {
                dominators += 1;
            }
        }
        if dominators < k {
            out.push(i as u64);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpq_rtree::{PointSet, RTreeParams};

    fn params() -> RTreeParams {
        RTreeParams {
            page_size: 256,
            min_fill_ratio: 0.4,
            buffer_capacity: 4096,
        }
    }

    fn seeded_points(n: usize, dim: usize, seed: u64) -> PointSet {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut ps = PointSet::with_capacity(dim, n);
        for _ in 0..n {
            let p: Vec<f64> = (0..dim).map(|_| next()).collect();
            ps.push(&p);
        }
        ps
    }

    #[test]
    fn one_skyband_is_the_skyline() {
        let ps = seeded_points(500, 3, 1);
        let tree = RTree::bulk_load(&ps, params());
        let mut band: Vec<u64> = compute_skyband(&tree, 1)
            .into_iter()
            .map(|(o, _)| o)
            .collect();
        band.sort_unstable();
        let mut sky: Vec<u64> = crate::bbs::compute_skyline(&tree)
            .into_iter()
            .map(|(o, _)| o)
            .collect();
        sky.sort_unstable();
        assert_eq!(band, sky);
    }

    #[test]
    fn skyband_matches_naive_for_small_k() {
        for k in [1usize, 2, 3, 5] {
            let ps = seeded_points(300, 2, k as u64 + 10);
            let tree = RTree::bulk_load(&ps, params());
            let mut got: Vec<u64> = compute_skyband(&tree, k)
                .into_iter()
                .map(|(o, _)| o)
                .collect();
            got.sort_unstable();
            assert_eq!(got, naive_skyband(&ps, k), "k = {k}");
        }
    }

    #[test]
    fn skyband_is_monotone_in_k() {
        let ps = seeded_points(400, 3, 30);
        let tree = RTree::bulk_load(&ps, params());
        let mut prev = 0usize;
        for k in 1..=4 {
            let band = compute_skyband(&tree, k);
            assert!(band.len() >= prev, "skyband must grow with k");
            prev = band.len();
        }
    }

    #[test]
    fn duplicates_occupy_band_slots() {
        let mut ps = PointSet::new(2);
        for _ in 0..4 {
            ps.push(&[0.9, 0.9]);
        }
        ps.push(&[0.1, 0.1]);
        let tree = RTree::bulk_load(&ps, params());
        assert_eq!(compute_skyband(&tree, 1).len(), 1);
        assert_eq!(compute_skyband(&tree, 2).len(), 2);
        // with k = 5 even the dominated point and all copies qualify
        assert_eq!(compute_skyband(&tree, 5).len(), 5);
    }

    #[test]
    fn large_k_returns_everything() {
        let ps = seeded_points(120, 2, 40);
        let tree = RTree::bulk_load(&ps, params());
        assert_eq!(compute_skyband(&tree, 1_000).len(), 120);
    }

    #[test]
    #[should_panic(expected = "0-skyband")]
    fn zero_k_is_rejected() {
        let ps = seeded_points(10, 2, 50);
        let tree = RTree::bulk_load(&ps, params());
        let _ = compute_skyband(&tree, 0);
    }
}
