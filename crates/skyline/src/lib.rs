//! # mpq-skyline — BBS skyline computation with incremental maintenance
//!
//! The skyline of an object set `O` (larger-is-better convention) is the
//! maximal subset of objects not dominated by any other object. The
//! observation driving the paper's SB matcher is that *the top-1 object
//! of every monotone preference function lies in the skyline*, so the
//! stable-matching loop only ever needs the skyline of the remaining
//! objects.
//!
//! This crate implements:
//!
//! * [`dominance`] — dominance tests under the larger-is-better
//!   convention.
//! * [`bbs`] — **Branch-and-Bound Skyline** (Papadias et al., TODS 2005)
//!   over the paged R-tree of [`mpq_rtree`], expanding entries in
//!   ascending L1 distance to the best corner of the space.
//! * [`maintain`] — the paper's §IV-B **incremental maintenance**: every
//!   entry pruned during BBS is remembered in the *pruned list* (`plist`)
//!   of exactly one dominating skyline object; when a skyline object is
//!   removed (assigned to a user), its plist entries are either re-homed
//!   to another dominator or fed back into the BBS heap, and the
//!   traversal resumes. Only the fraction of the tree that becomes
//!   *newly undominated* is ever read again.
//! * [`naive`] — quadratic reference implementations used by tests.
//!
//! ```
//! use mpq_rtree::{PointSet, RTree, RTreeParams};
//! use mpq_skyline::SkylineMaintainer;
//!
//! let mut ps = PointSet::new(2);
//! for p in [[0.9_f64, 0.2], [0.2, 0.9], [0.6, 0.6], [0.3, 0.3], [0.5, 0.55]] {
//!     ps.push(&p);
//! }
//! let tree = RTree::bulk_load(&ps, RTreeParams::default());
//! let mut sky = SkylineMaintainer::build(&tree);
//! let mut ids: Vec<u64> = sky.iter().map(|e| e.oid).collect();
//! ids.sort_unstable();
//! assert_eq!(ids, vec![0, 1, 2]); // (0.3,0.3) and (0.5,0.55) are dominated by (0.6,0.6)
//!
//! // Assigning object 2 promotes (0.5,0.55), which only (0.6,0.6) dominated:
//! sky.remove(&[2], &tree);
//! let mut ids: Vec<u64> = sky.iter().map(|e| e.oid).collect();
//! ids.sort_unstable();
//! assert_eq!(ids, vec![0, 1, 4]);
//! ```

#![warn(missing_docs)]

pub mod bbs;
pub mod dominance;
pub mod maintain;
pub mod naive;
pub mod skyband;

pub use bbs::{
    compute_skyline, compute_skyline_excluding, compute_skyline_excluding_with, BbsScratch,
};
pub use maintain::{SkylineEntry, SkylineMaintainer, SkylineStats};
pub use skyband::compute_skyband;
