//! Incremental skyline maintenance with pruned-entry lists (§IV-B of the
//! paper).
//!
//! [`SkylineMaintainer`] runs BBS once over the R-tree and remembers, for
//! every entry it prunes, *which* skyline object pruned it (each entry is
//! kept in the `plist` of exactly one dominator, bounding memory by the
//! number of pruned entries). When skyline objects are removed — because
//! the SB matcher assigned them to users — their plist entries are
//! re-homed to another dominating skyline object where possible;
//! exclusively-dominated entries go back into the BBS priority queue
//! (`Scand` in the paper) and the traversal resumes, reading only pages
//! that have become potentially undominated.
//!
//! ## Dominance-scan acceleration
//!
//! Dominance tests against the skyline are the CPU hot spot of BBS-style
//! algorithms. Two standard devices are used (neither affects results):
//!
//! * a skyline object whose *coordinate sum* is smaller than the
//!   candidate's cannot dominate it (componentwise ≥ implies sum ≥), so
//!   objects are scanned in descending-sum order and the scan stops at
//!   the first object whose sum falls below the candidate's (minus an
//!   f64 rounding slack);
//! * skyline objects live in a stable slab (tombstoned on removal), so
//!   plist ownership survives removals without index fix-ups, and the
//!   descending-sum order array is rebuilt only after enough changes
//!   accumulate.

use std::collections::BinaryHeap;
use std::collections::HashMap;
use std::sync::Arc;

use mpq_rtree::geometry::mindist_to_best;
use mpq_rtree::pager::PageId;
use mpq_rtree::{Node, NodeSource};

use crate::dominance::dominates_or_equal;

/// Tolerance for the coordinate-sum fast path in dominance scans: an
/// object whose coordinate sum is smaller than the candidate's (beyond
/// accumulated f64 rounding) cannot dominate it.
const SUM_SLACK: f64 = 1e-9;

/// A borrowed view of one skyline member.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkylineEntry<'a> {
    /// Object id.
    pub oid: u64,
    /// The object's attribute vector.
    pub point: &'a [f64],
}

/// Counters describing the work done by skyline computation/maintenance.
#[derive(Debug, Default, Clone, Copy)]
pub struct SkylineStats {
    /// R-tree nodes expanded (each expansion costs one logical page read).
    pub nodes_expanded: u64,
    /// Entries placed into some skyline object's plist.
    pub entries_pruned: u64,
    /// plist entries moved to a new owner during maintenance.
    pub entries_rehomed: u64,
    /// plist entries pushed back into the candidate heap during
    /// maintenance (exclusively dominated by removed objects).
    pub entries_reheaped: u64,
    /// Points promoted into the skyline.
    pub points_promoted: u64,
    /// Point-vs-point / point-vs-corner dominance tests performed.
    pub dominance_checks: u64,
}

/// An entry pruned by (and owned by) a skyline object, or queued in the
/// candidate heap.
#[derive(Debug, Clone)]
enum Pruned {
    Point { oid: u64, point: Box<[f64]> },
    Subtree { pid: PageId, hi: Box<[f64]> },
}

impl Pruned {
    /// Upper corner: the best point the entry could contain.
    #[inline]
    fn hi(&self) -> &[f64] {
        match self {
            Pruned::Point { point, .. } => point,
            Pruned::Subtree { hi, .. } => hi,
        }
    }

    fn heap_entry(self) -> HeapEntry {
        let key = mindist_to_best(self.hi());
        let (kind, id) = match &self {
            Pruned::Point { oid, .. } => (0u8, *oid),
            Pruned::Subtree { pid, .. } => (1u8, pid.0 as u64),
        };
        HeapEntry {
            key,
            kind,
            id,
            payload: self,
        }
    }
}

/// Candidate-heap entry, popped in ascending `key` (L1 mindist to the
/// best corner), with deterministic tie-breaking: points before subtrees,
/// then ascending id.
#[derive(Debug)]
struct HeapEntry {
    key: f64,
    kind: u8,
    id: u64,
    payload: Pruned,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Inverted: BinaryHeap pops the max, we want the min key.
        other
            .key
            .total_cmp(&self.key)
            .then_with(|| other.kind.cmp(&self.kind))
            .then_with(|| other.id.cmp(&self.id))
    }
}

#[derive(Debug, Clone)]
struct SkyObj {
    oid: u64,
    point: Box<[f64]>,
    /// Cached coordinate sum for the dominance fast path.
    sum: f64,
    /// Entries this object pruned (it is their exclusive owner). Behind
    /// an `Arc` so snapshot clones (seeded evaluation) share the pruned
    /// entries — collectively O(inventory) — copy-on-write: a clone is
    /// O(skyline), and only the plists a mutation actually touches are
    /// ever deep-copied.
    plist: Arc<Vec<Pruned>>,
}

/// Take a plist by value: the cheap move when this maintainer is the
/// only owner, a deep copy when a snapshot still shares it.
fn take_plist(plist: Arc<Vec<Pruned>>) -> Vec<Pruned> {
    Arc::try_unwrap(plist).unwrap_or_else(|shared| (*shared).clone())
}

/// The maintained skyline of an R-tree-indexed object set.
///
/// Build it once with [`SkylineMaintainer::build`], then call
/// [`SkylineMaintainer::remove`] as objects get assigned; the structure
/// incrementally promotes newly undominated objects.
///
/// The maintainer does not hold a borrow of the tree: the methods that
/// traverse pages take the node source per call, so the same maintainer
/// state can be driven through a bare `&RTree` or a run-scoped
/// [`mpq_rtree::IoSession`] owned alongside it. Callers must pass a
/// source backed by the same tree across calls (page ids recorded in the
/// plists are meaningless in any other tree).
pub struct SkylineMaintainer {
    /// Stable slab: `None` = removed. plist owners are slab indices.
    slab: Vec<Option<SkyObj>>,
    alive: usize,
    by_oid: HashMap<u64, usize>,
    /// Slab indices sorted by coordinate sum descending (may contain
    /// tombstones; excludes entries promoted after the last rebuild).
    order: Vec<u32>,
    /// Slab indices promoted since the last `order` rebuild.
    fresh: Vec<u32>,
    /// Removals since the last rebuild (tombstones inside `order`).
    stale: usize,
    heap: BinaryHeap<HeapEntry>,
    /// Objects that entered the skyline since the last [`Self::remove`]
    /// call drained it (promotions and duplicate-representative swaps).
    entered: Vec<(u64, Box<[f64]>)>,
    stats: SkylineStats,
}

/// Snapshotting support for seeded evaluation: between calls the
/// candidate heap is always drained (every public mutator ends in the
/// internal BBS drain), so a clone only has to copy the slab, the
/// lookup maps and the order index — never in-flight heap entries.
/// The plists are shared copy-on-write, so the copy is O(skyline).
impl Clone for SkylineMaintainer {
    fn clone(&self) -> SkylineMaintainer {
        debug_assert!(
            self.heap.is_empty(),
            "maintainer cloned with a non-drained candidate heap"
        );
        SkylineMaintainer {
            slab: self.slab.clone(),
            alive: self.alive,
            by_oid: self.by_oid.clone(),
            order: self.order.clone(),
            fresh: self.fresh.clone(),
            stale: self.stale,
            heap: BinaryHeap::new(),
            entered: self.entered.clone(),
            stats: self.stats,
        }
    }
}

impl SkylineMaintainer {
    /// Compute the initial skyline of the whole tree (BBS), recording
    /// pruned entries for later maintenance.
    pub fn build<R: NodeSource>(tree: &R) -> SkylineMaintainer {
        let mut m = SkylineMaintainer {
            slab: Vec::new(),
            alive: 0,
            by_oid: HashMap::new(),
            order: Vec::new(),
            fresh: Vec::new(),
            stale: 0,
            heap: BinaryHeap::new(),
            entered: Vec::new(),
            stats: SkylineStats::default(),
        };
        m.heap.push(
            Pruned::Subtree {
                pid: tree.root_page(),
                hi: vec![1.0; tree.dim()].into(),
            }
            .heap_entry(),
        );
        m.run(tree);
        m.rebuild_order();
        m.entered.clear(); // build's "entries" are the initial skyline
        m
    }

    /// Number of current skyline objects.
    #[inline]
    pub fn len(&self) -> usize {
        self.alive
    }

    /// True iff the skyline is empty (the object set is exhausted).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.alive == 0
    }

    /// True iff `oid` is currently a skyline object.
    pub fn contains(&self, oid: u64) -> bool {
        self.by_oid.contains_key(&oid)
    }

    /// The attribute vector of skyline object `oid`, if present.
    pub fn get(&self, oid: u64) -> Option<&[f64]> {
        self.by_oid
            .get(&oid)
            .and_then(|&i| self.slab[i].as_ref())
            .map(|o| &*o.point)
    }

    /// Iterate over the current skyline. Use [`SkylineMaintainer::len`]
    /// for the count.
    pub fn iter(&self) -> impl Iterator<Item = SkylineEntry<'_>> + '_ {
        self.slab.iter().filter_map(|slot| {
            slot.as_ref().map(|o| SkylineEntry {
                oid: o.oid,
                point: &o.point,
            })
        })
    }

    /// Work counters accumulated since construction.
    pub fn stats(&self) -> SkylineStats {
        self.stats
    }

    /// Remove assigned skyline objects and restore the skyline property
    /// over the remaining set, reading any newly undominated pages
    /// through `tree`. Returns the objects *promoted into* the skyline
    /// by this removal (in promotion order).
    ///
    /// # Panics
    /// Panics if any of the `oids` is not currently in the skyline —
    /// removing a non-skyline object through the maintainer is a logic
    /// error in the caller (the SB algorithm only assigns skyline
    /// objects).
    pub fn remove<R: NodeSource>(&mut self, oids: &[u64], tree: &R) -> Vec<(u64, Box<[f64]>)> {
        let mut orphaned: Vec<Pruned> = Vec::new();
        for &oid in oids {
            let idx = self
                .by_oid
                .remove(&oid)
                .unwrap_or_else(|| panic!("object {oid} is not in the skyline"));
            let obj = self.slab[idx].take().expect("slab and by_oid in sync");
            self.alive -= 1;
            self.stale += 1;
            orphaned.extend(take_plist(obj.plist));
        }

        // Re-home entries still dominated by a surviving skyline object;
        // the rest become candidates (the paper's `Scand`).
        for e in orphaned {
            if let Some(owner) = self.find_dominator(e.hi()) {
                self.stats.entries_rehomed += 1;
                self.assign_to_owner(owner, e);
            } else {
                self.stats.entries_reheaped += 1;
                self.heap.push(e.heap_entry());
            }
        }

        self.run(tree);
        std::mem::take(&mut self.entered)
    }

    /// Re-admit a previously removed object without touching the tree.
    ///
    /// This is the inverse of [`SkylineMaintainer::remove`] for seeded
    /// evaluation: an object peeled for one request's exclusion set
    /// comes back when the next request no longer excludes it. If a
    /// live skyline object dominates (or equals) the point it is
    /// recorded in that owner's plist; otherwise it is promoted and
    /// every live member it now dominates is demoted into its plist
    /// (along with their own plists). Purely in-memory — no pages are
    /// read — and it does not log to the promotion journal drained by
    /// [`SkylineMaintainer::remove`].
    ///
    /// # Panics
    /// Panics if `oid` is already in the skyline.
    pub fn insert(&mut self, oid: u64, point: Box<[f64]>) {
        assert!(
            !self.by_oid.contains_key(&oid),
            "object {oid} is already in the skyline"
        );
        debug_assert!(self.heap.is_empty());
        if let Some(owner) = self.find_dominator(&point) {
            self.stats.entries_pruned += 1;
            self.assign_to_owner(owner, Pruned::Point { oid, point });
            return;
        }
        // Nobody dominates-or-equals the point, so no live member can
        // be coordinate-equal to it: everything it dominates-or-equals
        // is strictly beneath it and must leave the skyline.
        let mut plist: Vec<Pruned> = Vec::new();
        for i in 0..self.slab.len() {
            let demote = match self.slab[i].as_ref() {
                Some(obj) => {
                    self.stats.dominance_checks += 1;
                    dominates_or_equal(&point, &obj.point)
                }
                None => false,
            };
            if demote {
                let obj = self.slab[i].take().expect("just matched Some");
                self.alive -= 1;
                self.stale += 1;
                self.by_oid.remove(&obj.oid);
                plist.push(Pruned::Point {
                    oid: obj.oid,
                    point: obj.point,
                });
                plist.extend(take_plist(obj.plist));
                self.stats.entries_pruned += 1;
            }
        }
        self.stats.points_promoted += 1;
        self.alive += 1;
        let sum = point.iter().sum();
        let idx = self.slab.len();
        self.by_oid.insert(oid, idx);
        self.slab.push(Some(SkyObj {
            oid,
            point,
            sum,
            plist: Arc::new(plist),
        }));
        self.fresh.push(idx as u32);
    }

    /// Approximate heap footprint of the maintained state (slab,
    /// plists, lookup maps), for cache byte accounting of snapshots.
    pub fn approx_bytes(&self) -> usize {
        let mut bytes = std::mem::size_of::<SkylineMaintainer>()
            + self.slab.capacity() * std::mem::size_of::<Option<SkyObj>>()
            + (self.order.capacity() + self.fresh.capacity()) * std::mem::size_of::<u32>()
            + self.by_oid.len() * (std::mem::size_of::<u64>() + std::mem::size_of::<usize>());
        for obj in self.slab.iter().flatten() {
            bytes += obj.point.len() * std::mem::size_of::<f64>();
            bytes += obj.plist.capacity() * std::mem::size_of::<Pruned>();
            for e in obj.plist.iter() {
                bytes += std::mem::size_of_val(e.hi());
            }
        }
        bytes
    }

    /// Put a pruned entry into a skyline object's plist.
    ///
    /// Note on duplicates: when several objects share identical
    /// coordinates, exactly one of them represents the group in the
    /// skyline, but *which* one is implementation-defined — a duplicate
    /// may be hidden inside an unexpanded subtree whose upper corner
    /// equals the representative, so a smallest-id convention cannot be
    /// maintained without defeating the lazy plist design. Removing the
    /// representative eventually surfaces the remaining duplicates.
    fn assign_to_owner(&mut self, owner: usize, entry: Pruned) {
        let plist = &mut self.slab[owner].as_mut().expect("owner is alive").plist;
        Arc::make_mut(plist).push(entry);
    }

    /// Drain the candidate heap: standard BBS with plist recording.
    fn run<R: NodeSource>(&mut self, tree: &R) {
        while let Some(e) = self.heap.pop() {
            if let Some(owner) = self.find_dominator(e.payload.hi()) {
                self.stats.entries_pruned += 1;
                self.assign_to_owner(owner, e.payload);
                continue;
            }
            match e.payload {
                Pruned::Point { oid, point } => self.promote(oid, point),
                Pruned::Subtree { pid, .. } => {
                    let node = tree.read_node(pid);
                    self.stats.nodes_expanded += 1;
                    self.expand(&node);
                }
            }
        }
    }

    /// Push a node's children into the heap, pruning what the current
    /// skyline already dominates (with plist recording).
    fn expand(&mut self, node: &Node) {
        match node {
            Node::Leaf(leaf) => {
                for (oid, p) in leaf.iter() {
                    let cand = Pruned::Point {
                        oid,
                        point: p.into(),
                    };
                    if let Some(owner) = self.find_dominator(p) {
                        self.stats.entries_pruned += 1;
                        self.assign_to_owner(owner, cand);
                    } else {
                        self.heap.push(cand.heap_entry());
                    }
                }
            }
            Node::Inner(inner) => {
                for i in 0..inner.len() {
                    let cand = Pruned::Subtree {
                        pid: inner.child(i),
                        hi: inner.hi(i).into(),
                    };
                    if let Some(owner) = self.find_dominator(inner.hi(i)) {
                        self.stats.entries_pruned += 1;
                        self.assign_to_owner(owner, cand);
                    } else {
                        self.heap.push(cand.heap_entry());
                    }
                }
            }
        }
    }

    fn promote(&mut self, oid: u64, point: Box<[f64]>) {
        self.stats.points_promoted += 1;
        self.alive += 1;
        let sum = point.iter().sum();
        let idx = self.slab.len();
        self.by_oid.insert(oid, idx);
        self.entered.push((oid, point.clone()));
        self.slab.push(Some(SkyObj {
            oid,
            point,
            sum,
            plist: Arc::new(Vec::new()),
        }));
        self.fresh.push(idx as u32);
    }

    /// First skyline object (slab index) that dominates-or-equals `x`,
    /// if any. Scans recent promotions linearly, then the descending-sum
    /// order with early exit once sums fall below the candidate's.
    fn find_dominator(&mut self, x: &[f64]) -> Option<usize> {
        self.maybe_rebuild_order();
        let x_sum: f64 = x.iter().sum();
        let cutoff = x_sum - SUM_SLACK;
        for &i in &self.fresh {
            let Some(obj) = self.slab[i as usize].as_ref() else {
                continue;
            };
            if obj.sum < cutoff {
                continue;
            }
            self.stats.dominance_checks += 1;
            if dominates_or_equal(&obj.point, x) {
                return Some(i as usize);
            }
        }
        for &i in &self.order {
            let Some(obj) = self.slab[i as usize].as_ref() else {
                continue;
            };
            if obj.sum < cutoff {
                break; // sorted descending: nothing below can dominate
            }
            self.stats.dominance_checks += 1;
            if dominates_or_equal(&obj.point, x) {
                return Some(i as usize);
            }
        }
        None
    }

    fn maybe_rebuild_order(&mut self) {
        let churn = self.fresh.len() + self.stale;
        if churn > 64 && churn * 4 > self.alive {
            self.rebuild_order();
        }
    }

    fn rebuild_order(&mut self) {
        self.order.clear();
        self.order.extend(
            self.slab
                .iter()
                .enumerate()
                .filter(|(_, s)| s.is_some())
                .map(|(i, _)| i as u32),
        );
        let slab = &self.slab;
        self.order.sort_by(|&a, &b| {
            let sa = slab[a as usize].as_ref().expect("alive").sum;
            let sb = slab[b as usize].as_ref().expect("alive").sum;
            sb.total_cmp(&sa).then(a.cmp(&b))
        });
        self.fresh.clear();
        self.stale = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_skyline_excluding;
    use mpq_rtree::{PointSet, RTree, RTreeParams};
    use std::collections::HashSet;

    fn params() -> RTreeParams {
        RTreeParams {
            page_size: 256,
            min_fill_ratio: 0.4,
            buffer_capacity: 4096,
        }
    }

    fn seeded_points(n: usize, dim: usize, seed: u64) -> PointSet {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut ps = PointSet::with_capacity(dim, n);
        for _ in 0..n {
            let p: Vec<f64> = (0..dim).map(|_| next()).collect();
            ps.push(&p);
        }
        ps
    }

    fn sky_ids(m: &SkylineMaintainer) -> Vec<u64> {
        let mut v: Vec<u64> = m.iter().map(|e| e.oid).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn initial_skyline_matches_naive() {
        for seed in [1, 2, 3] {
            for dim in [2, 3, 4] {
                let ps = seeded_points(400, dim, seed);
                let tree = RTree::bulk_load(&ps, params());
                let m = SkylineMaintainer::build(&tree);
                let expect = naive_skyline_excluding(&ps, &HashSet::new());
                assert_eq!(sky_ids(&m), expect, "seed {seed} dim {dim}");
                assert_eq!(m.len(), expect.len());
            }
        }
    }

    #[test]
    fn maintenance_tracks_naive_through_removals() {
        let ps = seeded_points(600, 3, 9);
        let tree = RTree::bulk_load(&ps, params());
        let mut m = SkylineMaintainer::build(&tree);
        let mut removed: HashSet<u64> = HashSet::new();
        // repeatedly remove the first two skyline objects
        for round in 0..60 {
            let victims: Vec<u64> = m.iter().take(2).map(|e| e.oid).collect();
            if victims.is_empty() {
                break;
            }
            for &v in &victims {
                removed.insert(v);
            }
            m.remove(&victims, &tree);
            let expect = naive_skyline_excluding(&ps, &removed);
            assert_eq!(sky_ids(&m), expect, "round {round}");
        }
    }

    #[test]
    fn remove_returns_exactly_the_promotions() {
        let ps = seeded_points(500, 2, 4);
        let tree = RTree::bulk_load(&ps, params());
        let mut m = SkylineMaintainer::build(&tree);
        let before: HashSet<u64> = m.iter().map(|e| e.oid).collect();
        let victim = m.iter().next().unwrap().oid;
        let promoted = m.remove(&[victim], &tree);
        let after: HashSet<u64> = m.iter().map(|e| e.oid).collect();
        let mut expected_new: Vec<u64> = after.difference(&before).copied().collect();
        expected_new.sort_unstable();
        let mut got_new: Vec<u64> = promoted.iter().map(|(o, _)| *o).collect();
        got_new.sort_unstable();
        assert_eq!(got_new, expected_new);
        // promoted points carry correct coordinates
        for (oid, p) in &promoted {
            assert_eq!(&**p, ps.get(*oid as usize));
        }
    }

    #[test]
    fn duplicates_keep_one_representative() {
        let mut ps = PointSet::new(2);
        ps.push(&[0.9, 0.9]);
        ps.push(&[0.9, 0.9]);
        ps.push(&[0.9, 0.9]);
        ps.push(&[0.1, 0.1]);
        let tree = RTree::bulk_load(&ps, params());
        let mut m = SkylineMaintainer::build(&tree);
        assert_eq!(m.len(), 1, "duplicates must collapse to one skyline object");
        // removing the representative promotes the next duplicate
        let rep = m.iter().next().unwrap().oid;
        m.remove(&[rep], &tree);
        assert_eq!(m.len(), 1);
        assert!(!m.contains(rep));
        // removing both remaining duplicates exposes the dominated point
        let rep2 = m.iter().next().unwrap().oid;
        m.remove(&[rep2], &tree);
        let rep3 = m.iter().next().unwrap().oid;
        m.remove(&[rep3], &tree);
        assert_eq!(sky_ids(&m), vec![3]);
    }

    #[test]
    fn exhausting_the_skyline_empties_the_set() {
        let ps = seeded_points(120, 2, 6);
        let tree = RTree::bulk_load(&ps, params());
        let mut m = SkylineMaintainer::build(&tree);
        let mut total = 0usize;
        while !m.is_empty() {
            let victim = m.iter().next().unwrap().oid;
            m.remove(&[victim], &tree);
            total += 1;
            assert!(total <= 120, "more removals than objects");
        }
        assert_eq!(total, 120, "every object must eventually surface");
    }

    #[test]
    #[should_panic(expected = "not in the skyline")]
    fn removing_non_skyline_object_panics() {
        let ps = seeded_points(50, 2, 10);
        let tree = RTree::bulk_load(&ps, params());
        let mut m = SkylineMaintainer::build(&tree);
        m.remove(&[u64::MAX], &tree);
    }

    #[test]
    fn multi_removal_equals_sequential_removals() {
        let ps = seeded_points(400, 3, 12);
        let tree = RTree::bulk_load(&ps, params());
        let mut a = SkylineMaintainer::build(&tree);

        let tree2 = RTree::bulk_load(&ps, params());
        let mut b = SkylineMaintainer::build(&tree2);

        let victims: Vec<u64> = a.iter().take(3).map(|e| e.oid).collect();
        a.remove(&victims, &tree);
        for &v in &victims {
            b.remove(&[v], &tree2);
        }
        assert_eq!(sky_ids(&a), sky_ids(&b));
    }

    #[test]
    fn incremental_maintenance_reads_less_than_recompute() {
        use crate::bbs::compute_skyline_excluding;
        let ps = seeded_points(4000, 3, 33);
        let tree = RTree::bulk_load(&ps, params());
        let mut m = SkylineMaintainer::build(&tree);

        // Remove 20 skyline objects one at a time, totaling the
        // incremental maintenance cost (in logical accesses, which are
        // buffer-independent).
        let mut removed: HashSet<u64> = HashSet::new();
        tree.reset_io_stats();
        for _ in 0..20 {
            let victim = m.iter().next().unwrap().oid;
            removed.insert(victim);
            m.remove(&[victim], &tree);
        }
        let maint_logical = tree.io_stats().logical;

        // The alternative the paper rejects: recompute BBS from scratch
        // after each removal. Measure just the final recompute — a single
        // from-scratch pass already dwarfs all 20 incremental updates.
        tree.reset_io_stats();
        let _ = compute_skyline_excluding(&tree, |o| removed.contains(&o));
        let recompute_logical = tree.io_stats().logical;

        assert!(
            maint_logical < recompute_logical,
            "20 incremental updates ({maint_logical} accesses) should cost less than \
             one from-scratch recompute ({recompute_logical} accesses)"
        );
    }

    #[test]
    fn insert_reverses_remove_to_the_same_skyline_content() {
        let ps = seeded_points(600, 3, 21);
        let tree = RTree::bulk_load(&ps, params());
        let mut m = SkylineMaintainer::build(&tree);
        let reference = sky_ids(&m);
        // Remove five skyline members, then re-admit them in a
        // different order: the skyline content must round-trip.
        let victims: Vec<(u64, Box<[f64]>)> =
            m.iter().take(5).map(|e| (e.oid, e.point.into())).collect();
        let oids: Vec<u64> = victims.iter().map(|(o, _)| *o).collect();
        m.remove(&oids, &tree);
        assert_ne!(sky_ids(&m), reference);
        for (oid, point) in victims.into_iter().rev() {
            m.insert(oid, point);
        }
        assert_eq!(sky_ids(&m), reference);
        // The round-tripped state keeps maintaining correctly.
        let mut removed: HashSet<u64> = HashSet::new();
        for _ in 0..10 {
            let victim = m.iter().next().unwrap().oid;
            removed.insert(victim);
            m.remove(&[victim], &tree);
            assert_eq!(sky_ids(&m), naive_skyline_excluding(&ps, &removed));
        }
    }

    #[test]
    fn insert_of_a_dominated_point_stays_hidden_until_its_owner_leaves() {
        let mut ps = PointSet::new(2);
        ps.push(&[0.9, 0.9]); // 0: dominates everything
        ps.push(&[0.5, 0.5]); // 1
        let tree = RTree::bulk_load(&ps, params());
        let mut m = SkylineMaintainer::build(&tree);
        assert_eq!(sky_ids(&m), vec![0]);
        // Peel the dominated point's representative path: remove 0,
        // which surfaces 1, remove 1, then re-admit it.
        m.remove(&[0], &tree);
        assert_eq!(sky_ids(&m), vec![1]);
        m.remove(&[1], &tree);
        assert!(m.is_empty());
        m.insert(0, Box::from([0.9, 0.9]));
        assert_eq!(sky_ids(&m), vec![0]);
        // A dominated insert hides in the dominator's plist ...
        m.insert(1, Box::from([0.5, 0.5]));
        assert_eq!(sky_ids(&m), vec![0]);
        // ... and resurfaces when that owner is removed.
        m.remove(&[0], &tree);
        assert_eq!(sky_ids(&m), vec![1]);
    }

    #[test]
    fn clone_snapshots_diverge_independently() {
        let ps = seeded_points(400, 3, 7);
        let tree = RTree::bulk_load(&ps, params());
        let mut a = SkylineMaintainer::build(&tree);
        let baseline = sky_ids(&a);
        let mut b = a.clone();
        assert_eq!(sky_ids(&b), baseline);
        assert!(b.approx_bytes() > 0);

        // Mutating the clone leaves the original untouched, and both
        // keep tracking the naive skyline through further removals.
        let victim = b.iter().next().unwrap().oid;
        b.remove(&[victim], &tree);
        assert_eq!(sky_ids(&a), baseline);
        let mut removed = HashSet::new();
        removed.insert(victim);
        assert_eq!(sky_ids(&b), naive_skyline_excluding(&ps, &removed));

        let victim_a = a.iter().nth(1).unwrap().oid;
        a.remove(&[victim_a], &tree);
        let mut removed_a = HashSet::new();
        removed_a.insert(victim_a);
        assert_eq!(sky_ids(&a), naive_skyline_excluding(&ps, &removed_a));
    }

    #[test]
    #[should_panic(expected = "already in the skyline")]
    fn inserting_a_live_member_panics() {
        let ps = seeded_points(50, 2, 3);
        let tree = RTree::bulk_load(&ps, params());
        let mut m = SkylineMaintainer::build(&tree);
        let live = m.iter().next().unwrap().oid;
        let point: Box<[f64]> = m.get(live).unwrap().into();
        m.insert(live, point);
    }

    #[test]
    fn anticorrelated_line_is_all_skyline() {
        // points on the anti-diagonal dominate nothing pairwise
        let mut ps = PointSet::new(2);
        for i in 0..50 {
            let x = i as f64 / 49.0;
            ps.push(&[x, 1.0 - x]);
        }
        let tree = RTree::bulk_load(&ps, params());
        let m = SkylineMaintainer::build(&tree);
        assert_eq!(m.len(), 50);
    }

    #[test]
    fn heavy_churn_keeps_order_index_consistent() {
        // stress the rebuild policy: interleave removals and promotions
        let ps = seeded_points(2000, 3, 55);
        let tree = RTree::bulk_load(&ps, params());
        let mut m = SkylineMaintainer::build(&tree);
        let mut removed: HashSet<u64> = HashSet::new();
        for round in 0..40 {
            let victims: Vec<u64> = m.iter().take(5).map(|e| e.oid).collect();
            if victims.is_empty() {
                break;
            }
            for &v in &victims {
                removed.insert(v);
            }
            m.remove(&victims, &tree);
            if round % 10 == 0 {
                assert_eq!(
                    sky_ids(&m),
                    naive_skyline_excluding(&ps, &removed),
                    "round {round}"
                );
            }
        }
    }
}
