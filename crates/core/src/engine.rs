//! The long-lived matching engine: build the object index **once**,
//! evaluate many requests against it.
//!
//! The paper's motivating deployment (§I) is a reservation site where
//! preference-query batches arrive continuously against one persistent
//! inventory. The legacy [`crate::Matcher::run`] API forced every call to
//! bulk-load a private R-tree, so serving N requests paid N index
//! builds and nothing could be shared across threads. [`Engine`] inverts
//! that: [`Engine::builder`] validates the object set and bulk-loads the
//! R-tree exactly once (observable via
//! [`crate::matching::index_build_count`]); evaluation then goes through
//! [`MatchRequest`]s that read the shared index without mutating it, so
//! any number of requests — also concurrently from multiple threads —
//! can target one engine.
//!
//! Per-request cost accounting stays exact under sharing because every
//! evaluation reads the tree through its own run-scoped
//! [`mpq_rtree::IoSession`]: the [`RunMetrics::io`] of one request
//! contains precisely the page traffic that request caused.
//!
//! ```
//! use mpq_core::{Algorithm, Engine};
//! use mpq_rtree::PointSet;
//! use mpq_ta::FunctionSet;
//!
//! let mut objects = PointSet::new(2);
//! for p in [[0.9_f64, 0.2], [0.2, 0.9], [0.7, 0.7], [0.5, 0.4]] {
//!     objects.push(&p);
//! }
//! let engine = Engine::builder().objects(&objects).build().unwrap();
//!
//! let functions = FunctionSet::from_rows(2, &[vec![0.8, 0.2], vec![0.2, 0.8]]);
//! let sb = engine.request(&functions).evaluate().unwrap();
//! let bf = engine
//!     .request(&functions)
//!     .algorithm(Algorithm::BruteForce)
//!     .evaluate()
//!     .unwrap();
//! assert_eq!(sb.sorted_pairs(), bf.sorted_pairs());
//! ```

use std::borrow::Cow;
use std::collections::{BTreeMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use mpq_rtree::{
    DiskPager, FaultInjector, FaultPageStore, IoSession, IoStats, MemPager, PointSet, RTree,
};
use mpq_skyline::SkylineMaintainer;
use mpq_ta::{FunctionSet, ReverseTopOne};

use crate::brute_force::{run_incremental_on, run_restart_on, BfStrategy};
use crate::cache::{MutationEvent, MutationLog};
use crate::capacity::run_capacity_on;
use crate::chain::run_chain_on;
use crate::error::MpqError;
use crate::matching::{IndexConfig, Matching, Pair, RunMetrics};
use crate::sb::{
    run_rescan_on, run_sb_seeded, sb_loop_round, stream_on, BestPairMode, MaintenanceMode,
    SbStream, ScratchLease, SkylineMatcher,
};
use crate::scratch::Scratch;
use crate::seed::{EvalSeed, SeedPart};
use crate::service::{
    resolved_workers, safe_rate, worker_loop, EngineService, ServiceConfig, ServiceCore,
    SubmitOptions,
};
use crate::wal::{Wal, WalRecord};

/// Page file name inside an engine's data directory.
const PAGE_FILE: &str = "pages.mpq";
/// Write-ahead log file name inside an engine's data directory.
const WAL_FILE: &str = "wal.mpq";

/// Lock a mutex, ignoring poisoning: every critical section in the
/// engine leaves the protected state consistent even if a caller
/// panicked mid-evaluation elsewhere.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Which stable-matching algorithm a [`MatchRequest`] runs.
///
/// All three produce the identical matching (the canonical tie-broken
/// stable assignment); they differ in cost profile. `Sb` is the paper's
/// contribution and the right default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Algorithm {
    /// Skyline-based matching (§III-B/§IV) — the paper's algorithm.
    #[default]
    Sb,
    /// Per-function top-1 queries with lazy invalidation (§III-A).
    BruteForce,
    /// Chains of alternating top-1 searches (adapted competitor, §V).
    Chain,
}

impl Algorithm {
    /// Canonical display name.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Sb => "SB",
            Algorithm::BruteForce => "BruteForce",
            Algorithm::Chain => "Chain",
        }
    }
}

impl std::str::FromStr for Algorithm {
    type Err = String;

    /// Accepts the CLI spellings: `sb`, `bf`/`brute-force`, `chain`.
    fn from_str(s: &str) -> Result<Algorithm, String> {
        match s.to_ascii_lowercase().as_str() {
            "sb" | "skyline" => Ok(Algorithm::Sb),
            "bf" | "brute-force" | "bruteforce" => Ok(Algorithm::BruteForce),
            "chain" => Ok(Algorithm::Chain),
            other => Err(format!(
                "unknown algorithm '{other}' (expected sb, bf or chain)"
            )),
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Builder for [`Engine`]: configure the index, validate the inventory,
/// bulk-load once.
#[derive(Debug, Default)]
pub struct EngineBuilder<'o> {
    index: IndexConfig,
    objects: Option<&'o PointSet>,
    buffer_shards: Option<usize>,
    data_dir: Option<PathBuf>,
    fault_injector: Option<Arc<FaultInjector>>,
    /// Explicit object ids for `objects` (shard-internal: a partitioned
    /// engine indexes globally minted oids in every per-shard tree).
    oids: Option<&'o [u64]>,
    /// Permit an empty inventory (shard-internal: a partition may leave
    /// a shard with zero objects; the sharded engine enforces the
    /// global non-empty contract itself).
    allow_empty: bool,
}

impl<'o> EngineBuilder<'o> {
    /// Index construction/buffering parameters (defaults follow the
    /// paper: 4 KiB pages, LRU buffer at 2% of the tree).
    pub fn index(mut self, config: IndexConfig) -> EngineBuilder<'o> {
        self.index = config;
        self
    }

    /// The object inventory to index. Points are copied into the index;
    /// the set does not need to outlive the engine.
    pub fn objects(mut self, objects: &'o PointSet) -> EngineBuilder<'o> {
        self.objects = Some(objects);
        self
    }

    /// Split the shared LRU buffer into `shards` lock shards so
    /// concurrent evaluations on distinct pages stop contending on one
    /// mutex (see the `mpq_rtree::buffer` docs). A good value is the
    /// thread count passed to [`Engine::evaluate_batch`]. Clamped to
    /// `[1, buffer capacity]` so every shard caches at least one page.
    ///
    /// Default: 1 shard — the classic single LRU of the paper's
    /// experiments, with bit-identical eviction order and I/O counts.
    pub fn buffer_shards(mut self, shards: usize) -> EngineBuilder<'o> {
        self.buffer_shards = Some(shards);
        self
    }

    /// Persist the engine under `dir`: index pages go to a disk-backed
    /// pager (`pages.mpq`) and every mutation is logged to a write-ahead
    /// log (`wal.mpq`) before it is applied, so the engine survives a
    /// restart — reopen it with [`Engine::open`]. The directory is
    /// created if missing; any files from a previous engine in it are
    /// overwritten.
    pub fn data_dir(mut self, dir: impl AsRef<Path>) -> EngineBuilder<'o> {
        self.data_dir = Some(dir.as_ref().to_path_buf());
        self
    }

    /// Route every durability operation of this engine — page writes,
    /// page/header fsyncs, WAL appends and WAL fsyncs — through
    /// `injector`, so tests and the chaos harness can fail them on a
    /// deterministic schedule (see [`FaultInjector`]). Applies to both
    /// in-memory engines (the pager is wrapped in a
    /// [`FaultPageStore`]) and disk-backed engines (the
    /// [`DiskPager`] and [`Wal`] consult the injector natively). Zero
    /// cost when not called.
    pub fn fault_injector(mut self, injector: Arc<FaultInjector>) -> EngineBuilder<'o> {
        self.fault_injector = Some(injector);
        self
    }

    /// Index `objects[i]` under `oids[i]` instead of the point index —
    /// and mint new ids from `max(oids) + 1` on. Shard-internal (see
    /// the `shard` module): every per-shard tree speaks global object
    /// ids natively, so the merge protocol needs no translation layer.
    pub(crate) fn explicit_oids(mut self, oids: &'o [u64]) -> EngineBuilder<'o> {
        self.oids = Some(oids);
        self
    }

    /// Accept an empty inventory. Shard-internal: a partition can leave
    /// a shard with zero objects; the sharded engine enforces the
    /// global non-empty contract itself.
    pub(crate) fn allow_empty(mut self) -> EngineBuilder<'o> {
        self.allow_empty = true;
        self
    }

    /// Validate the inventory and bulk-load the object R-tree (exactly
    /// once for the engine's lifetime).
    ///
    /// Validation happens before the bulk load: an empty set, a NaN or
    /// infinite coordinate, or a coordinate outside the `[0, 1]`
    /// preference space is reported as an [`MpqError`] without paying
    /// for index construction.
    pub fn build(self) -> Result<Engine, MpqError> {
        let objects = self.objects.ok_or(MpqError::EmptyObjects)?;
        if objects.is_empty() && !self.allow_empty {
            return Err(MpqError::EmptyObjects);
        }
        if let Some(ids) = self.oids {
            assert_eq!(ids.len(), objects.len(), "oid slice length mismatch");
        }
        let oid_of = |i: usize| self.oids.map_or(i as u64, |ids| ids[i]);
        for (i, p) in objects.iter() {
            validate_point(oid_of(i), objects.dim(), p)?;
        }
        let mut tree = match &self.data_dir {
            None => match &self.fault_injector {
                None => self.index.build_tree_with_oids_in(
                    MemPager::new(self.index.page_size),
                    objects,
                    self.oids,
                ),
                Some(inj) => self.index.build_tree_with_oids_in(
                    FaultPageStore::new(MemPager::new(self.index.page_size), Arc::clone(inj)),
                    objects,
                    self.oids,
                ),
            },
            Some(dir) => {
                std::fs::create_dir_all(dir)?;
                let mut store = DiskPager::create(&dir.join(PAGE_FILE), self.index.page_size)?;
                if let Some(inj) = &self.fault_injector {
                    store.attach_injector(Arc::clone(inj));
                }
                self.index
                    .build_tree_with_oids_in(store, objects, self.oids)
            }
        };
        if let Some(shards) = self.buffer_shards {
            tree.set_buffer_shards(shards.clamp(1, tree.buffer_capacity()));
        }
        let wal = match &self.data_dir {
            None => None,
            Some(dir) => {
                // A fresh build supersedes whatever a previous engine
                // left in the directory: discard any stale WAL tail and
                // commit the bulk-loaded tree as checkpoint zero.
                let (mut wal, _stale) = Wal::open(&dir.join(WAL_FILE))?;
                if let Some(inj) = &self.fault_injector {
                    wal.set_injector(Arc::clone(inj));
                }
                wal.truncate()?;
                tree.checkpoint(&0u64.to_le_bytes())?;
                Some(Mutex::new(wal))
            }
        };
        let map: BTreeMap<u64, Box<[f64]>> = objects
            .iter()
            .map(|(i, p)| (oid_of(i), Box::from(p)))
            .collect();
        let next_oid = map.keys().next_back().map_or(0, |k| k + 1);
        Ok(Engine {
            dim: objects.dim(),
            config: self.index,
            tree,
            next_oid: AtomicU64::new(next_oid),
            objects: Mutex::new(map),
            version: AtomicU64::new(NEXT_INVENTORY_VERSION.fetch_add(1, AtomicOrdering::Relaxed)),
            evaluations: AtomicU64::new(0),
            mutations: MutationLog::default(),
            wal,
            data_dir: self.data_dir,
            mutator: Mutex::new(()),
            degraded: AtomicBool::new(false),
            injector: self.fault_injector,
        })
    }
}

/// Shared point validation for the bulk build path and the incremental
/// mutation path: the preference space is `[0, 1]^dim` with finite
/// coordinates everywhere.
fn validate_point(oid: u64, dim: usize, p: &[f64]) -> Result<(), MpqError> {
    if p.len() != dim {
        return Err(MpqError::PointDimensionMismatch {
            engine: dim,
            point: p.len(),
        });
    }
    for (d, &v) in p.iter().enumerate() {
        if !v.is_finite() {
            return Err(MpqError::NonFiniteCoordinate {
                oid,
                dim: d,
                value: v,
            });
        }
        if !(0.0..=1.0).contains(&v) {
            return Err(MpqError::CoordinateOutOfRange {
                oid,
                dim: d,
                value: v,
            });
        }
    }
    Ok(())
}

/// Process-global inventory version source: every built engine — and
/// every committed mutation — gets a distinct, monotonically increasing
/// stamp (starting at 1 so 0 can serve as a "no engine" sentinel in
/// caller code). The stamp is what makes a
/// [`ResultCache`](crate::ResultCache) entry safe across engine rebuilds
/// *and* in-place mutations: results computed against inventory version
/// *v* are only served to lookups against the same *v*, unless the
/// engine's [`MutationLog`] proves every intervening mutation irrelevant
/// to the entry.
static NEXT_INVENTORY_VERSION: AtomicU64 = AtomicU64::new(1);

/// A prepared matching engine: one validated, bulk-loaded object index
/// serving any number of [`MatchRequest`]s.
///
/// `Engine` is `Sync`: share it behind an `Arc` (or plain borrows with
/// scoped threads) and evaluate requests concurrently. Evaluation never
/// mutates the index — assigned objects are masked per run, not deleted
/// — so requests cannot observe each other.
pub struct Engine {
    dim: usize,
    config: IndexConfig,
    tree: RTree,
    /// The live inventory by object id. Mirrors the R-tree's leaf
    /// entries; the map is what gives mutations O(log n) point lookup
    /// and what recovery replays the WAL against.
    objects: Mutex<BTreeMap<u64, Box<[f64]>>>,
    /// Ids `>= next_oid` have never been assigned; ids below it may have
    /// been removed. Removal never recycles an id.
    next_oid: AtomicU64,
    /// Bumped on every mutation (see [`Engine::inventory_version`]).
    version: AtomicU64,
    /// Evaluations actually run against this engine (see
    /// [`Engine::evaluation_count`]).
    evaluations: AtomicU64,
    /// Recent mutations by version, for scoped cache invalidation.
    mutations: MutationLog,
    /// Write-ahead log; present iff the engine is disk-backed.
    wal: Option<Mutex<Wal>>,
    /// Data directory; present iff the engine is disk-backed.
    data_dir: Option<PathBuf>,
    /// Serializes mutations and checkpoints; readers never take it.
    mutator: Mutex<()>,
    /// Set when a durability failure left the WAL wedged: mutations are
    /// refused with [`MpqError::StorageDegraded`] until a successful
    /// [`Engine::checkpoint`] repairs the log. Reads are unaffected.
    degraded: AtomicBool,
    /// The fault injector every durability path consults, if one was
    /// attached at build/open time.
    injector: Option<Arc<FaultInjector>>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("dim", &self.dim)
            .field("objects", &self.n_objects())
            .field("pages", &self.tree.page_count())
            .field("version", &self.inventory_version())
            .field("data_dir", &self.data_dir)
            .finish()
    }
}

impl Engine {
    /// Start building an engine.
    pub fn builder<'o>() -> EngineBuilder<'o> {
        EngineBuilder::default()
    }

    /// Dimensionality of the indexed preference space.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of indexed objects (live inventory after mutations).
    #[inline]
    pub fn n_objects(&self) -> usize {
        lock(&self.objects).len()
    }

    /// One past the highest object id ever assigned. Object ids are
    /// never recycled, so per-object vectors (capacities, exclusion
    /// bitmaps) sized to this bound cover every id the engine can
    /// report.
    #[inline]
    pub fn oid_bound(&self) -> u64 {
        self.next_oid.load(AtomicOrdering::Acquire)
    }

    /// The point currently stored for `oid`, if the engine holds it.
    pub fn object_point(&self, oid: u64) -> Option<Box<[f64]>> {
        lock(&self.objects).get(&oid).cloned()
    }

    /// The index configuration the engine was built with.
    pub fn index_config(&self) -> &IndexConfig {
        &self.config
    }

    /// The engine's **inventory version**: a process-globally unique,
    /// monotonically increasing stamp assigned at build time and
    /// re-minted on every mutation. Two engines never share a version —
    /// even when built over identical objects — so a
    /// [`ResultCache`](crate::ResultCache) entry stamped with one
    /// engine's version can never be served against another engine's
    /// inventory, and an entry stamped before a mutation is stale unless
    /// the [`Engine::mutation_log`] proves the mutation could not have
    /// changed it (see [`ResultCache::get_with_log`]).
    ///
    /// [`ResultCache::get_with_log`]: crate::ResultCache::get_with_log
    #[inline]
    pub fn inventory_version(&self) -> u64 {
        self.version.load(AtomicOrdering::Acquire)
    }

    /// The engine's recent-mutation log: every mutation records its
    /// event under the version stamp it minted, which is what lets a
    /// [`ResultCache`](crate::ResultCache) revalidate entries that a
    /// mutation provably did not affect instead of flushing wholesale.
    #[inline]
    pub fn mutation_log(&self) -> &MutationLog {
        &self.mutations
    }

    /// True iff the engine persists to a data directory (pages + WAL).
    #[inline]
    pub fn is_persistent(&self) -> bool {
        self.data_dir.is_some()
    }

    /// The data directory the engine persists under, if disk-backed.
    pub fn data_dir(&self) -> Option<&Path> {
        self.data_dir.as_deref()
    }

    /// Does `dir` hold a persisted engine — i.e. would [`Engine::open`]
    /// have a page file to load? Lets callers (the CLI's
    /// `serve --data-dir`) decide between opening and building fresh
    /// without hard-coding the on-disk file names.
    pub fn persisted_at(dir: impl AsRef<Path>) -> bool {
        dir.as_ref().join(PAGE_FILE).is_file()
    }

    /// Current size of the write-ahead log in bytes (0 for an in-memory
    /// engine). Grows with every mutation; drops back to zero at a
    /// [`Engine::checkpoint`].
    pub fn wal_bytes(&self) -> u64 {
        match &self.wal {
            None => 0,
            Some(wal) => lock(wal).len_bytes(),
        }
    }

    /// How many evaluations have actually run against this engine —
    /// cache hits and dedupe attaches do **not** count, which is exactly
    /// what makes this the observable for "N identical submissions paid
    /// one evaluation" assertions (see `tests/cache.rs`).
    #[inline]
    pub fn evaluation_count(&self) -> u64 {
        self.evaluations.load(AtomicOrdering::Relaxed)
    }

    /// The shared object R-tree (read-only access; engine evaluation
    /// never mutates it).
    pub fn tree(&self) -> &RTree {
        &self.tree
    }

    /// Reopen a persistent engine from `dir` with the default
    /// [`IndexConfig`] (shorthand for [`Engine::open_with`]).
    pub fn open(dir: impl AsRef<Path>) -> Result<Engine, MpqError> {
        Engine::open_with(dir, IndexConfig::default())
    }

    /// Reopen a persistent engine from the `pages.mpq` + `wal.mpq` pair
    /// under `dir`, created earlier by [`EngineBuilder::data_dir`].
    ///
    /// Recovery loads the last checkpointed tree image, then **replays**
    /// every intact WAL record past the checkpoint's high-water mark —
    /// a torn tail (crash mid-append) is discarded at the first corrupt
    /// frame, so the engine reopens to the last fully-synced mutation.
    /// The reopened engine serves matchings bit-identical to a freshly
    /// built engine over the same surviving inventory.
    ///
    /// `config.page_size` must equal the page size the directory was
    /// created with; the buffer is re-sized from `config` (buffer
    /// geometry is a runtime choice, not persistent state).
    pub fn open_with(dir: impl AsRef<Path>, config: IndexConfig) -> Result<Engine, MpqError> {
        Engine::open_inner(dir.as_ref(), config, None, false)
    }

    /// Reopen one shard of a partitioned engine: like
    /// [`Engine::open_with`], but an empty recovered inventory is legal
    /// (a shard can hold zero objects; the sharded engine enforces the
    /// global non-empty contract itself).
    pub(crate) fn open_shard(dir: &Path, config: IndexConfig) -> Result<Engine, MpqError> {
        Engine::open_inner(dir, config, None, true)
    }

    /// Like [`Engine::open_with`], but routing the reopened engine's
    /// durability operations through `injector` (see
    /// [`EngineBuilder::fault_injector`]). Recovery itself runs with the
    /// injector attached, so reads during replay can be failed too.
    pub fn open_with_injector(
        dir: impl AsRef<Path>,
        config: IndexConfig,
        injector: Arc<FaultInjector>,
    ) -> Result<Engine, MpqError> {
        Engine::open_inner(dir.as_ref(), config, Some(injector), false)
    }

    fn open_inner(
        dir: &Path,
        config: IndexConfig,
        injector: Option<Arc<FaultInjector>>,
        allow_empty: bool,
    ) -> Result<Engine, MpqError> {
        let mut store = DiskPager::open(&dir.join(PAGE_FILE), config.page_size)?;
        if let Some(inj) = &injector {
            store.attach_injector(Arc::clone(inj));
        }
        let (tree, extra) = RTree::open(store, config.min_buffer_pages.max(1))?;
        tree.set_buffer_capacity(config.buffer_pages_for(tree.page_count()));
        let ckpt_seq = if extra.len() >= 8 {
            u64::from_le_bytes(extra[..8].try_into().expect("8-byte slice"))
        } else {
            0
        };

        let (mut wal, records) = Wal::open(&dir.join(WAL_FILE))?;
        if let Some(inj) = &injector {
            wal.set_injector(Arc::clone(inj));
        }
        // A checkpoint truncates the WAL but sequence numbers must stay
        // monotonic across it, or replayed records could collide with
        // the checkpoint's high-water mark after the *next* crash.
        wal.ensure_next_seq(ckpt_seq + 1);

        let mut objects: BTreeMap<u64, Box<[f64]>> = BTreeMap::new();
        tree.for_each_point(|oid, p| {
            objects.insert(oid, Box::from(p));
        });
        for (seq, rec) in records {
            if seq <= ckpt_seq {
                continue; // already part of the checkpointed image
            }
            match rec {
                WalRecord::Insert { oid, point } => {
                    tree.insert(&point, oid);
                    objects.insert(oid, point);
                }
                WalRecord::Remove { oid, point } => {
                    tree.delete(&point, oid);
                    objects.remove(&oid);
                }
                WalRecord::Update { oid, old, new } => {
                    tree.delete(&old, oid);
                    tree.insert(&new, oid);
                    objects.insert(oid, new);
                }
            }
        }
        if objects.is_empty() && !allow_empty {
            return Err(MpqError::EmptyObjects);
        }
        let next_oid = objects.keys().next_back().map_or(0, |k| k + 1);
        Ok(Engine {
            dim: tree.dim(),
            config,
            tree,
            objects: Mutex::new(objects),
            next_oid: AtomicU64::new(next_oid),
            version: AtomicU64::new(NEXT_INVENTORY_VERSION.fetch_add(1, AtomicOrdering::Relaxed)),
            evaluations: AtomicU64::new(0),
            mutations: MutationLog::default(),
            wal: Some(Mutex::new(wal)),
            data_dir: Some(dir.to_path_buf()),
            mutator: Mutex::new(()),
            degraded: AtomicBool::new(false),
            injector,
        })
    }

    /// Insert a new object, returning its assigned id (ids are handed
    /// out monotonically and never recycled).
    ///
    /// The mutation is durable before it is visible: on a disk-backed
    /// engine the WAL record is appended and fsynced first, then the
    /// R-tree is updated in place (copy-on-write — in-flight evaluations
    /// keep reading their pinned epoch), and only then does
    /// [`Engine::inventory_version`] advance.
    pub fn insert_object(&self, point: &[f64]) -> Result<u64, MpqError> {
        let _m = lock(&self.mutator);
        self.check_storage()?;
        let oid = self.next_oid.load(AtomicOrdering::Relaxed);
        validate_point(oid, self.dim, point)?;
        self.log_wal(&WalRecord::Insert {
            oid,
            point: Box::from(point),
        })?;
        self.tree.insert(point, oid);
        lock(&self.objects).insert(oid, Box::from(point));
        self.next_oid.store(oid + 1, AtomicOrdering::Release);
        self.commit_mutation(MutationEvent::Insert {
            oid,
            point: Arc::from(point),
        });
        Ok(oid)
    }

    /// Insert an object under a caller-chosen id instead of minting one.
    /// Shard-internal: the sharded engine mints global oids and routes
    /// each insert to exactly one shard, which must index the global id
    /// verbatim. Fails if the shard already holds `oid`.
    pub(crate) fn insert_object_at(&self, oid: u64, point: &[f64]) -> Result<(), MpqError> {
        let _m = lock(&self.mutator);
        self.check_storage()?;
        validate_point(oid, self.dim, point)?;
        if lock(&self.objects).contains_key(&oid) {
            return Err(MpqError::UnsupportedRequest(
                "explicit-oid insert would overwrite an existing object",
            ));
        }
        self.log_wal(&WalRecord::Insert {
            oid,
            point: Box::from(point),
        })?;
        self.tree.insert(point, oid);
        lock(&self.objects).insert(oid, Box::from(point));
        let next = self.next_oid.load(AtomicOrdering::Relaxed).max(oid + 1);
        self.next_oid.store(next, AtomicOrdering::Release);
        self.commit_mutation(MutationEvent::Insert {
            oid,
            point: Arc::from(point),
        });
        Ok(())
    }

    /// Remove an object from the inventory.
    ///
    /// Fails with [`MpqError::UnknownObject`] if the engine does not
    /// hold `oid`, and refuses to empty the inventory entirely (an
    /// engine over zero objects violates the build-time contract; build
    /// a new engine instead).
    pub fn remove_object(&self, oid: u64) -> Result<(), MpqError> {
        self.remove_object_inner(oid, false)
    }

    /// Remove an object, allowing the shard to go empty. Shard-internal:
    /// the sharded engine enforces the global "never empty the
    /// inventory" rule across all shards, so one shard draining to zero
    /// objects is legal.
    pub(crate) fn remove_object_allow_empty(&self, oid: u64) -> Result<(), MpqError> {
        self.remove_object_inner(oid, true)
    }

    fn remove_object_inner(&self, oid: u64, allow_empty: bool) -> Result<(), MpqError> {
        let _m = lock(&self.mutator);
        self.check_storage()?;
        let point = {
            let objects = lock(&self.objects);
            if !allow_empty && objects.len() == 1 && objects.contains_key(&oid) {
                return Err(MpqError::UnsupportedRequest(
                    "removing the last object would empty the inventory",
                ));
            }
            objects
                .get(&oid)
                .cloned()
                .ok_or(MpqError::UnknownObject { oid })?
        };
        self.log_wal(&WalRecord::Remove {
            oid,
            point: point.clone(),
        })?;
        let removed = self.tree.delete(&point, oid);
        debug_assert!(removed, "object map and tree disagree on oid {oid}");
        lock(&self.objects).remove(&oid);
        self.commit_mutation(MutationEvent::Remove { oid });
        Ok(())
    }

    /// Move an existing object to a new point (same id, new
    /// coordinates): a single logical mutation — one WAL record, one
    /// version bump — implemented as delete + re-insert on the index.
    pub fn update_object(&self, oid: u64, point: &[f64]) -> Result<(), MpqError> {
        let _m = lock(&self.mutator);
        self.check_storage()?;
        validate_point(oid, self.dim, point)?;
        let old = lock(&self.objects)
            .get(&oid)
            .cloned()
            .ok_or(MpqError::UnknownObject { oid })?;
        self.log_wal(&WalRecord::Update {
            oid,
            old: old.clone(),
            new: Box::from(point),
        })?;
        let removed = self.tree.delete(&old, oid);
        debug_assert!(removed, "object map and tree disagree on oid {oid}");
        self.tree.insert(point, oid);
        lock(&self.objects).insert(oid, Box::from(point));
        self.commit_mutation(MutationEvent::Update {
            oid,
            point: Arc::from(point),
        });
        Ok(())
    }

    /// Refuse mutations while the storage is degraded (a failed WAL
    /// rollback left the log wedged). Cleared by a successful
    /// [`Engine::checkpoint`].
    fn check_storage(&self) -> Result<(), MpqError> {
        if self.degraded.load(AtomicOrdering::Acquire) {
            return Err(MpqError::StorageDegraded);
        }
        Ok(())
    }

    /// True while the engine refuses mutations after an unrepaired
    /// durability failure (see [`MpqError::StorageDegraded`]). Reads
    /// keep serving the last committed snapshot throughout.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(AtomicOrdering::Acquire)
    }

    /// The fault injector attached at build/open time, if any — lets
    /// harness code schedule faults through the engine handle it
    /// already holds.
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.injector.as_ref()
    }

    /// Durably append a WAL record (no-op for in-memory engines). Called
    /// with the mutator lock held, *before* the in-memory state changes:
    /// if the append or fsync fails, the record is rolled back off the
    /// log and the mutation is reported as [`MpqError::Io`] without
    /// having been applied. If even the rollback fails, the WAL is
    /// wedged and the engine flips to degraded: further mutations are
    /// refused with [`MpqError::StorageDegraded`] until a successful
    /// [`Engine::checkpoint`] truncates (and thereby repairs) the log.
    fn log_wal(&self, rec: &WalRecord) -> Result<(), MpqError> {
        if let Some(wal) = &self.wal {
            let mut wal = lock(wal);
            if let Err(e) = wal.append_sync(rec) {
                if wal.is_wedged() {
                    self.degraded.store(true, AtomicOrdering::Release);
                }
                return Err(e.into());
            }
        }
        Ok(())
    }

    /// Publish a committed mutation: record the event under a freshly
    /// minted version stamp, then advance the engine's version. The
    /// order matters — once a reader observes the new version, the log
    /// already holds every event up to it.
    fn commit_mutation(&self, event: MutationEvent) {
        let v = NEXT_INVENTORY_VERSION.fetch_add(1, AtomicOrdering::Relaxed);
        self.mutations.record(v, event);
        self.version.store(v, AtomicOrdering::Release);
    }

    /// Checkpoint a disk-backed engine: flush every dirty page, durably
    /// commit the current tree epoch (with the WAL high-water mark) into
    /// the page file's header, then truncate the WAL. After a
    /// checkpoint, reopening replays nothing; between checkpoints, the
    /// WAL alone carries the delta. A no-op for in-memory engines.
    /// A successful checkpoint also repairs a degraded engine: the WAL
    /// truncation wipes any phantom record a failed rollback left
    /// behind, so mutations are accepted again.
    pub fn checkpoint(&self) -> Result<(), MpqError> {
        let _m = lock(&self.mutator);
        match &self.wal {
            None => Ok(()),
            Some(wal) => {
                let mut wal = lock(wal);
                self.tree.checkpoint(&wal.last_seq().to_le_bytes())?;
                wal.truncate()?;
                self.degraded.store(false, AtomicOrdering::Release);
                Ok(())
            }
        }
    }

    /// Cumulative storage-level I/O: the index's logical/physical page
    /// traffic plus, on a disk-backed engine, the real disk reads,
    /// writes and fsyncs of the pager and the WAL.
    pub fn storage_stats(&self) -> IoStats {
        let mut s = self.tree.io_stats();
        if let Some(wal) = &self.wal {
            let wal = lock(wal);
            s.disk_writes += wal.appends();
            s.fsyncs += wal.syncs();
        }
        s
    }

    /// Build a [`FunctionSet`] from raw weight rows, reporting malformed
    /// rows as [`MpqError::InvalidFunction`] instead of panicking.
    pub fn functions_from_rows(&self, rows: &[Vec<f64>]) -> Result<FunctionSet, MpqError> {
        FunctionSet::try_from_rows(self.dim, rows)
            .map_err(|(index, source)| MpqError::InvalidFunction { index, source })
    }

    /// Start a [`MatchRequest`] for `functions` with default options
    /// (SB algorithm, multi-pair reporting, no exclusions).
    pub fn request<'e, 'f>(&'e self, functions: &'f FunctionSet) -> MatchRequest<'e, 'f> {
        MatchRequest {
            engine: self,
            functions,
            options: RequestOptions::default(),
        }
    }

    /// Progressive SB evaluation with default options: stable pairs are
    /// yielded as soon as they are identified. Shorthand for
    /// [`MatchRequest::stream`].
    pub fn stream(
        &self,
        functions: &FunctionSet,
    ) -> Result<SbStream<'static, IoSession<'_>>, MpqError> {
        self.request(functions).stream()
    }

    /// Progressive SB evaluation served from a caller-owned reusable
    /// [`Scratch`] (see [`MatchRequest::stream_with`]): consumers that
    /// open many streams get zero-alloc rounds after the first.
    /// Shorthand for [`MatchRequest::stream_with`].
    pub fn stream_with<'e, 's>(
        &'e self,
        functions: &FunctionSet,
        scratch: &'s mut Scratch,
    ) -> Result<SbStream<'s, IoSession<'e>>, MpqError> {
        self.request(functions).stream_with(scratch)
    }

    /// Start a long-lived [`EngineService`] over this engine — the
    /// blessed serving entry point: a worker pool behind a bounded
    /// submission queue, fed by cheap cloneable
    /// [`ServiceClient`](crate::service::ServiceClient) handles, so a
    /// network front-end can stream requests in as they arrive instead
    /// of pre-collecting synchronous batches. Shorthand for
    /// [`EngineService::spawn`].
    ///
    /// The engine must be in an [`Arc`] because the workers are real
    /// threads that outlive any borrow:
    ///
    /// ```
    /// # use std::sync::Arc;
    /// # use mpq_core::{Engine, ServiceConfig};
    /// # use mpq_rtree::PointSet;
    /// # use mpq_ta::FunctionSet;
    /// # let mut objects = PointSet::new(2);
    /// # for p in [[0.9_f64, 0.2], [0.2, 0.9], [0.7, 0.7]] { objects.push(&p); }
    /// let engine = Arc::new(Engine::builder().objects(&objects).build().unwrap());
    /// let service = engine.clone().serve(ServiceConfig::default().workers(2));
    /// let client = service.client();
    /// let functions = FunctionSet::from_rows(2, &[vec![0.5, 0.5]]);
    /// let ticket = client.submit(client.engine().request(&functions)).unwrap();
    /// let matching = ticket.wait().unwrap();
    /// assert_eq!(matching.len(), 1);
    /// service.shutdown();
    /// ```
    pub fn serve(self: Arc<Self>, config: ServiceConfig) -> EngineService {
        EngineService::spawn(self, config)
    }

    /// Open a persistent [`MatchSession`]: batches submitted over time
    /// consume the inventory, and the incrementally-maintained skyline
    /// survives across batches (the paper's online deployment, §IV-B).
    pub fn session(&self) -> MatchSession<'_> {
        let io = IoSession::new(&self.tree);
        let maintainer = SkylineMaintainer::build(&io);
        MatchSession {
            engine: self,
            io,
            maintainer,
            scratch: Scratch::new(),
            assigned: 0,
            batches: 0,
        }
    }

    /// Evaluate a slice of independent requests on a built-in scoped
    /// worker pool, returning the matchings **in input order** plus
    /// aggregated [`BatchMetrics`].
    ///
    /// This is a thin submit-all-then-wait wrapper over the same
    /// scheduling machinery that powers the long-lived [`EngineService`]
    /// — one code path decides which worker runs which request. The
    /// workers are scoped threads; each owns one persistent [`Scratch`]
    /// across its whole request stream, and every run reads the shared
    /// index through its own per-run [`IoSession`] — so every returned
    /// [`Matching::metrics`] still reports exactly its own run's I/O,
    /// and the result of every request is **identical to evaluating it
    /// sequentially** (each evaluation is deterministic and the index is
    /// never mutated; only buffer hit/miss counts feel the concurrency).
    ///
    /// `threads == 0` means "one worker per available core".
    ///
    /// For multi-core scaling pair this with
    /// [`EngineBuilder::buffer_shards`] (shards ≈ threads), otherwise
    /// every worker funnels through the buffer pool's single lock.
    ///
    /// If any request fails validation, the error of the first failing
    /// request (in input order) is returned before any evaluation work
    /// is spent.
    pub fn evaluate_batch(
        &self,
        requests: &[MatchRequest<'_, '_>],
        threads: usize,
    ) -> Result<BatchOutcome, MpqError> {
        let wall_start = Instant::now();
        let n = requests.len();
        let threads = resolved_workers(threads).clamp(1, n.max(1));

        // Fail fast: all evaluation errors are request-shape errors, so
        // an invalid request is caught here — in input order — before
        // any work is spent on the rest of the batch. Requests built on
        // a *different* engine are refused outright (same guard as
        // `ServiceClient::submit_with`): this engine's workers would
        // otherwise evaluate them against the wrong inventory.
        for request in requests {
            if !std::ptr::eq(request.engine(), self) {
                return Err(MpqError::UnsupportedRequest(
                    "request was built against a different engine than this batch's",
                ));
            }
            request.validate()?;
        }

        // The batch is one drained service run: a queue sized to the
        // batch (so submission never blocks), FIFO order, scoped workers
        // borrowing `self` instead of the long-lived service's Arc. The
        // queue payloads are *borrowed* from `requests` (the workers
        // cannot outlive the slice), so no request is cloned to travel
        // the queue. Caching is off: a batch is explicit about its
        // request list, and per-request [`RunMetrics`] stay exact only
        // when every request pays its own run.
        let core = ServiceCore::new(
            &ServiceConfig::default()
                .workers(threads)
                .queue_capacity(n.max(1))
                .cache_capacity(0),
            threads,
        );
        let mut results: Vec<Result<Matching, MpqError>> = Vec::with_capacity(n);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let core = &core;
                scope.spawn(move || worker_loop(core, crate::service::BackendRef::Single(self)));
            }
            let tickets: Vec<_> = requests
                .iter()
                .map(|r| {
                    let (functions, options) = r.parts();
                    core.enqueue(
                        Cow::Borrowed(functions),
                        Cow::Borrowed(options),
                        SubmitOptions::default(),
                    )
                    .expect("batch queue is sized to the batch and not shutting down")
                })
                .collect();
            results.extend(tickets.into_iter().map(|t| t.wait()));
            // All tickets resolved: let the scoped workers drain out so
            // the scope can join them.
            core.begin_shutdown();
        });

        let mut matchings = Vec::with_capacity(n);
        let mut metrics = BatchMetrics {
            threads,
            requests: n,
            ..BatchMetrics::default()
        };
        for result in results {
            let m = result?;
            let met = m.metrics();
            metrics.io += met.io;
            metrics.cpu_total += met.elapsed;
            metrics.loops += met.loops;
            metrics.top1_searches += met.top1_searches;
            metrics.reverse_top1_calls += met.reverse_top1_calls;
            matchings.push(m);
        }
        metrics.wall = wall_start.elapsed();
        Ok(BatchOutcome { matchings, metrics })
    }

    fn validate_functions(&self, functions: &FunctionSet) -> Result<(), MpqError> {
        if functions.n_alive() == 0 {
            return Err(MpqError::EmptyFunctions);
        }
        if functions.dim() != self.dim {
            return Err(MpqError::DimensionMismatch {
                engine: self.dim,
                functions: functions.dim(),
            });
        }
        Ok(())
    }
}

/// One evaluation against a prepared [`Engine`], configured fluently.
///
/// ```
/// # use mpq_core::{Algorithm, Engine};
/// # use mpq_rtree::PointSet;
/// # use mpq_ta::FunctionSet;
/// # let mut objects = PointSet::new(2);
/// # for p in [[0.9_f64, 0.2], [0.2, 0.9], [0.7, 0.7]] { objects.push(&p); }
/// # let engine = Engine::builder().objects(&objects).build().unwrap();
/// # let functions = FunctionSet::from_rows(2, &[vec![0.5, 0.5]]);
/// let matching = engine
///     .request(&functions)
///     .algorithm(Algorithm::Sb)
///     .exclude([1u64]) // object 1 is already reserved
///     .evaluate()
///     .unwrap();
/// ```
#[derive(Debug)]
pub struct MatchRequest<'e, 'f> {
    engine: &'e Engine,
    functions: &'f FunctionSet,
    options: RequestOptions,
}

/// The owned, engine-independent core of a [`MatchRequest`]: every knob
/// except the borrowed engine and function set. Detaching the options
/// (plus a clone of the functions) is what lets a request outlive its
/// submission scope and travel through the [`crate::service`] queue to a
/// worker thread.
#[derive(Debug, Clone)]
pub(crate) struct RequestOptions {
    pub(crate) algorithm: Algorithm,
    pub(crate) best_pair: BestPairMode,
    pub(crate) maintenance: MaintenanceMode,
    pub(crate) multi_pair: bool,
    pub(crate) bf_strategy: BfStrategy,
    pub(crate) exclude: HashSet<u64>,
    pub(crate) capacities: Option<Vec<u32>>,
}

impl Default for RequestOptions {
    fn default() -> RequestOptions {
        RequestOptions {
            algorithm: Algorithm::Sb,
            best_pair: BestPairMode::Ta,
            maintenance: MaintenanceMode::Incremental,
            multi_pair: true,
            bf_strategy: BfStrategy::Incremental,
            exclude: HashSet::new(),
            capacities: None,
        }
    }
}

/// Request-shape checks shared by direct evaluation and the service
/// queue: everything evaluation can fail on, with no evaluation work.
/// [`Engine::evaluate_batch`] and [`crate::service::ServiceClient`] run
/// this *before* enqueueing, so an invalid request is reported to the
/// submitter instead of travelling to a worker first.
pub(crate) fn validate_options(
    engine: &Engine,
    functions: &FunctionSet,
    options: &RequestOptions,
) -> Result<(), MpqError> {
    engine.validate_functions(functions)?;
    validate_options_shape(engine.oid_bound() as usize, options)
}

/// The engine-independent half of [`validate_options`]: request-shape
/// checks against an id bound. Shared with the sharded evaluation path,
/// which validates against the *global* id bound (same errors, same
/// strings) before scattering.
pub(crate) fn validate_options_shape(
    oid_bound: usize,
    options: &RequestOptions,
) -> Result<(), MpqError> {
    if let Some(caps) = &options.capacities {
        // Capacities are indexed by object id; ids are never recycled,
        // so the vector must cover the full id bound even when removals
        // left holes below it.
        let expected = oid_bound;
        if caps.len() != expected {
            return Err(MpqError::CapacityMismatch {
                expected,
                got: caps.len(),
            });
        }
        if options.algorithm != Algorithm::Sb {
            return Err(MpqError::UnsupportedRequest(
                "capacities are only supported with Algorithm::Sb",
            ));
        }
        // Reject — rather than silently ignore — SB ablation knobs
        // the capacitated path does not implement. (multi_pair does
        // not apply: the capacitated greedy emits one pair per loop.)
        if options.maintenance != MaintenanceMode::Incremental {
            return Err(MpqError::UnsupportedRequest(
                "capacities do not support the rescan maintenance ablation",
            ));
        }
        if options.best_pair != BestPairMode::Ta {
            return Err(MpqError::UnsupportedRequest(
                "capacities only support the TA best-pair mode",
            ));
        }
    }
    Ok(())
}

/// The one evaluation code path: validate and run `options` over
/// `functions` against the engine's shared index, serving working state
/// from `scratch`. Direct [`MatchRequest::evaluate_with`] calls, the
/// batch workers, and the [`crate::service`] workers all land here.
pub(crate) fn evaluate_options(
    engine: &Engine,
    functions: &FunctionSet,
    options: &RequestOptions,
    scratch: &mut Scratch,
) -> Result<Matching, MpqError> {
    evaluate_options_seeded(engine, functions, options, scratch, None, None)
}

/// Seed-capable form of [`evaluate_options`] — the actual single
/// evaluation code path. Dispatch is **uniform**: every configuration
/// takes the same `seed`/`capture` arguments, and only the resumable
/// one (SB, incremental maintenance, no capacities) honors them — it
/// primes the skyline from `seed` when the seed is still pinned to the
/// engine's current inventory, and leaves this run's own [`EvalSeed`]
/// in `capture`. Every other configuration silently declines both and
/// runs cold, so callers (the service workers, the bench harnesses)
/// never branch on the algorithm. Seeded and cold evaluation of the
/// same request are score-bit-identical (see [`crate::seed`]).
pub(crate) fn evaluate_options_seeded(
    engine: &Engine,
    functions: &FunctionSet,
    options: &RequestOptions,
    scratch: &mut Scratch,
    seed: Option<&EvalSeed>,
    capture: Option<&mut Option<EvalSeed>>,
) -> Result<Matching, MpqError> {
    validate_options(engine, functions, options)?;
    engine.evaluations.fetch_add(1, AtomicOrdering::Relaxed);
    let version_before = engine.inventory_version();
    let session = IoSession::new(&engine.tree);

    if let Some(caps) = &options.capacities {
        return Ok(run_capacity_on(&session, functions, caps, &options.exclude));
    }

    match options.algorithm {
        Algorithm::Sb => {
            let cfg = sb_config_of(engine, options);
            match options.maintenance {
                MaintenanceMode::Incremental => {
                    // A mutation that straddled the session pin makes
                    // the pinned epoch ambiguous: decline the seed and
                    // capture nothing rather than guess. (Versions are
                    // monotone and minted at commit, so equality here
                    // proves the pinned tree *is* the `version` epoch.)
                    let version = engine.inventory_version();
                    let stable = version == version_before;
                    let part = seed
                        .filter(|s| stable && s.parts.len() == 1 && s.usable_at(&[version]))
                        .map(|s| &s.parts[0]);
                    let mut captured: Option<SeedPart> = None;
                    let slot = (capture.is_some() && stable).then_some(&mut captured);
                    let matching = run_sb_seeded(
                        &cfg,
                        &session,
                        functions,
                        &options.exclude,
                        scratch,
                        part,
                        slot,
                    );
                    if let Some(out) = capture {
                        *out = captured.map(|p| EvalSeed {
                            versions: vec![version],
                            parts: vec![p],
                        });
                    }
                    Ok(matching)
                }
                MaintenanceMode::Rescan => Ok(run_rescan_on(
                    &cfg,
                    &session,
                    functions,
                    &options.exclude,
                    scratch,
                )),
            }
        }
        Algorithm::BruteForce => match options.bf_strategy {
            BfStrategy::Incremental => Ok(run_incremental_on(
                &session,
                functions,
                &options.exclude,
                scratch,
            )),
            BfStrategy::Restart => Ok(run_restart_on(
                &session,
                functions,
                &options.exclude,
                scratch,
            )),
        },
        Algorithm::Chain => Ok(run_chain_on(
            &engine.config,
            &session,
            functions,
            &options.exclude,
            scratch,
        )),
    }
}

fn sb_config_of(engine: &Engine, options: &RequestOptions) -> SkylineMatcher {
    SkylineMatcher {
        index: engine.config.clone(),
        multi_pair: options.multi_pair,
        best_pair: options.best_pair,
        maintenance: options.maintenance,
    }
}

impl<'e> MatchRequest<'e, '_> {
    /// Select the algorithm (default [`Algorithm::Sb`]).
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.options.algorithm = algorithm;
        self
    }

    /// SB only: how the best function per skyline object is located
    /// (default [`BestPairMode::Ta`]).
    pub fn best_pair(mut self, mode: BestPairMode) -> Self {
        self.options.best_pair = mode;
        self
    }

    /// SB only: skyline currency strategy (default
    /// [`MaintenanceMode::Incremental`]).
    pub fn maintenance(mut self, mode: MaintenanceMode) -> Self {
        self.options.maintenance = mode;
        self
    }

    /// SB only: report all mutually-best pairs per loop (§IV-C, default
    /// `true`) or only the canonical best.
    pub fn multi_pair(mut self, multi: bool) -> Self {
        self.options.multi_pair = multi;
        self
    }

    /// Brute Force only: re-search strategy (default
    /// [`BfStrategy::Incremental`]).
    pub fn bf_strategy(mut self, strategy: BfStrategy) -> Self {
        self.options.bf_strategy = strategy;
        self
    }

    /// Mask out objects (e.g. already-reserved inventory). Excluded
    /// objects are invisible to this request: they are neither assigned
    /// nor allowed to shadow other objects. Ids not present in the
    /// engine are ignored. Accumulates across calls.
    pub fn exclude<I: IntoIterator<Item = u64>>(mut self, oids: I) -> Self {
        self.options.exclude.extend(oids);
        self
    }

    /// Per-object capacities (the many-to-one extension): `caps[oid]`
    /// users may share object `oid`. Requires [`Algorithm::Sb`] and a
    /// capacity for every object.
    pub fn capacities(mut self, caps: &[u32]) -> Self {
        self.options.capacities = Some(caps.to_vec());
        self
    }

    /// The engine this request was built against (the service checks
    /// submissions target its own engine).
    pub(crate) fn engine(&self) -> &'e Engine {
        self.engine
    }

    /// Detach the request into owned parts — a clone of the function set
    /// plus the owned options — so it can travel through the long-lived
    /// service queue to a worker thread.
    pub(crate) fn owned_parts(&self) -> (FunctionSet, RequestOptions) {
        (self.functions.clone(), self.options.clone())
    }

    /// Borrow the request's parts without detaching (the scoped
    /// [`Engine::evaluate_batch`] path, whose workers cannot outlive the
    /// request slice — no clones needed).
    pub(crate) fn parts(&self) -> (&FunctionSet, &RequestOptions) {
        (self.functions, &self.options)
    }

    /// The canonical cache identity of this request: covers the function
    /// rows (bit-exact, in function-id order, with tombstones), the
    /// algorithm and every evaluation knob, the exclusion set
    /// (order-insensitively) and the capacity vector. Pair it with
    /// [`Engine::inventory_version`] to use a
    /// [`ResultCache`](crate::ResultCache) standalone; the
    /// [`EngineService`] computes the same key
    /// internally on every submission.
    pub fn cache_key(&self) -> crate::cache::RequestKey {
        crate::cache::request_key(self.functions, &self.options)
    }

    /// Validate and evaluate the request against the engine's shared
    /// index. The index is read, never mutated; concurrent evaluations
    /// are independent and each [`Matching::metrics`] reports only its
    /// own run's I/O.
    ///
    /// Equivalent to [`MatchRequest::evaluate_with`] on a fresh
    /// [`Scratch`]; serving many requests from one reused scratch (as
    /// [`Engine::evaluate_batch`] does per worker) skips the per-run
    /// allocations.
    pub fn evaluate(&self) -> Result<Matching, MpqError> {
        self.evaluate_with(&mut Scratch::new())
    }

    /// Like [`MatchRequest::evaluate`], but serving the run's working
    /// state — function-set copy, assigned sets, SB rank-list caches,
    /// search frontiers — from a caller-owned reusable [`Scratch`]. The
    /// scratch never changes what is computed, only how often the
    /// allocator is hit; reuse one per thread across any sequence of
    /// requests.
    pub fn evaluate_with(&self, scratch: &mut Scratch) -> Result<Matching, MpqError> {
        evaluate_options(self.engine, self.functions, &self.options, scratch)
    }

    /// Seed-capable [`MatchRequest::evaluate_with`]: primes the run from
    /// `seed` when the configuration is resumable (SB, incremental
    /// maintenance, no capacities) and the seed is still pinned to the
    /// engine's current inventory — otherwise runs cold; the dispatch is
    /// uniform, so callers never branch on the algorithm. Returns the
    /// matching together with the [`EvalSeed`] this run captured (when
    /// resumable), which can prime the next refinement of this request.
    ///
    /// Seeded and cold evaluation are score-bit-identical. The
    /// [`EngineService`] drives this machinery
    /// automatically through the result cache's near-miss lookup; call
    /// it directly to manage refinement chains by hand.
    pub fn evaluate_seeded(
        &self,
        scratch: &mut Scratch,
        seed: Option<&EvalSeed>,
    ) -> Result<(Matching, Option<EvalSeed>), MpqError> {
        let mut captured = None;
        let matching = evaluate_options_seeded(
            self.engine,
            self.functions,
            &self.options,
            scratch,
            seed,
            Some(&mut captured),
        )?;
        Ok((matching, captured))
    }

    /// Progressive SB evaluation: returns a stream that yields stable
    /// pairs as soon as they are identified, reading the shared index
    /// through its own run-scoped I/O session.
    ///
    /// Requires [`Algorithm::Sb`] with incremental maintenance and no
    /// capacities.
    pub fn stream(&self) -> Result<SbStream<'static, IoSession<'e>>, MpqError> {
        self.check_streamable()?;
        let session = IoSession::new(&self.engine.tree);
        Ok(stream_on(
            &sb_config_of(self.engine, &self.options),
            session,
            self.functions,
            &self.options.exclude,
            ScratchLease::fresh(),
        ))
    }

    /// Like [`MatchRequest::stream`], but serving the stream's per-run
    /// state — working function set, rank-list caches, round buffers —
    /// from a caller-owned reusable [`Scratch`] instead of fresh
    /// allocations. Progressive consumers that open many streams (one
    /// per arriving batch) get the same zero-alloc rounds as
    /// [`MatchRequest::evaluate_with`]; the scratch never changes which
    /// pairs are yielded (asserted by the allocation regression test).
    ///
    /// The scratch is borrowed for the stream's lifetime and is ready
    /// for reuse as soon as the stream is dropped.
    pub fn stream_with<'s>(
        &self,
        scratch: &'s mut Scratch,
    ) -> Result<SbStream<'s, IoSession<'e>>, MpqError> {
        self.check_streamable()?;
        let session = IoSession::new(&self.engine.tree);
        Ok(stream_on(
            &sb_config_of(self.engine, &self.options),
            session,
            self.functions,
            &self.options.exclude,
            ScratchLease::Leased(scratch),
        ))
    }

    fn check_streamable(&self) -> Result<(), MpqError> {
        self.engine.validate_functions(self.functions)?;
        if self.options.algorithm != Algorithm::Sb {
            return Err(MpqError::UnsupportedRequest(
                "streaming is only supported with Algorithm::Sb",
            ));
        }
        if self.options.maintenance != MaintenanceMode::Incremental {
            return Err(MpqError::UnsupportedRequest(
                "streaming requires incremental skyline maintenance",
            ));
        }
        if self.options.capacities.is_some() {
            return Err(MpqError::UnsupportedRequest(
                "streaming does not support capacities",
            ));
        }
        Ok(())
    }

    /// All the request-shape checks evaluation can fail on, with no
    /// evaluation work (see [`validate_options`]).
    pub(crate) fn validate(&self) -> Result<(), MpqError> {
        validate_options(self.engine, self.functions, &self.options)
    }
}

/// Results of one [`Engine::evaluate_batch`] call: the matchings in
/// input order plus aggregated cost metrics.
#[derive(Debug)]
pub struct BatchOutcome {
    matchings: Vec<Matching>,
    metrics: BatchMetrics,
}

impl BatchOutcome {
    /// Assemble an outcome (same-crate batch runners: the unsharded
    /// batch path here and the sharded one in [`crate::shard`]).
    pub(crate) fn from_parts(matchings: Vec<Matching>, metrics: BatchMetrics) -> BatchOutcome {
        BatchOutcome { matchings, metrics }
    }

    /// The matchings, one per request, **in input order**.
    pub fn matchings(&self) -> &[Matching] {
        &self.matchings
    }

    /// Consume the outcome, yielding the matchings in input order.
    pub fn into_matchings(self) -> Vec<Matching> {
        self.matchings
    }

    /// Aggregated metrics of the whole batch.
    pub fn metrics(&self) -> &BatchMetrics {
        &self.metrics
    }

    /// Number of evaluated requests.
    pub fn len(&self) -> usize {
        self.matchings.len()
    }

    /// True iff the batch was empty.
    pub fn is_empty(&self) -> bool {
        self.matchings.is_empty()
    }
}

/// Aggregated cost counters of one [`Engine::evaluate_batch`] call.
///
/// `wall` is the end-to-end time of the batch (the throughput
/// denominator); `cpu_total` is the *sum* of per-request matching times,
/// so `cpu_total / wall` approximates the achieved parallelism. The
/// I/O and algorithm counters are sums over the per-request
/// [`RunMetrics`]; the per-request values stay available on each
/// [`Matching`].
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchMetrics {
    /// End-to-end wall-clock time of the batch.
    pub wall: Duration,
    /// Worker threads actually used.
    pub threads: usize,
    /// Number of requests evaluated.
    pub requests: usize,
    /// Summed per-request object-tree I/O.
    pub io: IoStats,
    /// Summed per-request matching (CPU) time.
    pub cpu_total: Duration,
    /// Summed algorithm outer loops.
    pub loops: u64,
    /// Summed object-tree top-1 searches (BF, Chain).
    pub top1_searches: u64,
    /// Summed reverse top-1 (TA) invocations (SB).
    pub reverse_top1_calls: u64,
}

impl BatchMetrics {
    /// Batch throughput: requests per wall-clock second. Guarded
    /// arithmetic (shared with
    /// [`ServiceMetrics`](crate::service::ServiceMetrics)): an empty
    /// batch or an unmeasurably fast / zero-duration wall clock yields
    /// `0.0`, never `inf` or NaN.
    pub fn requests_per_sec(&self) -> f64 {
        safe_rate(self.requests as u64, self.wall)
    }
}

/// A persistent matching session over one engine: batches submitted over
/// time consume the inventory, and the R-tree **and** the
/// incrementally-maintained skyline (with its plists, §IV-B) survive
/// across batches — each batch pays only for its own best-pair search
/// plus the maintenance its assignments cause.
///
/// Unlike stateless [`MatchRequest`]s, a session holds state (the
/// consumed inventory), so it is a `&mut self` API; open one session per
/// logical inventory stream. Sessions account their page traffic in
/// their own [`mpq_rtree::IoSession`], so stateless requests may keep
/// hitting the same engine concurrently.
pub struct MatchSession<'e> {
    engine: &'e Engine,
    io: IoSession<'e>,
    maintainer: SkylineMaintainer,
    /// Per-batch working state (function-set copy, rank-list caches,
    /// round buffers), reused across batches.
    scratch: Scratch,
    assigned: u64,
    batches: u64,
}

impl MatchSession<'_> {
    /// Objects not yet reserved by any earlier batch.
    pub fn objects_remaining(&self) -> u64 {
        self.engine.tree.len() - self.assigned
    }

    /// Number of batches processed so far.
    pub fn batches_processed(&self) -> u64 {
        self.batches
    }

    /// Current skyline size (diagnostic).
    pub fn skyline_len(&self) -> usize {
        self.maintainer.len()
    }

    /// Total I/O this session has caused since it was opened (including
    /// the initial skyline computation).
    pub fn io_stats(&self) -> mpq_rtree::IoStats {
        self.io.stats()
    }

    /// Match one arriving batch against the remaining inventory.
    /// Returns the batch's stable matching; the assigned objects stay
    /// reserved for subsequent batches.
    pub fn submit(&mut self, functions: &FunctionSet) -> Result<Matching, MpqError> {
        self.engine.validate_functions(functions)?;
        self.batches += 1;
        let start = Instant::now();
        let io_start = self.io.stats();
        let mut metrics = RunMetrics::default();

        self.scratch.fs.copy_from(functions);
        let mut rt1 = Some(ReverseTopOne::build(&self.scratch.fs));
        // rank-list caches are fresh per batch (cleared, buffers
        // reused); the maintainer persists
        self.scratch.fbest.clear();
        self.scratch.obest.clear();
        let no_exclusions = HashSet::new();
        let mut pairs: Vec<Pair> = Vec::new();

        while self.scratch.fs.n_alive() > 0 && !self.maintainer.is_empty() {
            sb_loop_round(
                &self.io,
                &mut self.maintainer,
                &mut self.scratch.fs,
                &mut rt1,
                &mut self.scratch.fbest,
                &mut self.scratch.obest,
                &mut self.scratch.round,
                &no_exclusions,
                BestPairMode::Ta,
                true,
                &mut metrics,
            );
            // every pair removed one distinct object from the inventory
            self.assigned += self.scratch.round.pairs.len() as u64;
            pairs.extend_from_slice(&self.scratch.round.pairs);
        }

        metrics.elapsed = start.elapsed();
        metrics.io = self.io.stats().since(io_start);
        metrics.skyline = Some(self.maintainer.stats());
        if let Some(rt1) = &rt1 {
            metrics.ta = Some(rt1.stats());
        }
        Ok(Matching::new(pairs, metrics))
    }
}
