//! Typed errors for the engine API.
//!
//! The legacy [`crate::Matcher::run`] path reported malformed input by
//! panicking somewhere inside the index or matcher internals. The engine
//! API validates at the boundary instead — [`crate::Engine::builder`]
//! checks the object set before paying for a bulk load, and
//! [`crate::MatchRequest::evaluate`] checks the request against the
//! prepared engine — and reports what is wrong with a [`MpqError`].

use mpq_ta::WeightError;

/// Why an engine could not be built or a match request not evaluated.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MpqError {
    /// The object set contains no points; there is nothing to index.
    EmptyObjects,
    /// The function set contains no alive functions; there is nobody to
    /// match.
    EmptyFunctions,
    /// An object coordinate is NaN or infinite.
    NonFiniteCoordinate {
        /// Object id (point index) of the offending point.
        oid: u64,
        /// Dimension of the offending coordinate.
        dim: usize,
        /// The offending value.
        value: f64,
    },
    /// An object coordinate lies outside the `[0, 1]` preference space
    /// the skyline and ranked-search bounds assume.
    CoordinateOutOfRange {
        /// Object id (point index) of the offending point.
        oid: u64,
        /// Dimension of the offending coordinate.
        dim: usize,
        /// The offending value.
        value: f64,
    },
    /// The request's functions do not share the engine's dimensionality.
    DimensionMismatch {
        /// Dimensionality the engine was built with.
        engine: usize,
        /// Dimensionality of the request's functions.
        functions: usize,
    },
    /// A weight row was rejected while assembling a function set.
    InvalidFunction {
        /// Row index of the offending function.
        index: usize,
        /// What was wrong with the row.
        source: WeightError,
    },
    /// The capacity vector does not cover every object exactly once.
    CapacityMismatch {
        /// Number of objects in the engine.
        expected: usize,
        /// Length of the provided capacity vector.
        got: usize,
    },
    /// The request combines options the engine cannot serve together
    /// (e.g. capacities with a non-SB algorithm).
    UnsupportedRequest(&'static str),
    /// The service's submission queue is full and its backpressure
    /// policy is [`BackpressurePolicy::Reject`]. The request was not
    /// enqueued; back off and resubmit.
    ///
    /// [`BackpressurePolicy::Reject`]: crate::service::BackpressurePolicy::Reject
    Overloaded,
    /// The request's deadline passed before a worker could start it.
    /// The evaluation was never run.
    DeadlineExceeded,
    /// The request was cancelled via [`crate::service::Ticket::cancel`]
    /// before its result was delivered.
    Cancelled,
    /// The service has begun shutting down and no longer accepts
    /// submissions (already-queued requests still drain to completion).
    ServiceStopped,
    /// A service worker panicked while evaluating this request. The
    /// worker survives and keeps serving; only this request is lost.
    WorkerPanicked,
    /// A mutation named an object id the engine does not hold.
    UnknownObject {
        /// The missing object id.
        oid: u64,
    },
    /// A mutation's point does not share the engine's dimensionality.
    PointDimensionMismatch {
        /// Dimensionality the engine was built with.
        engine: usize,
        /// Dimensionality of the mutation's point.
        point: usize,
    },
    /// A persistence (disk) operation failed; carries the OS error text.
    /// The engine's in-memory state is unchanged — a failed mutation was
    /// not applied.
    Io(String),
    /// The engine's storage is degraded: a previous durability failure
    /// left the persistence layer unable to accept new commits (e.g. a
    /// WAL rollback failed, so the log may hold an unacknowledged
    /// record). Reads keep serving from the last committed snapshot;
    /// mutations are refused until a checkpoint repairs the log. Back
    /// off and retry after the storage recovers.
    StorageDegraded,
}

impl From<std::io::Error> for MpqError {
    fn from(e: std::io::Error) -> MpqError {
        MpqError::Io(e.to_string())
    }
}

impl std::fmt::Display for MpqError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpqError::EmptyObjects => write!(f, "object set is empty"),
            MpqError::EmptyFunctions => write!(f, "function set is empty"),
            MpqError::NonFiniteCoordinate { oid, dim, value } => write!(
                f,
                "object {oid} has non-finite coordinate {value} at dimension {dim}"
            ),
            MpqError::CoordinateOutOfRange { oid, dim, value } => write!(
                f,
                "object {oid} has coordinate {value} at dimension {dim} outside [0, 1]; \
                 normalize attributes to larger-is-better unit scale first"
            ),
            MpqError::DimensionMismatch { engine, functions } => write!(
                f,
                "functions have dimensionality {functions}, engine was built with {engine}"
            ),
            MpqError::InvalidFunction { index, source } => {
                write!(f, "function row {index}: {source}")
            }
            MpqError::CapacityMismatch { expected, got } => write!(
                f,
                "capacity vector has {got} entries, engine holds {expected} objects"
            ),
            MpqError::UnsupportedRequest(msg) => write!(f, "unsupported request: {msg}"),
            MpqError::Overloaded => write!(
                f,
                "service queue is full (reject backpressure); back off and resubmit"
            ),
            MpqError::DeadlineExceeded => {
                write!(f, "request deadline passed before evaluation started")
            }
            MpqError::Cancelled => write!(f, "request was cancelled"),
            MpqError::ServiceStopped => {
                write!(f, "service is shutting down and no longer accepts requests")
            }
            MpqError::WorkerPanicked => {
                write!(f, "a service worker panicked while evaluating this request")
            }
            MpqError::UnknownObject { oid } => {
                write!(f, "engine holds no object with id {oid}")
            }
            MpqError::PointDimensionMismatch { engine, point } => write!(
                f,
                "point has dimensionality {point}, engine was built with {engine}"
            ),
            MpqError::Io(msg) => write!(f, "persistence error: {msg}"),
            MpqError::StorageDegraded => write!(
                f,
                "storage is degraded after a durability failure; mutations are \
                 refused until a checkpoint repairs the log (reads still serve \
                 the last committed snapshot)"
            ),
        }
    }
}

impl std::error::Error for MpqError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MpqError::InvalidFunction { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_actionable() {
        let e = MpqError::CoordinateOutOfRange {
            oid: 7,
            dim: 2,
            value: 1.5,
        };
        let msg = e.to_string();
        assert!(msg.contains("object 7"), "{msg}");
        assert!(msg.contains("1.5"), "{msg}");
        assert!(msg.contains("normalize"), "{msg}");
    }

    #[test]
    fn invalid_function_carries_source() {
        use std::error::Error;
        let e = MpqError::InvalidFunction {
            index: 3,
            source: WeightError::AllZero,
        };
        assert!(e.source().is_some());
        assert!(e.to_string().contains("row 3"));
    }
}
