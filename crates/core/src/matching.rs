//! Shared vocabulary of the matchers: assignment pairs, run metrics, the
//! [`Matcher`] trait, and index construction defaults.

use std::time::Duration;

use mpq_rtree::{IoStats, PointSet, RTree, RTreeParams};
use mpq_skyline::SkylineStats;
use mpq_ta::{FunctionSet, TaStats};

/// One stable assignment: function `fid` gets object `oid` at `score`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pair {
    /// The assigned preference function (user).
    pub fid: u32,
    /// The object assigned to it.
    pub oid: u64,
    /// The score `f(o)` of the pair.
    pub score: f64,
}

impl Pair {
    /// The canonical total order on pairs used by every matcher for
    /// tie-breaking: higher score first, then smaller function id, then
    /// smaller object id. Returns `true` iff `self` precedes `other`.
    #[inline]
    pub fn beats(&self, other: &Pair) -> bool {
        match self.score.total_cmp(&other.score) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Equal => (self.fid, self.oid) < (other.fid, other.oid),
        }
    }
}

/// Cost counters for one matcher run. The object-tree `io` counters are
/// the paper's "I/O accesses"; everything else is introspection.
#[derive(Debug, Default, Clone, Copy)]
pub struct RunMetrics {
    /// Object R-tree page traffic during matching (build excluded).
    pub io: IoStats,
    /// Wall-clock time of the matching phase (index build excluded).
    pub elapsed: Duration,
    /// Algorithm outer loops (SB loops, BF pops, chain steps).
    pub loops: u64,
    /// Top-1 ranked searches against the *object* tree (BF, Chain).
    pub top1_searches: u64,
    /// Top-1 searches against the in-memory *function* tree (Chain only).
    pub fun_top1_searches: u64,
    /// Page traffic of the in-memory function tree (Chain only; not part
    /// of `io` because the paper keeps `F` in memory).
    pub fun_io: IoStats,
    /// Reverse top-1 (TA) invocations (SB only).
    pub reverse_top1_calls: u64,
    /// Peak total size of persistent search frontiers (incremental
    /// Brute Force only) — the memory footprint that makes the paper's
    /// BF run out of memory on anti-correlated `D = 6` data.
    pub peak_frontier: u64,
    /// Skyline computation/maintenance counters (SB only).
    pub skyline: Option<SkylineStats>,
    /// TA scan counters (SB only).
    pub ta: Option<TaStats>,
}

/// The result of a matcher run: the stable pairs in the order the
/// algorithm emitted them, plus cost metrics.
#[derive(Debug, Clone, Default)]
pub struct Matching {
    pairs: Vec<Pair>,
    metrics: RunMetrics,
}

impl Matching {
    /// Assemble a result (used by the matcher implementations).
    pub fn new(pairs: Vec<Pair>, metrics: RunMetrics) -> Matching {
        Matching { pairs, metrics }
    }

    /// The stable pairs, in emission order.
    pub fn pairs(&self) -> &[Pair] {
        &self.pairs
    }

    /// Number of assignments made.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True iff no assignment was made.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Cost metrics of the run.
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }

    /// Sum of all pair scores (the "social welfare" of the assignment).
    pub fn total_score(&self) -> f64 {
        self.pairs.iter().map(|p| p.score).sum()
    }

    /// Pairs sorted into the canonical order (for set comparisons).
    pub fn sorted_pairs(&self) -> Vec<Pair> {
        let mut v = self.pairs.clone();
        v.sort_by(|a, b| {
            b.score
                .total_cmp(&a.score)
                .then_with(|| a.fid.cmp(&b.fid))
                .then_with(|| a.oid.cmp(&b.oid))
        });
        v
    }
}

/// A stable-matching algorithm over `(objects, functions)`.
pub trait Matcher {
    /// Human-readable name used in experiment output.
    fn name(&self) -> &'static str;

    /// Compute the stable matching. Implementations build their own
    /// index over `objects` and work on a private copy of `functions`;
    /// the inputs are not mutated.
    fn run(&self, objects: &PointSet, functions: &FunctionSet) -> Matching;
}

/// How matchers build and buffer the object R-tree.
///
/// Defaults follow the paper's setup: 4 KiB pages and an LRU buffer
/// sized at 2% of the tree.
#[derive(Debug, Clone)]
pub struct IndexConfig {
    /// Page size in bytes.
    pub page_size: usize,
    /// Buffer capacity as a fraction of the tree's page count.
    pub buffer_fraction: f64,
    /// Lower bound on the buffer capacity, in pages.
    pub min_buffer_pages: usize,
}

impl Default for IndexConfig {
    fn default() -> Self {
        IndexConfig {
            page_size: 4096,
            buffer_fraction: 0.02,
            min_buffer_pages: 8,
        }
    }
}

impl IndexConfig {
    /// Bulk-load `objects` and size the buffer; I/O counters start at
    /// zero with a cold buffer.
    pub fn build_tree(&self, objects: &PointSet) -> RTree {
        let params = RTreeParams {
            page_size: self.page_size,
            min_fill_ratio: 0.4,
            buffer_capacity: self.min_buffer_pages.max(1),
        };
        let tree = RTree::bulk_load(objects, params);
        let cap =
            ((tree.page_count() as f64 * self.buffer_fraction) as usize).max(self.min_buffer_pages);
        tree.set_buffer_capacity(cap);
        tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_order_breaks_ties_by_fid_then_oid() {
        let a = Pair {
            fid: 1,
            oid: 5,
            score: 0.9,
        };
        let b = Pair {
            fid: 2,
            oid: 1,
            score: 0.9,
        };
        let c = Pair {
            fid: 1,
            oid: 6,
            score: 0.9,
        };
        let d = Pair {
            fid: 0,
            oid: 0,
            score: 0.8,
        };
        assert!(a.beats(&b), "same score: smaller fid wins");
        assert!(a.beats(&c), "same score+fid: smaller oid wins");
        assert!(a.beats(&d), "higher score wins regardless of ids");
        assert!(!d.beats(&a));
    }

    #[test]
    fn matching_total_score_and_sorting() {
        let m = Matching::new(
            vec![
                Pair {
                    fid: 2,
                    oid: 2,
                    score: 0.5,
                },
                Pair {
                    fid: 1,
                    oid: 1,
                    score: 0.7,
                },
            ],
            RunMetrics::default(),
        );
        assert!((m.total_score() - 1.2).abs() < 1e-12);
        let sorted = m.sorted_pairs();
        assert_eq!(sorted[0].fid, 1);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn index_config_sizes_buffer_as_fraction() {
        let mut ps = PointSet::new(2);
        let mut state = 1u64;
        for _ in 0..20_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = ((state >> 33) as f64) / (1u64 << 31) as f64;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let b = ((state >> 33) as f64) / (1u64 << 31) as f64;
            ps.push(&[a, b]);
        }
        let cfg = IndexConfig::default();
        let tree = cfg.build_tree(&ps);
        let expect = ((tree.page_count() as f64 * 0.02) as usize).max(8);
        assert_eq!(tree.buffer_capacity(), expect);
        assert_eq!(
            tree.io_stats(),
            IoStats::default(),
            "build I/O must be reset"
        );
    }
}
