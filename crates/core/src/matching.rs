//! Shared vocabulary of the matchers: assignment pairs, run metrics, the
//! [`Matcher`] trait, and index construction defaults.

use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::time::Duration;

use mpq_rtree::{IoStats, PointSet, RTree, RTreeParams};
use mpq_skyline::SkylineStats;
use mpq_ta::{FunctionSet, TaStats};

use crate::engine::Engine;
use crate::error::MpqError;

/// One stable assignment: function `fid` gets object `oid` at `score`.
///
/// Pairs are totally ordered by the **canonical order** every matcher
/// uses for tie-breaking: higher score first ([`f64::total_cmp`]), then
/// smaller function id, then smaller object id. [`Ord`] follows that
/// order, so sorting a `Vec<Pair>` ascending yields assignment
/// (descending-score) order; equality is `total_cmp`-based, making the
/// order total even on non-finite scores.
#[derive(Debug, Clone, Copy)]
pub struct Pair {
    /// The assigned preference function (user).
    pub fid: u32,
    /// The object assigned to it.
    pub oid: u64,
    /// The score `f(o)` of the pair.
    pub score: f64,
}

impl Pair {
    /// `true` iff `self` precedes `other` in the canonical order (see
    /// the type-level docs). Equivalent to `self < other`.
    #[inline]
    pub fn beats(&self, other: &Pair) -> bool {
        self.cmp(other) == std::cmp::Ordering::Less
    }
}

impl PartialEq for Pair {
    #[inline]
    fn eq(&self, other: &Pair) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for Pair {}

impl PartialOrd for Pair {
    #[inline]
    fn partial_cmp(&self, other: &Pair) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Pair {
    /// The canonical order: `Less` means `self` is assigned first.
    #[inline]
    fn cmp(&self, other: &Pair) -> std::cmp::Ordering {
        other
            .score
            .total_cmp(&self.score)
            .then_with(|| self.fid.cmp(&other.fid))
            .then_with(|| self.oid.cmp(&other.oid))
    }
}

/// Cost counters for one matcher run. The object-tree `io` counters are
/// the paper's "I/O accesses"; everything else is introspection.
#[derive(Debug, Default, Clone, Copy)]
pub struct RunMetrics {
    /// Object R-tree page traffic during matching (build excluded).
    pub io: IoStats,
    /// Wall-clock time of the matching phase (index build excluded).
    pub elapsed: Duration,
    /// Algorithm outer loops (SB loops, BF pops, chain steps).
    pub loops: u64,
    /// Top-1 ranked searches against the *object* tree (BF, Chain).
    pub top1_searches: u64,
    /// Top-1 searches against the in-memory *function* tree (Chain only).
    pub fun_top1_searches: u64,
    /// Page traffic of the in-memory function tree (Chain only; not part
    /// of `io` because the paper keeps `F` in memory).
    pub fun_io: IoStats,
    /// Reverse top-1 (TA) invocations (SB only).
    pub reverse_top1_calls: u64,
    /// Peak total size of persistent search frontiers (incremental
    /// Brute Force only) — the memory footprint that makes the paper's
    /// BF run out of memory on anti-correlated `D = 6` data.
    pub peak_frontier: u64,
    /// Skyline computation/maintenance counters (SB only).
    pub skyline: Option<SkylineStats>,
    /// TA scan counters (SB only).
    pub ta: Option<TaStats>,
}

/// The result of a matcher run: the stable pairs in the order the
/// algorithm emitted them, plus cost metrics.
#[derive(Debug, Clone, Default)]
pub struct Matching {
    pairs: Vec<Pair>,
    metrics: RunMetrics,
}

impl Matching {
    /// Assemble a result (used by the matcher implementations).
    pub fn new(pairs: Vec<Pair>, metrics: RunMetrics) -> Matching {
        Matching { pairs, metrics }
    }

    /// The stable pairs, in emission order.
    pub fn pairs(&self) -> &[Pair] {
        &self.pairs
    }

    /// Number of assignments made.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True iff no assignment was made.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Cost metrics of the run.
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }

    /// Sum of all pair scores (the "social welfare" of the assignment).
    pub fn total_score(&self) -> f64 {
        self.pairs.iter().map(|p| p.score).sum()
    }

    /// Pairs sorted into the canonical order (for set comparisons).
    pub fn sorted_pairs(&self) -> Vec<Pair> {
        let mut v = self.pairs.clone();
        v.sort_unstable();
        v
    }

    /// Approximate heap footprint of this matching — what a
    /// [`ResultCache`](crate::ResultCache) entry holding it costs
    /// against the cache's byte bound.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Matching>() + self.pairs.len() * std::mem::size_of::<Pair>()
    }
}

/// A stable-matching algorithm over `(objects, functions)`.
///
/// A matcher value is a bundle of algorithm configuration. Evaluation
/// goes through a prepared [`Engine`]: build the engine once (paying the
/// index bulk load once), then evaluate any number of requests against
/// it with [`Matcher::run_on`] — or, more directly, with
/// [`Engine::request`].
pub trait Matcher {
    /// Human-readable name used in experiment output.
    fn name(&self) -> &'static str;

    /// The index configuration this matcher uses when it must build its
    /// own engine (the deprecated [`Matcher::run`] path).
    fn index_config(&self) -> &IndexConfig;

    /// Evaluate this matcher's configuration against a prepared engine.
    /// The engine's shared index is not mutated; any number of `run_on`
    /// calls (also from different threads) may target one engine.
    fn run_on(&self, engine: &Engine, functions: &FunctionSet) -> Result<Matching, MpqError>;

    /// Compute the stable matching, building a private single-use engine
    /// over `objects` first.
    ///
    /// Every call pays a full index bulk load; serving more than one
    /// request this way is exactly the cost the engine API exists to
    /// avoid. Kept as a migration shim.
    ///
    /// # Panics
    /// Panics if the inputs are invalid (the engine path reports the
    /// same conditions as [`MpqError`] values instead).
    #[deprecated(
        since = "0.2.0",
        note = "build an Engine once with Engine::builder() and evaluate \
                MatchRequests (or Matcher::run_on) against it"
    )]
    fn run(&self, objects: &PointSet, functions: &FunctionSet) -> Matching {
        if objects.is_empty() || functions.n_alive() == 0 {
            return Matching::default();
        }
        let engine = Engine::builder()
            .index(self.index_config().clone())
            .objects(objects)
            .build()
            .unwrap_or_else(|e| panic!("invalid matcher input: {e}"));
        self.run_on(&engine, functions)
            .unwrap_or_else(|e| panic!("invalid matcher input: {e}"))
    }
}

/// How matchers build and buffer the object R-tree.
///
/// Defaults follow the paper's setup: 4 KiB pages and an LRU buffer
/// sized at 2% of the tree.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexConfig {
    /// Page size in bytes.
    pub page_size: usize,
    /// Buffer capacity as a fraction of the tree's page count.
    pub buffer_fraction: f64,
    /// Lower bound on the buffer capacity, in pages.
    pub min_buffer_pages: usize,
}

impl Default for IndexConfig {
    fn default() -> Self {
        IndexConfig {
            page_size: 4096,
            buffer_fraction: 0.02,
            min_buffer_pages: 8,
        }
    }
}

/// Process-wide count of object R-tree bulk loads performed through
/// [`IndexConfig::build_tree`] (see [`index_build_count`]).
static INDEX_BUILDS: AtomicU64 = AtomicU64::new(0);

/// Process-wide number of object R-tree bulk loads performed so far.
///
/// Diagnostic: lets deployments (and tests) assert that a shared
/// [`Engine`] really amortizes index construction — N requests against
/// one engine advance this counter by exactly 1.
pub fn index_build_count() -> u64 {
    INDEX_BUILDS.load(AtomicOrdering::Relaxed)
}

impl IndexConfig {
    /// Bulk-load `objects` and size the buffer; I/O counters start at
    /// zero with a cold buffer.
    pub fn build_tree(&self, objects: &PointSet) -> RTree {
        self.build_tree_in(mpq_rtree::MemPager::new(self.page_size), objects)
    }

    /// Like [`IndexConfig::build_tree`], but persisting the pages into a
    /// caller-supplied [`PageStore`](mpq_rtree::PageStore) — e.g. a
    /// [`DiskPager`](mpq_rtree::DiskPager) for a disk-backed engine.
    /// The store's page size must equal [`IndexConfig::page_size`].
    pub fn build_tree_in<S: mpq_rtree::PageStore + 'static>(
        &self,
        store: S,
        objects: &PointSet,
    ) -> RTree {
        self.build_tree_with_oids_in(store, objects, None)
    }

    /// Like [`IndexConfig::build_tree_in`], but indexing `objects[i]`
    /// under `oids[i]` instead of the point index — the path sharded
    /// engines use so every per-shard tree speaks global object ids
    /// natively.
    pub(crate) fn build_tree_with_oids_in<S: mpq_rtree::PageStore + 'static>(
        &self,
        store: S,
        objects: &PointSet,
        oids: Option<&[u64]>,
    ) -> RTree {
        INDEX_BUILDS.fetch_add(1, AtomicOrdering::Relaxed);
        let params = RTreeParams {
            page_size: self.page_size,
            min_fill_ratio: 0.4,
            buffer_capacity: self.min_buffer_pages.max(1),
        };
        let tree = RTree::bulk_load_with_oids_in(store, objects, oids, params);
        tree.set_buffer_capacity(self.buffer_pages_for(tree.page_count()));
        tree
    }

    /// The buffer capacity this configuration prescribes for a tree of
    /// `page_count` pages. Rounds to the nearest page: truncation
    /// under-sizes the buffer by up to one page, which is visible at the
    /// paper's 2% default on small trees.
    pub fn buffer_pages_for(&self, page_count: usize) -> usize {
        ((page_count as f64 * self.buffer_fraction).round() as usize).max(self.min_buffer_pages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_order_breaks_ties_by_fid_then_oid() {
        let a = Pair {
            fid: 1,
            oid: 5,
            score: 0.9,
        };
        let b = Pair {
            fid: 2,
            oid: 1,
            score: 0.9,
        };
        let c = Pair {
            fid: 1,
            oid: 6,
            score: 0.9,
        };
        let d = Pair {
            fid: 0,
            oid: 0,
            score: 0.8,
        };
        assert!(a.beats(&b), "same score: smaller fid wins");
        assert!(a.beats(&c), "same score+fid: smaller oid wins");
        assert!(a.beats(&d), "higher score wins regardless of ids");
        assert!(!d.beats(&a));
    }

    #[test]
    fn matching_total_score_and_sorting() {
        let m = Matching::new(
            vec![
                Pair {
                    fid: 2,
                    oid: 2,
                    score: 0.5,
                },
                Pair {
                    fid: 1,
                    oid: 1,
                    score: 0.7,
                },
            ],
            RunMetrics::default(),
        );
        assert!((m.total_score() - 1.2).abs() < 1e-12);
        let sorted = m.sorted_pairs();
        assert_eq!(sorted[0].fid, 1);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn index_config_sizes_buffer_as_fraction() {
        let mut ps = PointSet::new(2);
        let mut state = 1u64;
        for _ in 0..20_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = ((state >> 33) as f64) / (1u64 << 31) as f64;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let b = ((state >> 33) as f64) / (1u64 << 31) as f64;
            ps.push(&[a, b]);
        }
        let cfg = IndexConfig::default();
        let tree = cfg.build_tree(&ps);
        let expect = ((tree.page_count() as f64 * 0.02).round() as usize).max(8);
        assert_eq!(tree.buffer_capacity(), expect);
        assert_eq!(
            tree.io_stats(),
            IoStats::default(),
            "build I/O must be reset"
        );
    }

    #[test]
    fn buffer_sizing_rounds_the_fractional_page() {
        // Pin the rounding boundary: a fractional product of exactly
        // k + 0.5 pages must round up to k + 1, not truncate to k.
        let mut ps = PointSet::new(2);
        let mut state = 7u64;
        for _ in 0..5_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = ((state >> 33) as f64) / (1u64 << 31) as f64;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let b = ((state >> 33) as f64) / (1u64 << 31) as f64;
            ps.push(&[a, b]);
        }
        let probe = IndexConfig {
            page_size: 512,
            buffer_fraction: 0.02,
            min_buffer_pages: 1,
        };
        let pages = probe.build_tree(&ps).page_count();
        assert!(pages > 20, "need a multi-page tree for the boundary case");
        let cfg = IndexConfig {
            page_size: 512,
            buffer_fraction: 8.5 / pages as f64,
            min_buffer_pages: 1,
        };
        let tree = cfg.build_tree(&ps);
        assert_eq!(
            tree.buffer_capacity(),
            9,
            "8.5 pages must round up to 9, not truncate to 8"
        );
    }

    #[test]
    fn build_tree_advances_the_build_counter() {
        let mut ps = PointSet::new(2);
        ps.push(&[0.5, 0.5]);
        ps.push(&[0.2, 0.8]);
        let before = index_build_count();
        let _ = IndexConfig::default().build_tree(&ps);
        assert!(index_build_count() > before);
    }
}
