//! Cross-request result caching: a canonical request key and a bounded,
//! inventory-versioned LRU over finished [`Matching`]s.
//!
//! The paper's premise is that *many* users' preference queries arrive
//! against one shared inventory — and real multi-user traffic is
//! repeat-heavy: identical function sets recur constantly (the same
//! search form resubmitted, the same default weights, polling clients).
//! Evaluation is deterministic and the engine's index is immutable, so
//! an identical request against the same inventory **must** produce the
//! bit-identical matching — which makes the pair `(request key,
//! inventory version)` a sound cache key with no staleness hazard
//! beyond inventory replacement.
//!
//! Two layers use this module:
//!
//! * [`ResultCache`] — the bounded LRU itself (entry- and byte-capped),
//!   usable standalone. Every entry is stamped with the
//!   [`Engine::inventory_version`](crate::Engine::inventory_version) it
//!   was computed against; a lookup under a different version is a miss
//!   (and drops the stale entry), so a cache outliving an engine rebuild
//!   can never serve results from the old inventory. [`ResultCache::invalidate`]
//!   clears everything at once.
//! * the [`service`](crate::service) layer — consults a `ResultCache`
//!   before enqueueing and adds **in-flight dedupe** on top: a second
//!   identical submission attaches to the first job instead of paying a
//!   queue slot and a duplicate evaluation.
//!
//! The key ([`RequestKey`]) is *canonical*: it covers the function-set
//! rows (weight bits, in function-id order, with tombstone flags), the
//! [`Algorithm`] and every evaluation knob of the
//! request, the exclusion set (**order-insensitively** — it is sorted
//! and deduplicated once at construction, so `HashSet` iteration order
//! never leaks into the key), and the capacity vector.
//! Equality compares the full key material, not just the 64-bit hash,
//! so a hash collision can never surface a wrong cached matching — the
//! bit-identical guarantee survives adversarial inputs.
//!
//! ## Near-miss lookup
//!
//! Beyond exact identity, the cache supports **near-miss** lookup
//! ([`ResultCache::near_miss`]): each key additionally carries FNV
//! digests of its three independent components (function rows,
//! exclusion set, evaluation knobs + capacities), and the cache keeps
//! secondary indexes over them. On an exact miss, a request can ask for
//! the cached entry at the smallest *request delta* — number of flipped
//! exclusions, or number of changed function rows, with everything else
//! identical — that still holds a usable [`EvalSeed`]. The caller then
//! evaluates *seeded* from that entry's captured skyline state instead
//! of cold (see [`crate::seed`]).

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::Arc;

use std::sync::{Mutex, PoisonError};

use mpq_ta::FunctionSet;

use crate::engine::{Algorithm, RequestOptions};
use crate::matching::{Matching, Pair};
use crate::sb::{BestPairMode, MaintenanceMode};
use crate::seed::EvalSeed;

/// A canonical, collision-proof identity of one evaluation request:
/// everything that can change the resulting [`Matching`], and nothing
/// that cannot.
///
/// Build one with [`MatchRequest::cache_key`](crate::MatchRequest::cache_key).
/// Two requests have equal keys **iff** evaluating them against the same
/// inventory is guaranteed to produce bit-identical matchings: the
/// function rows (bit-exact weights, in function-id order, including
/// tombstones), the algorithm and all its knobs, the exclusion set
/// (compared as a set — insertion order is irrelevant) and the capacity
/// vector all agree. Equality compares the full material, so the
/// precomputed hash only accelerates lookups — it can never cause a
/// false hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestKey {
    hash: u64,
    /// FNV digest of the function-rows section (dim, count, rows).
    fns_digest: u64,
    /// FNV digest of the exclusion-set section (count + sorted unique ids).
    excl_digest: u64,
    /// FNV digest of the evaluation-knob and capacity sections.
    knobs_digest: u64,
    material: Box<[u64]>,
}

impl std::hash::Hash for RequestKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

impl RequestKey {
    /// The precomputed 64-bit FNV-1a digest of the key material
    /// (diagnostic; equality does not trust it).
    pub fn hash64(&self) -> u64 {
        self.hash
    }

    /// Approximate heap footprint of the key, for cache byte accounting.
    pub(crate) fn approx_bytes(&self) -> usize {
        std::mem::size_of::<RequestKey>() + self.material.len() * std::mem::size_of::<u64>()
    }
}

/// Build the canonical key of `(functions, options)` — see
/// [`RequestKey`] for what it covers. The inventory version is *not*
/// part of the key; it stamps cache entries instead
/// ([`ResultCache::insert`]), so one cache can safely span engine
/// rebuilds. Under sharding the same holds for the whole per-shard
/// version *vector* ([`ResultCache::insert_with_logs`]): keeping
/// versions out of the key material means a sharded and an unsharded
/// service compute the identical key for the identical request, and
/// version skew shows up as entry-stamp mismatches (catch-up-able) —
/// never as silently divergent key spaces.
pub(crate) fn request_key(functions: &FunctionSet, options: &RequestOptions) -> RequestKey {
    let mut m: Vec<u64> = Vec::with_capacity(8 + functions.len() * (functions.dim() + 1));

    // Function rows, in function-id order: ids are semantic (a matching
    // names them), so row order is part of the identity — but exclusion
    // order below is not.
    m.push(functions.dim() as u64);
    m.push(functions.len() as u64);
    for fid in 0..functions.len() as u32 {
        m.push(u64::from(functions.is_alive(fid)));
        m.extend(functions.weights(fid).iter().map(|w| w.to_bits()));
    }
    let rows_end = m.len();

    // Every evaluation knob of RequestOptions.
    m.push(match options.algorithm {
        Algorithm::Sb => 0,
        Algorithm::BruteForce => 1,
        Algorithm::Chain => 2,
    });
    m.push(match options.best_pair {
        BestPairMode::Ta => 0,
        BestPairMode::TaNaiveThreshold => 1,
        BestPairMode::Scan => 2,
    });
    m.push(match options.maintenance {
        MaintenanceMode::Incremental => 0,
        MaintenanceMode::Rescan => 1,
    });
    m.push(u64::from(options.multi_pair));
    m.push(match options.bf_strategy {
        crate::brute_force::BfStrategy::Incremental => 0,
        crate::brute_force::BfStrategy::Restart => 1,
    });

    let knobs_end = m.len();

    // Exclusions are a set: canonicalize (sort + dedupe) once here, so
    // HashSet iteration order cannot make two identical requests key
    // differently and every later consumer (`KeyView::excludes`'
    // binary search, near-miss delta counting) can rely on a sorted
    // unique list.
    let mut excluded: Vec<u64> = options.exclude.iter().copied().collect();
    excluded.sort_unstable();
    excluded.dedup();
    m.push(excluded.len() as u64);
    m.extend(excluded);
    let excl_end = m.len();

    match &options.capacities {
        None => m.push(0),
        Some(caps) => {
            m.push(1);
            m.push(caps.len() as u64);
            m.extend(caps.iter().map(|&c| u64::from(c)));
        }
    }

    // FNV-1a, both over the whole material and per component section
    // (the near-miss index groups keys by the sections they share):
    // deterministic across processes (unlike SipHash's random keys), so
    // keys are stable for logging and cross-run comparison.
    let hash = fnv64(FNV_OFFSET, &m);
    let fns_digest = fnv64(FNV_OFFSET, &m[..rows_end]);
    let excl_digest = fnv64(FNV_OFFSET, &m[knobs_end..excl_end]);
    // Capacities fold into the knobs digest: they parameterize the
    // evaluation rather than either delta axis.
    let knobs_digest = fnv64(fnv64(FNV_OFFSET, &m[rows_end..knobs_end]), &m[excl_end..]);

    RequestKey {
        hash,
        fns_digest,
        excl_digest,
        knobs_digest,
        material: m.into_boxed_slice(),
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a over the little-endian bytes of `words`, chained from `hash`
/// (pass [`FNV_OFFSET`] to start a fresh digest).
fn fnv64(mut hash: u64, words: &[u64]) -> u64 {
    for word in words {
        for byte in word.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// One committed inventory mutation, as the cache's scoped invalidation
/// sees it.
#[derive(Debug, Clone)]
pub enum MutationEvent {
    /// Object `oid` at `point` entered the inventory.
    Insert {
        /// The new object's id.
        oid: u64,
        /// Its attribute vector.
        point: Arc<[f64]>,
    },
    /// Object `oid` left the inventory.
    Remove {
        /// The removed object's id.
        oid: u64,
    },
    /// Object `oid` now has attribute vector `point`.
    Update {
        /// The updated object's id.
        oid: u64,
        /// Its attribute vector *after* the update.
        point: Arc<[f64]>,
    },
}

impl MutationEvent {
    /// The object this event mutates.
    pub fn oid(&self) -> u64 {
        match self {
            MutationEvent::Insert { oid, .. }
            | MutationEvent::Remove { oid }
            | MutationEvent::Update { oid, .. } => *oid,
        }
    }
}

/// A bounded ring of recent `(version, event)` mutations, shared between
/// a mutable [`Engine`](crate::Engine) and the caches serving it.
///
/// Each committed mutation bumps the engine's inventory version and
/// records the event here. [`ResultCache::get_with_log`] uses the window
/// to *catch entries up* across versions instead of treating every
/// version change as a full invalidation: an entry whose result provably
/// does not depend on the mutated objects is restamped and served. The
/// ring is bounded; entries older than the window fall back to the
/// conservative drop.
#[derive(Debug)]
pub struct MutationLog {
    inner: Mutex<MutationLogInner>,
}

#[derive(Debug)]
struct MutationLogInner {
    /// `(version_after_commit, event)`, oldest first.
    events: VecDeque<(u64, MutationEvent)>,
    cap: usize,
    /// Highest version dropped from the front of the ring (0 = nothing
    /// dropped): windows starting before it are incomplete.
    truncated_at: u64,
}

impl Default for MutationLog {
    fn default() -> MutationLog {
        MutationLog::new(64)
    }
}

impl MutationLog {
    /// A log retaining the most recent `cap` events (clamped to ≥ 1).
    pub fn new(cap: usize) -> MutationLog {
        MutationLog {
            inner: Mutex::new(MutationLogInner {
                events: VecDeque::new(),
                cap: cap.max(1),
                truncated_at: 0,
            }),
        }
    }

    /// Record a committed mutation: `version` is the inventory version
    /// the commit published.
    pub fn record(&self, version: u64, event: MutationEvent) {
        // Poison recovery: the log's invariants hold at every await-free
        // point inside the critical sections, so a thread that panicked
        // while holding the lock left the ring consistent. Inheriting
        // the poison would instead wedge every future mutation commit
        // behind one dead evaluation.
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        while inner.events.len() >= inner.cap {
            if let Some((v, _)) = inner.events.pop_front() {
                inner.truncated_at = v;
            }
        }
        inner.events.push_back((version, event));
    }

    /// All events with version in `(since, upto]`, oldest first — or
    /// `None` if the ring no longer covers the whole window (the caller
    /// must then fall back to full invalidation).
    pub fn events_between(&self, since: u64, upto: u64) -> Option<Vec<(u64, MutationEvent)>> {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if since < inner.truncated_at {
            return None;
        }
        Some(
            inner
                .events
                .iter()
                .filter(|(v, _)| *v > since && *v <= upto)
                .cloned()
                .collect(),
        )
    }
}

/// A read-only view over a [`RequestKey`]'s material: the decoded
/// function weights and exclusion set, which scoped invalidation needs
/// to reason about whether a mutation can affect the cached result.
struct KeyView<'k> {
    dim: usize,
    n_fns: usize,
    material: &'k [u64],
    /// The function-rows section (dim, count, rows) — near-miss
    /// candidates along the exclusion axis must match it exactly.
    rows: &'k [u64],
    /// The 5 evaluation-knob words.
    knobs: &'k [u64],
    excl: &'k [u64],
    /// The capacity section (flag onwards).
    caps: &'k [u64],
    has_caps: bool,
}

impl<'k> KeyView<'k> {
    fn parse(material: &'k [u64]) -> Option<KeyView<'k>> {
        let dim = *material.first()? as usize;
        let n_fns = *material.get(1)? as usize;
        let rows_end = 2 + n_fns.checked_mul(dim + 1)?;
        // rows, then 5 knob words, then the exclusion count
        let n_excl_at = rows_end + 5;
        let n_excl = *material.get(n_excl_at)? as usize;
        let rows = material.get(..rows_end)?;
        let knobs = material.get(rows_end..n_excl_at)?;
        let excl = material.get(n_excl_at + 1..n_excl_at + 1 + n_excl)?;
        let caps = material.get(n_excl_at + 1 + n_excl..)?;
        let has_caps = *caps.first()? != 0;
        Some(KeyView {
            dim,
            n_fns,
            material,
            rows,
            knobs,
            excl,
            caps,
            has_caps,
        })
    }

    fn is_alive(&self, fid: usize) -> bool {
        self.material[2 + fid * (self.dim + 1)] != 0
    }

    /// Score of function `fid` on `point` (weights are stored bit-exact).
    fn score(&self, fid: usize, point: &[f64]) -> f64 {
        let base = 2 + fid * (self.dim + 1) + 1;
        self.material[base..base + self.dim]
            .iter()
            .zip(point)
            .map(|(&bits, &x)| f64::from_bits(bits) * x)
            .sum()
    }

    /// Sorted-set membership test over the key's exclusions.
    fn excludes(&self, oid: u64) -> bool {
        self.excl.binary_search(&oid).is_ok()
    }
}

/// Symmetric-difference size of two sorted unique id lists.
fn symdiff_len(a: &[u64], b: &[u64]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                i += 1;
                n += 1;
            }
            std::cmp::Ordering::Greater => {
                j += 1;
                n += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    n + (a.len() - i) + (b.len() - j)
}

/// Request delta along the exclusion axis: the number of objects whose
/// exclusion status flips between the two keys — provided *everything
/// else* (function rows, knobs, capacities) is bit-identical, else
/// `None`. The exact comparison makes digest collisions harmless.
fn exclusion_delta(a: &KeyView<'_>, b: &KeyView<'_>) -> Option<usize> {
    (a.rows == b.rows && a.knobs == b.knobs && a.caps == b.caps)
        .then(|| symdiff_len(a.excl, b.excl))
}

/// Request delta along the function axis: the number of function rows
/// (tombstone flag + weight bits) that differ — provided the shapes
/// match and everything else is bit-identical, else `None`.
fn function_delta(a: &KeyView<'_>, b: &KeyView<'_>) -> Option<usize> {
    if a.dim != b.dim
        || a.n_fns != b.n_fns
        || a.knobs != b.knobs
        || a.caps != b.caps
        || a.excl != b.excl
    {
        return None;
    }
    let w = a.dim + 1;
    Some(
        a.rows[2..]
            .chunks(w)
            .zip(b.rows[2..].chunks(w))
            .filter(|(x, y)| x != y)
            .count(),
    )
}

/// Does the cached `matching` for `key` provably survive `event`
/// unchanged?
///
/// The rules are exact consequences of the canonical greedy (pick the
/// globally best remaining pair, `(score desc, fid asc, oid asc)`):
///
/// * **Remove**: deleting an object the matching never assigned cannot
///   change any greedy pick (a non-maximal candidate was removed).
/// * **Insert**: if every alive function is matched and each function's
///   assigned pair [`Pair::beats`] its candidate pair with the new
///   object, the new object is never the global maximum at any step.
/// * **Update** is remove-then-insert: the object must be unassigned
///   *and* beaten at its new position.
/// * An object the request excludes is invisible: any mutation of it
///   survives trivially.
/// * Capacitated requests never survive (their greedy consumes capacity
///   units; the pairwise argument above does not apply).
fn survives_event(key: &RequestKey, matching: &Matching, event: &MutationEvent) -> bool {
    let Some(view) = KeyView::parse(&key.material) else {
        return false;
    };
    if view.has_caps {
        return false;
    }
    let assigned = |oid: u64| matching.pairs().iter().any(|p| p.oid == oid);
    match event {
        MutationEvent::Remove { oid } => view.excludes(*oid) || !assigned(*oid),
        MutationEvent::Insert { oid, point } => {
            view.excludes(*oid) || beaten_everywhere(&view, matching, *oid, point)
        }
        MutationEvent::Update { oid, point } => {
            view.excludes(*oid)
                || (!assigned(*oid) && beaten_everywhere(&view, matching, *oid, point))
        }
    }
}

/// True iff every alive function is matched and its assigned pair beats
/// the candidate pair `(fid, oid, score(fid, point))` — the condition
/// under which the new/moved object can never win a greedy round.
fn beaten_everywhere(view: &KeyView<'_>, matching: &Matching, oid: u64, point: &[f64]) -> bool {
    if point.len() != view.dim {
        return false;
    }
    let by_fid: HashMap<u32, &Pair> = matching.pairs().iter().map(|p| (p.fid, p)).collect();
    for fid in 0..view.n_fns {
        if !view.is_alive(fid) {
            continue;
        }
        let Some(assigned) = by_fid.get(&(fid as u32)) else {
            // an unmatched function would grab the new object
            return false;
        };
        let candidate = Pair {
            fid: fid as u32,
            oid,
            score: view.score(fid, point),
        };
        if !assigned.beats(&candidate) {
            return false;
        }
    }
    true
}

/// Rolling counters of one cache (embedded in
/// [`ServiceMetrics::cache`](crate::service::ServiceMetrics)).
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheMetrics {
    /// `false` when the service runs with caching disabled
    /// (`cache_capacity == 0`); all counters stay zero.
    pub enabled: bool,
    /// Lookups served straight from the cache.
    pub hits: u64,
    /// Lookups that found nothing (or a stale inventory version) and had
    /// to evaluate. In-flight dedupe attaches are misses at the cache
    /// level (counted in `attaches` too).
    pub misses: u64,
    /// Submissions that attached to an identical in-flight job instead
    /// of enqueueing a duplicate evaluation (service layer only).
    pub attaches: u64,
    /// Results stored.
    pub insertions: u64,
    /// Entries dropped to respect the entry/byte bounds (stale-version
    /// entries dropped on lookup count here too).
    pub evictions: u64,
    /// Entries restamped across inventory versions by scoped
    /// invalidation ([`ResultCache::get_with_log`]): the mutation log
    /// proved the cached result unaffected, so the entry was caught up
    /// instead of dropped.
    pub revalidations: u64,
    /// Near-miss lookups that found a seed-bearing entry within the
    /// delta bound ([`ResultCache::near_miss`]) — the request was then
    /// evaluated *seeded* instead of cold.
    pub seeded_hits: u64,
    /// Cumulative request delta (flipped exclusions / changed function
    /// rows) across `seeded_hits`; `seed_delta / seeded_hits` is the
    /// mean distance a seed was carried.
    pub seed_delta: u64,
    /// Current number of cached entries.
    pub entries: usize,
    /// Current approximate heap footprint of the cached entries.
    pub bytes: usize,
}

impl CacheMetrics {
    /// `hits / (hits + misses)`, guarded (the same stance as
    /// [`safe_rate`](crate::service::ServiceMetrics::requests_per_sec)):
    /// no lookups yet yields `0.0`, never NaN.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }

    /// Structured rendering shared by the `/metrics` endpoint of the
    /// network front-end and the benchmark artifacts. The field names
    /// are a stable contract pinned by a unit test — the JSON and the
    /// [`Display`](std::fmt::Display) impl of
    /// [`ServiceMetrics`](crate::service::ServiceMetrics) must never
    /// drift apart.
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::obj([
            ("enabled", Json::Bool(self.enabled)),
            ("hits", Json::Num(self.hits as f64)),
            ("misses", Json::Num(self.misses as f64)),
            ("attaches", Json::Num(self.attaches as f64)),
            ("insertions", Json::Num(self.insertions as f64)),
            ("evictions", Json::Num(self.evictions as f64)),
            ("revalidations", Json::Num(self.revalidations as f64)),
            ("seeded_hits", Json::Num(self.seeded_hits as f64)),
            ("seed_delta", Json::Num(self.seed_delta as f64)),
            ("entries", Json::Num(self.entries as f64)),
            ("bytes", Json::Num(self.bytes as f64)),
            ("hit_rate", Json::Num(self.hit_rate())),
        ])
    }
}

/// One cached result plus its bookkeeping.
struct CacheEntry {
    matching: Matching,
    /// Inventory version *vector* the result was computed against — one
    /// component per shard, in shard order (an unsharded engine is the
    /// 1-component case). A lookup under any other vector treats the
    /// entry as absent, unless per-component mutation logs prove the
    /// intervening mutations harmless (scoped invalidation).
    stamp: Box<[u64]>,
    /// Resumable evaluation state captured by the run that produced
    /// `matching`, for near-miss seeding. Pinned to `stamp`: a restamp
    /// (scoped revalidation) keeps the matching but drops the seed,
    /// whose pruned entries reference pages of the original epoch.
    seed: Option<Arc<EvalSeed>>,
    /// Approximate heap footprint (key + matching + seed).
    bytes: usize,
    /// Recency tick (key into the LRU index).
    tick: u64,
}

/// A bounded LRU of finished [`Matching`]s keyed by [`RequestKey`] and
/// stamped with the inventory version they were computed against.
///
/// Capacity is double-bounded: at most `max_entries` results and at most
/// `max_bytes` of approximate heap footprint — whichever bound is hit
/// first evicts the least-recently-used entry. Both bounds are clamped
/// to sane minimums so a cache that exists can always hold one entry
/// (construct via [`ServiceConfig`](crate::service::ServiceConfig) with
/// `cache_capacity == 0` to disable caching entirely instead).
///
/// ```
/// use mpq_core::{Engine, ResultCache};
/// use mpq_rtree::PointSet;
/// use mpq_ta::FunctionSet;
///
/// let mut objects = PointSet::new(2);
/// for p in [[0.9_f64, 0.2], [0.2, 0.9], [0.7, 0.7]] { objects.push(&p); }
/// let engine = Engine::builder().objects(&objects).build().unwrap();
/// let functions = FunctionSet::from_rows(2, &[vec![0.5, 0.5]]);
///
/// let mut cache = ResultCache::new(64, 1 << 20);
/// let request = engine.request(&functions);
/// let key = request.cache_key();
/// let fresh = request.evaluate().unwrap();
/// cache.insert(&key, engine.inventory_version(), &fresh);
///
/// // Same inventory: hit, bit-identical.
/// let hit = cache.get(&key, engine.inventory_version()).unwrap();
/// assert_eq!(hit.sorted_pairs(), fresh.sorted_pairs());
///
/// // A rebuilt engine has a new inventory version: the stale entry is
/// // a miss (and is dropped), never served.
/// let rebuilt = Engine::builder().objects(&objects).build().unwrap();
/// assert!(cache.get(&key, rebuilt.inventory_version()).is_none());
/// ```
pub struct ResultCache {
    max_entries: usize,
    max_bytes: usize,
    entries: HashMap<Arc<RequestKey>, CacheEntry>,
    /// Recency index: tick → key, oldest first. Ticks are unique (one
    /// per touch), so this is a faithful LRU order.
    lru: BTreeMap<u64, Arc<RequestKey>>,
    /// Near-miss index, exclusion axis: `(fns_digest, knobs_digest)` →
    /// resident keys. Keys in one bucket can differ only in their
    /// exclusion sets (up to digest collisions, which the exact delta
    /// comparison filters out).
    by_fns: HashMap<(u64, u64), HashSet<Arc<RequestKey>>>,
    /// Near-miss index, function axis: `(excl_digest, knobs_digest)` →
    /// resident keys differing only in their function rows.
    by_excl: HashMap<(u64, u64), HashSet<Arc<RequestKey>>>,
    next_tick: u64,
    bytes: usize,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
    revalidations: u64,
    seeded_hits: u64,
    seed_delta: u64,
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache")
            .field("entries", &self.entries.len())
            .field("bytes", &self.bytes)
            .field("max_entries", &self.max_entries)
            .field("max_bytes", &self.max_bytes)
            .finish()
    }
}

impl ResultCache {
    /// An empty cache bounded to `max_entries` results and `max_bytes`
    /// of approximate footprint (each clamped to at least 1 entry /
    /// 4 KiB).
    pub fn new(max_entries: usize, max_bytes: usize) -> ResultCache {
        ResultCache {
            max_entries: max_entries.max(1),
            max_bytes: max_bytes.max(4096),
            entries: HashMap::new(),
            lru: BTreeMap::new(),
            by_fns: HashMap::new(),
            by_excl: HashMap::new(),
            next_tick: 0,
            bytes: 0,
            hits: 0,
            misses: 0,
            insertions: 0,
            evictions: 0,
            revalidations: 0,
            seeded_hits: 0,
            seed_delta: 0,
        }
    }

    /// Register `key` in the near-miss secondary indexes.
    fn index_key(&mut self, key: &Arc<RequestKey>) {
        self.by_fns
            .entry((key.fns_digest, key.knobs_digest))
            .or_default()
            .insert(Arc::clone(key));
        self.by_excl
            .entry((key.excl_digest, key.knobs_digest))
            .or_default()
            .insert(Arc::clone(key));
    }

    /// Drop `key` from the near-miss secondary indexes.
    fn unindex_key(&mut self, key: &RequestKey) {
        if let Some(set) = self.by_fns.get_mut(&(key.fns_digest, key.knobs_digest)) {
            set.remove(key);
            if set.is_empty() {
                self.by_fns.remove(&(key.fns_digest, key.knobs_digest));
            }
        }
        if let Some(set) = self.by_excl.get_mut(&(key.excl_digest, key.knobs_digest)) {
            set.remove(key);
            if set.is_empty() {
                self.by_excl.remove(&(key.excl_digest, key.knobs_digest));
            }
        }
    }

    /// Remove `key`'s entry and every piece of bookkeeping that tracks
    /// it (LRU slot, byte accounting, near-miss indexes). The single
    /// removal path — the eviction *counter* stays with the callers,
    /// which know why the entry left.
    fn detach(&mut self, key: &RequestKey) -> Option<CacheEntry> {
        let entry = self.entries.remove(key)?;
        self.lru.remove(&entry.tick);
        self.bytes -= entry.bytes;
        self.unindex_key(key);
        Some(entry)
    }

    /// Look up `key` under inventory `version`. A hit returns a clone of
    /// the cached matching (pairs bit-identical to the original
    /// evaluation; the [`RunMetrics`](crate::RunMetrics) are the
    /// *original run's* — a hit does no I/O of its own) and refreshes
    /// recency. An entry stamped with a different version is dropped and
    /// reported as a miss: the inventory it was computed against no
    /// longer exists.
    pub fn get(&mut self, key: &RequestKey, version: u64) -> Option<Matching> {
        self.get_vec(key, &[version])
    }

    /// [`ResultCache::get`] for vector-stamped entries: a hit requires
    /// the entry's whole per-shard version vector to equal `versions`
    /// (sharded engines stamp with
    /// [`ShardedEngine::version_vector`](crate::ShardedEngine::version_vector);
    /// the scalar API is the 1-component special case).
    pub fn get_vec(&mut self, key: &RequestKey, versions: &[u64]) -> Option<Matching> {
        let Some(entry) = self.entries.get(key) else {
            self.misses += 1;
            return None;
        };
        if entry.stamp[..] != *versions {
            self.misses += 1;
            self.evictions += 1;
            self.detach(key);
            return None;
        }
        self.hits += 1;
        // Refresh recency: move the entry to the newest tick.
        let tick = self.next_tick;
        self.next_tick += 1;
        let entry = self.entries.get_mut(key).expect("entry just found");
        let old = std::mem::replace(&mut entry.tick, tick);
        let matching = entry.matching.clone();
        let key = self.lru.remove(&old).expect("lru tracks every entry");
        self.lru.insert(tick, key);
        Some(matching)
    }

    /// Store `matching` for `key` under inventory `version`, evicting
    /// least-recently-used entries until both bounds hold. A result too
    /// large to ever fit the byte bound is not stored (the cache is an
    /// accelerator, not a spill).
    pub fn insert(&mut self, key: &RequestKey, version: u64, matching: &Matching) {
        self.insert_vec(key, &[version], matching);
    }

    /// [`ResultCache::insert`] for vector-stamped entries (one version
    /// component per shard, in shard order).
    pub fn insert_vec(&mut self, key: &RequestKey, versions: &[u64], matching: &Matching) {
        self.insert_vec_seeded(key, versions, matching, None);
    }

    /// [`ResultCache::insert_vec`], additionally attaching the
    /// [`EvalSeed`] the evaluation captured (if any) so later near-miss
    /// lookups can resume from this entry. The seed must have been
    /// captured at exactly `versions`. If the seed would blow the byte
    /// bound the *matching* still caches — the seed is dropped first
    /// (it is an accelerator of an accelerator).
    pub fn insert_vec_seeded(
        &mut self,
        key: &RequestKey,
        versions: &[u64],
        matching: &Matching,
        mut seed: Option<Arc<EvalSeed>>,
    ) {
        debug_assert!(
            seed.as_ref().is_none_or(|s| s.usable_at(versions)),
            "seed captured at a different version vector than the entry stamp"
        );
        let base = key.approx_bytes() + matching.approx_bytes();
        let mut bytes = base + seed.as_ref().map_or(0, |s| s.approx_bytes());
        if bytes > self.max_bytes {
            seed = None;
            bytes = base;
        }
        if bytes > self.max_bytes {
            return;
        }
        // Replace any stale entry for this key first so the bounds see
        // consistent accounting.
        self.detach(key);
        while self.entries.len() + 1 > self.max_entries || self.bytes + bytes > self.max_bytes {
            let Some((_, victim)) = self.lru.iter().next() else {
                break;
            };
            let victim = Arc::clone(victim);
            self.detach(&victim).expect("lru tracks entries");
            self.evictions += 1;
        }
        let tick = self.next_tick;
        self.next_tick += 1;
        let key = Arc::new(key.clone());
        self.lru.insert(tick, Arc::clone(&key));
        self.index_key(&key);
        self.entries.insert(
            key,
            CacheEntry {
                matching: matching.clone(),
                stamp: versions.into(),
                seed,
                bytes,
                tick,
            },
        );
        self.bytes += bytes;
        self.insertions += 1;
    }

    /// Drop every entry (e.g. the engine behind the cache was rebuilt
    /// and the stale versions should stop occupying space). Counters
    /// survive; dropped entries count as evictions.
    pub fn invalidate(&mut self) {
        self.evictions += self.entries.len() as u64;
        self.entries.clear();
        self.lru.clear();
        self.by_fns.clear();
        self.by_excl.clear();
        self.bytes = 0;
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate heap footprint of the cached entries.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Snapshot the rolling counters. `attaches` is always 0 here — the
    /// service layer owns that counter and merges it into its
    /// [`ServiceMetrics`](crate::service::ServiceMetrics) snapshot.
    pub fn metrics(&self) -> CacheMetrics {
        CacheMetrics {
            enabled: true,
            hits: self.hits,
            misses: self.misses,
            attaches: 0,
            insertions: self.insertions,
            evictions: self.evictions,
            revalidations: self.revalidations,
            seeded_hits: self.seeded_hits,
            seed_delta: self.seed_delta,
            entries: self.entries.len(),
            bytes: self.bytes,
        }
    }

    /// Like [`ResultCache::get`], but with **scoped invalidation**: an
    /// entry stamped with an older inventory version is caught up
    /// through the mutation `log` instead of being dropped outright.
    /// Each intervening mutation is checked against the cached matching
    /// (`survives_event`'s exact greedy argument); if all of them
    /// provably leave the result unchanged, the entry is restamped to
    /// `version` and served as a hit. Only when a mutation *can* affect
    /// the result — or the log window no longer covers the gap — does
    /// the entry fall back to the drop-and-miss of plain `get`.
    pub fn get_with_log(
        &mut self,
        key: &RequestKey,
        version: u64,
        log: &MutationLog,
    ) -> Option<Matching> {
        self.get_with_logs(key, &[version], &[log])
    }

    /// [`ResultCache::get_with_log`] for vector-stamped entries: one
    /// version component and one [`MutationLog`] per shard, in shard
    /// order. Scoped invalidation is **component-wise**: only the shards
    /// whose component lags are asked to prove their intervening
    /// mutations harmless — a mutation on shard A never touches the
    /// proof (or the validity) of a cached result whose assignments all
    /// live on shard B.
    pub fn get_with_logs(
        &mut self,
        key: &RequestKey,
        versions: &[u64],
        logs: &[&MutationLog],
    ) -> Option<Matching> {
        if let Some(entry) = self.entries.get(key) {
            let comparable = entry.stamp.len() == versions.len();
            if comparable && entry.stamp.iter().zip(versions).any(|(e, v)| e > v) {
                // Some component is *newer* than the looker's version
                // read (a mutation and a publish slipped in between):
                // not servable backwards, but evicting the current
                // result would punish the next — current — looker.
                // Plain miss.
                self.misses += 1;
                return None;
            }
            if entry.stamp[..] != *versions && !self.try_catch_up(key, versions, logs) {
                self.misses += 1;
                self.evictions += 1;
                self.detach(key).expect("entry just found");
                return None;
            }
        }
        self.get_vec(key, versions)
    }

    /// Catch the entry for `key` up to `versions`: `true` iff, for every
    /// lagging component, that shard's log covers the gap and every
    /// event in it provably leaves the cached matching unchanged (the
    /// entry is restamped to the full vector). A shard-count mismatch
    /// (the topology changed under the cache) is never caught up.
    fn try_catch_up(&mut self, key: &RequestKey, versions: &[u64], logs: &[&MutationLog]) -> bool {
        debug_assert_eq!(versions.len(), logs.len());
        let Some(entry) = self.entries.get(key) else {
            return false;
        };
        if entry.stamp.len() != versions.len()
            || entry.stamp.iter().zip(versions).any(|(e, v)| e > v)
        {
            return false;
        }
        let mut survives = true;
        'components: for ((&since, &upto), log) in entry.stamp.iter().zip(versions).zip(logs) {
            if since == upto {
                continue;
            }
            let Some(events) = log.events_between(since, upto) else {
                return false;
            };
            for (_, event) in &events {
                if !survives_event(key, &entry.matching, event) {
                    survives = false;
                    break 'components;
                }
            }
        }
        if survives {
            let entry = self.entries.get_mut(key).expect("entry just found");
            entry.stamp = versions.into();
            // The matching survives the mutations; the seed does not —
            // its pruned entries reference pages of the original epoch.
            if let Some(seed) = entry.seed.take() {
                let freed = seed.approx_bytes();
                entry.bytes -= freed;
                self.bytes -= freed;
            }
            self.revalidations += 1;
        }
        survives
    }

    /// Like [`ResultCache::insert`], but first eagerly sweeps entries
    /// stamped with any other version: each is caught up through `log`
    /// (restamped if it survives) or evicted on the spot. Plain `get`
    /// only drops a stale entry when its exact key is looked up again,
    /// so after a mutation the `entries`/`bytes` metrics would keep
    /// counting results that can never be served; sweeping at insert
    /// time keeps the accounting honest without a periodic task.
    pub fn insert_with_log(
        &mut self,
        key: &RequestKey,
        version: u64,
        matching: &Matching,
        log: &MutationLog,
    ) {
        self.insert_with_logs(key, &[version], matching, &[log]);
    }

    /// [`ResultCache::insert_with_log`] for vector-stamped entries (one
    /// version component and one [`MutationLog`] per shard, in shard
    /// order).
    pub fn insert_with_logs(
        &mut self,
        key: &RequestKey,
        versions: &[u64],
        matching: &Matching,
        logs: &[&MutationLog],
    ) {
        self.insert_with_logs_seeded(key, versions, matching, logs, None);
    }

    /// [`ResultCache::insert_with_logs`], additionally attaching the
    /// [`EvalSeed`] the evaluation captured (see
    /// [`ResultCache::insert_vec_seeded`] for the seed's byte-bound
    /// policy).
    pub fn insert_with_logs_seeded(
        &mut self,
        key: &RequestKey,
        versions: &[u64],
        matching: &Matching,
        logs: &[&MutationLog],
        seed: Option<Arc<EvalSeed>>,
    ) {
        // Only entries *strictly older* than the publish stamp are
        // sweepable — no component newer, at least one lagging: a worker
        // that captured its vector before a mutation must not evict
        // entries already published under a newer component.
        let stale: Vec<Arc<RequestKey>> = self
            .entries
            .iter()
            .filter(|(_, e)| {
                e.stamp.len() == versions.len()
                    && e.stamp.iter().zip(versions).all(|(a, b)| a <= b)
                    && e.stamp[..] != *versions
            })
            .map(|(k, _)| Arc::clone(k))
            .collect();
        for k in stale {
            if !self.try_catch_up(&k, versions, logs) && self.detach(&k).is_some() {
                self.evictions += 1;
            }
        }
        if self.entries.get(key).is_some_and(|e| {
            e.stamp.len() == versions.len() && e.stamp.iter().zip(versions).any(|(a, b)| a > b)
        }) {
            return; // a newer result for this key is already published
        }
        self.insert_vec_seeded(key, versions, matching, seed);
    }

    /// **Near-miss** lookup: on an exact miss, find the resident entry
    /// at the smallest *request delta* from `key` — differing from it
    /// only in its exclusion set (delta = flipped exclusions) or only
    /// in its function rows (delta = changed rows) — that still holds
    /// an [`EvalSeed`] usable at exactly `versions`. Returns the seed
    /// and its delta if one exists with `0 < delta <= bound`; ties
    /// break toward the most recently used donor. A successful lookup
    /// counts into `seeded_hits`/`seed_delta`; it does **not** count as
    /// a cache hit (the caller still evaluates — just warm).
    ///
    /// Capacitated requests never near-miss (the capacitated greedy
    /// consumes the matching differently; the seeded SB path declines
    /// them anyway).
    pub fn near_miss(
        &mut self,
        key: &RequestKey,
        versions: &[u64],
        bound: usize,
    ) -> Option<(Arc<EvalSeed>, usize)> {
        if bound == 0 {
            return None;
        }
        let view = KeyView::parse(&key.material)?;
        if view.has_caps {
            return None;
        }
        let axes = [
            (self.by_fns.get(&(key.fns_digest, key.knobs_digest)), true),
            (
                self.by_excl.get(&(key.excl_digest, key.knobs_digest)),
                false,
            ),
        ];
        let mut best: Option<(usize, u64, Arc<EvalSeed>)> = None;
        for (bucket, excl_axis) in axes {
            let Some(bucket) = bucket else { continue };
            for cand in bucket {
                if cand.as_ref() == key {
                    continue;
                }
                let Some(entry) = self.entries.get(cand) else {
                    continue;
                };
                let Some(seed) = &entry.seed else { continue };
                if !seed.usable_at(versions) {
                    continue;
                }
                let Some(cview) = KeyView::parse(&cand.material) else {
                    continue;
                };
                let delta = if excl_axis {
                    exclusion_delta(&view, &cview)
                } else {
                    function_delta(&view, &cview)
                };
                let Some(delta) = delta else { continue };
                if delta == 0 || delta > bound {
                    continue;
                }
                let better = match &best {
                    None => true,
                    Some((bd, bt, _)) => delta < *bd || (delta == *bd && entry.tick > *bt),
                };
                if better {
                    best = Some((delta, entry.tick, Arc::clone(seed)));
                }
            }
        }
        let (delta, _, seed) = best?;
        self.seeded_hits += 1;
        self.seed_delta += delta as u64;
        Some((seed, delta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::{Pair, RunMetrics};

    fn matching_of(n: usize) -> Matching {
        let pairs = (0..n)
            .map(|i| Pair {
                fid: i as u32,
                oid: i as u64,
                score: 1.0 - i as f64 * 0.01,
            })
            .collect();
        Matching::new(pairs, RunMetrics::default())
    }

    fn key_of(rows: &[Vec<f64>]) -> RequestKey {
        let functions = FunctionSet::from_rows(2, rows);
        request_key(&functions, &RequestOptions::default())
    }

    #[test]
    fn key_is_order_insensitive_over_exclusions_only() {
        let functions = FunctionSet::from_rows(2, &[vec![0.5, 0.5], vec![0.9, 0.1]]);
        let mut a = RequestOptions::default();
        a.exclude.extend([3u64, 7, 11]);
        let mut b = RequestOptions::default();
        b.exclude.extend([11u64, 3, 7]);
        assert_eq!(request_key(&functions, &a), request_key(&functions, &b));

        // ...but function row order is semantic (fids name the rows).
        let swapped = FunctionSet::from_rows(2, &[vec![0.9, 0.1], vec![0.5, 0.5]]);
        assert_ne!(
            request_key(&functions, &RequestOptions::default()),
            request_key(&swapped, &RequestOptions::default())
        );
    }

    #[test]
    fn key_covers_every_knob() {
        let functions = FunctionSet::from_rows(2, &[vec![0.5, 0.5]]);
        let base = request_key(&functions, &RequestOptions::default());
        let o = RequestOptions {
            algorithm: Algorithm::Chain,
            ..RequestOptions::default()
        };
        assert_ne!(base, request_key(&functions, &o));
        let o = RequestOptions {
            multi_pair: false,
            ..RequestOptions::default()
        };
        assert_ne!(base, request_key(&functions, &o));
        let o = RequestOptions {
            capacities: Some(vec![1, 2, 3]),
            ..RequestOptions::default()
        };
        assert_ne!(base, request_key(&functions, &o));
        let mut o = RequestOptions::default();
        o.exclude.insert(5);
        assert_ne!(base, request_key(&functions, &o));
        // tombstones are part of the identity
        let mut dead = FunctionSet::from_rows(2, &[vec![0.5, 0.5], vec![0.9, 0.1]]);
        dead.remove(1);
        let alive = FunctionSet::from_rows(2, &[vec![0.5, 0.5], vec![0.9, 0.1]]);
        assert_ne!(
            request_key(&dead, &RequestOptions::default()),
            request_key(&alive, &RequestOptions::default())
        );
    }

    #[test]
    fn lru_evicts_by_recency_and_respects_entry_bound() {
        let mut cache = ResultCache::new(2, 1 << 20);
        let (ka, kb, kc) = (
            key_of(&[vec![0.1, 0.9]]),
            key_of(&[vec![0.2, 0.8]]),
            key_of(&[vec![0.3, 0.7]]),
        );
        cache.insert(&ka, 1, &matching_of(1));
        cache.insert(&kb, 1, &matching_of(1));
        assert!(cache.get(&ka, 1).is_some()); // refresh a: b is now LRU
        cache.insert(&kc, 1, &matching_of(1)); // evicts b
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&ka, 1).is_some());
        assert!(cache.get(&kb, 1).is_none(), "b was least recently used");
        assert!(cache.get(&kc, 1).is_some());
        assert_eq!(cache.metrics().evictions, 1);
    }

    #[test]
    fn byte_bound_evicts_and_oversize_results_are_not_stored() {
        // Entries big enough that the byte bound (not the entry bound)
        // is what binds: ~24 KiB of pairs each, bound at ~2 entries.
        let bulky = matching_of(1000);
        let per_entry = key_of(&[vec![0.1, 0.9]]).approx_bytes() + bulky.approx_bytes();
        let mut cache = ResultCache::new(1024, per_entry * 2);
        let keys: Vec<RequestKey> = (0..4)
            .map(|i| key_of(&[vec![0.1 + i as f64 * 0.05, 0.5]]))
            .collect();
        for k in &keys {
            cache.insert(k, 1, &bulky);
        }
        assert!(
            cache.bytes() <= cache.max_bytes,
            "byte bound must hold after inserts"
        );
        assert!(cache.len() < 4, "byte bound must have evicted something");

        let huge = matching_of(100_000);
        let before = cache.len();
        cache.insert(&key_of(&[vec![0.9, 0.1]]), 1, &huge);
        assert_eq!(cache.len(), before, "oversize result must not be stored");
    }

    #[test]
    fn version_mismatch_is_a_miss_and_drops_the_stale_entry() {
        let mut cache = ResultCache::new(8, 1 << 20);
        let key = key_of(&[vec![0.4, 0.6]]);
        cache.insert(&key, 7, &matching_of(3));
        assert!(cache.get(&key, 7).is_some());
        assert!(cache.get(&key, 8).is_none(), "stale version must miss");
        assert!(
            cache.get(&key, 7).is_none(),
            "the stale entry is gone, not resurrected"
        );
        let m = cache.metrics();
        assert_eq!((m.hits, m.misses), (1, 2));
    }

    #[test]
    fn invalidate_clears_everything() {
        let mut cache = ResultCache::new(8, 1 << 20);
        for i in 0..3 {
            cache.insert(
                &key_of(&[vec![0.1 * (i + 1) as f64, 0.5]]),
                1,
                &matching_of(1),
            );
        }
        assert_eq!(cache.len(), 3);
        cache.invalidate();
        assert!(cache.is_empty());
        assert_eq!(cache.bytes(), 0);
        assert_eq!(cache.metrics().evictions, 3);
    }

    #[test]
    fn hit_rate_is_guarded() {
        let cache = ResultCache::new(8, 1 << 20);
        assert_eq!(cache.metrics().hit_rate(), 0.0);
        let mut cache = cache;
        let key = key_of(&[vec![0.5, 0.5]]);
        cache.insert(&key, 1, &matching_of(1));
        let _ = cache.get(&key, 1);
        let _ = cache.get(&key_of(&[vec![0.6, 0.4]]), 1);
        let rate = cache.metrics().hit_rate();
        assert!((rate - 0.5).abs() < 1e-12, "{rate}");
    }

    // ------------------------------------------------------------------
    // Scoped invalidation: MutationLog + survives_event
    // ------------------------------------------------------------------

    /// A two-function key whose canonical matching assigns object 0 to
    /// function 0 and object 1 to function 1 (scores 0.82 each).
    fn orthogonal_key(options: &RequestOptions) -> RequestKey {
        let functions = FunctionSet::from_rows(2, &[vec![0.9, 0.1], vec![0.1, 0.9]]);
        request_key(&functions, options)
    }

    fn orthogonal_matching() -> Matching {
        Matching::new(
            vec![
                Pair {
                    fid: 0,
                    oid: 0,
                    score: 0.82,
                },
                Pair {
                    fid: 1,
                    oid: 1,
                    score: 0.82,
                },
            ],
            RunMetrics::default(),
        )
    }

    #[test]
    fn mutation_log_window_covers_exactly_the_retained_events() {
        let log = MutationLog::new(2);
        log.record(10, MutationEvent::Remove { oid: 1 });
        log.record(11, MutationEvent::Remove { oid: 2 });
        log.record(12, MutationEvent::Remove { oid: 3 });
        // The version-10 event fell out of the ring: a gap starting
        // before it can no longer be proven safe.
        assert!(log.events_between(9, 12).is_none());
        let covered = log.events_between(10, 12).expect("window covers 11..=12");
        assert_eq!(covered.len(), 2);
        // An empty gap is trivially covered.
        assert_eq!(log.events_between(12, 12).expect("empty gap").len(), 0);
    }

    #[test]
    fn removing_an_unassigned_object_revalidates_removing_assigned_drops() {
        let key = orthogonal_key(&RequestOptions::default());
        let mut cache = ResultCache::new(8, 1 << 20);
        let log = MutationLog::default();
        cache.insert(&key, 5, &orthogonal_matching());

        log.record(6, MutationEvent::Remove { oid: 3 });
        assert!(cache.get_with_log(&key, 6, &log).is_some());
        assert_eq!(cache.metrics().revalidations, 1);

        log.record(7, MutationEvent::Remove { oid: 0 });
        assert!(cache.get_with_log(&key, 7, &log).is_none());
        assert!(cache.is_empty(), "an affected entry is dropped outright");
    }

    #[test]
    fn beaten_everywhere_inserts_revalidate_dominating_inserts_drop() {
        let key = orthogonal_key(&RequestOptions::default());
        let mut cache = ResultCache::new(8, 1 << 20);
        let log = MutationLog::default();
        cache.insert(&key, 5, &orthogonal_matching());

        // Both functions score the newcomer below their assigned pair.
        log.record(
            6,
            MutationEvent::Insert {
                oid: 9,
                point: Arc::from([0.01, 0.02].as_slice()),
            },
        );
        assert!(cache.get_with_log(&key, 6, &log).is_some());

        // Function 0 scores this newcomer 0.875 > 0.82: can steal.
        log.record(
            7,
            MutationEvent::Insert {
                oid: 10,
                point: Arc::from([0.95, 0.2].as_slice()),
            },
        );
        assert!(cache.get_with_log(&key, 7, &log).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn mutations_of_an_excluded_object_always_survive() {
        let mut options = RequestOptions::default();
        options.exclude.insert(2);
        let key = orthogonal_key(&options);
        let mut cache = ResultCache::new(8, 1 << 20);
        let log = MutationLog::default();
        cache.insert(&key, 5, &orthogonal_matching());

        // Even a would-dominate-everything update is invisible to a
        // request that excludes the object.
        log.record(
            6,
            MutationEvent::Update {
                oid: 2,
                point: Arc::from([1.0, 1.0].as_slice()),
            },
        );
        assert!(cache.get_with_log(&key, 6, &log).is_some());
        log.record(7, MutationEvent::Remove { oid: 2 });
        assert!(cache.get_with_log(&key, 7, &log).is_some());
        assert_eq!(cache.metrics().revalidations, 2);
    }

    #[test]
    fn capacitated_entries_never_revalidate() {
        let options = RequestOptions {
            capacities: Some(vec![1, 1, 1, 1]),
            ..RequestOptions::default()
        };
        let key = orthogonal_key(&options);
        let mut cache = ResultCache::new(8, 1 << 20);
        let log = MutationLog::default();
        cache.insert(&key, 5, &orthogonal_matching());

        // Harmless on its face, but the capacitated greedy's survival
        // argument is not implemented — must fall back to drop.
        log.record(6, MutationEvent::Remove { oid: 3 });
        assert!(cache.get_with_log(&key, 6, &log).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn uncovered_version_gap_drops_instead_of_guessing() {
        let key = orthogonal_key(&RequestOptions::default());
        let mut cache = ResultCache::new(8, 1 << 20);
        let log = MutationLog::new(1);
        cache.insert(&key, 5, &orthogonal_matching());
        log.record(6, MutationEvent::Remove { oid: 3 });
        log.record(7, MutationEvent::Remove { oid: 3 }); // evicts v6
        assert!(cache.get_with_log(&key, 7, &log).is_none());
    }

    #[test]
    fn insert_with_log_sweeps_dead_entries_and_keeps_survivors() {
        let key_a = orthogonal_key(&RequestOptions::default());
        let mut excl = RequestOptions::default();
        excl.exclude.insert(0);
        let key_b = orthogonal_key(&excl);
        let key_c = key_of(&[vec![0.5, 0.5]]);

        let mut cache = ResultCache::new(8, 1 << 20);
        let log = MutationLog::default();
        cache.insert(&key_a, 5, &orthogonal_matching());
        // Entry B's matching does not assign object 0 (it excludes it).
        cache.insert(
            &key_b,
            5,
            &Matching::new(
                vec![Pair {
                    fid: 1,
                    oid: 1,
                    score: 0.82,
                }],
                RunMetrics::default(),
            ),
        );
        let bytes_before = cache.bytes();

        // Removing assigned object 0 kills A; B excluded it — survives.
        log.record(6, MutationEvent::Remove { oid: 0 });
        cache.insert_with_log(&key_c, 6, &matching_of(1), &log);
        assert_eq!(cache.len(), 2, "A swept, B restamped, C inserted");
        assert!(cache.get(&key_b, 6).is_some());
        assert!(cache.get(&key_c, 6).is_some());
        assert!(
            cache.bytes() < bytes_before + key_c.approx_bytes() + matching_of(1).approx_bytes() + 1
        );
        assert_eq!(cache.metrics().evictions, 1);

        // A publish stamped *older* than live entries must not evict
        // them (the worker-raced-a-mutation case).
        cache.insert_with_log(&key_a, 5, &orthogonal_matching(), &log);
        assert!(
            cache.get(&key_b, 6).is_some(),
            "newer entries survive an old-stamp publish"
        );
        // The old-stamped entry itself installs, and its next versioned
        // lookup catches it up through the log — here: kills it, since
        // the remove hit its assigned object.
        assert!(cache.get_with_log(&key_a, 6, &log).is_none());
    }

    // ------------------------------------------------------------------
    // Near-miss lookup + seeds
    // ------------------------------------------------------------------

    fn seed_at(versions: &[u64]) -> Arc<EvalSeed> {
        Arc::new(EvalSeed {
            versions: versions.to_vec(),
            parts: Vec::new(),
        })
    }

    fn key_excluding(excl: &[u64]) -> RequestKey {
        let functions = FunctionSet::from_rows(2, &[vec![0.5, 0.5], vec![0.9, 0.1]]);
        let mut o = RequestOptions::default();
        o.exclude.extend(excl.iter().copied());
        request_key(&functions, &o)
    }

    #[test]
    fn exclusions_are_canonical_at_construction() {
        // Order-insensitive (already pinned above) *and* stored sorted:
        // the material's exclusion section is the canonical form every
        // consumer (binary search, delta counting) relies on.
        let key = key_excluding(&[11, 3, 7]);
        let view = KeyView::parse(&key.material).expect("well-formed key");
        assert_eq!(view.excl, &[3, 7, 11]);
        assert!(view.excl.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(key, key_excluding(&[3, 7, 11]));
    }

    #[test]
    fn near_miss_returns_the_smallest_delta_within_the_bound() {
        let mut cache = ResultCache::new(8, 1 << 20);
        // Donors at exclusion-delta 3 and 1 from the probe {3, 7}.
        cache.insert_vec_seeded(
            &key_excluding(&[1, 2, 9]),
            &[4],
            &matching_of(1),
            Some(seed_at(&[4])),
        );
        cache.insert_vec_seeded(
            &key_excluding(&[3]),
            &[4],
            &matching_of(1),
            Some(seed_at(&[4])),
        );

        let probe = key_excluding(&[3, 7]);
        let (seed, delta) = cache.near_miss(&probe, &[4], 16).expect("delta-1 donor");
        assert_eq!(delta, 1);
        assert!(seed.usable_at(&[4]));
        // Bound excludes everything: {1,2,9} vs {3,7} is delta 5.
        assert!(cache.near_miss(&key_excluding(&[100]), &[4], 1).is_none());
        let m = cache.metrics();
        assert_eq!((m.seeded_hits, m.seed_delta), (1, 1));
    }

    #[test]
    fn near_miss_spans_the_function_axis_too() {
        let functions = FunctionSet::from_rows(2, &[vec![0.5, 0.5], vec![0.9, 0.1]]);
        let tweaked = FunctionSet::from_rows(2, &[vec![0.5, 0.5], vec![0.8, 0.2]]);
        let donor = request_key(&functions, &RequestOptions::default());
        let probe = request_key(&tweaked, &RequestOptions::default());
        let mut cache = ResultCache::new(8, 1 << 20);
        cache.insert_vec_seeded(&donor, &[1], &matching_of(1), Some(seed_at(&[1])));
        let (_, delta) = cache.near_miss(&probe, &[1], 4).expect("one tweaked row");
        assert_eq!(delta, 1);
        // A request differing on *both* axes is not a near miss.
        let mut o = RequestOptions::default();
        o.exclude.insert(5);
        assert!(cache
            .near_miss(&request_key(&tweaked, &o), &[1], 4)
            .is_none());
    }

    #[test]
    fn near_miss_requires_a_seed_at_exactly_the_lookup_versions() {
        let mut cache = ResultCache::new(8, 1 << 20);
        let probe = key_excluding(&[3, 7]);
        // Seedless entry: never a donor.
        cache.insert_vec(&key_excluding(&[3]), &[4], &matching_of(1));
        assert!(cache.near_miss(&probe, &[4], 16).is_none());
        // Seed pinned to version 4: unusable at 5.
        cache.insert_vec_seeded(
            &key_excluding(&[7]),
            &[4],
            &matching_of(1),
            Some(seed_at(&[4])),
        );
        assert!(cache.near_miss(&probe, &[5], 16).is_none());
        assert!(cache.near_miss(&probe, &[4], 16).is_some());
        // Bound 0 disables the machinery outright.
        assert!(cache.near_miss(&probe, &[4], 0).is_none());
    }

    #[test]
    fn revalidation_keeps_the_matching_but_drops_the_seed() {
        let key = orthogonal_key(&RequestOptions::default());
        let donor = {
            let functions = FunctionSet::from_rows(2, &[vec![0.9, 0.1], vec![0.1, 0.9]]);
            let mut o = RequestOptions::default();
            o.exclude.insert(42);
            request_key(&functions, &o)
        };
        let mut cache = ResultCache::new(8, 1 << 20);
        let log = MutationLog::default();
        cache.insert_vec_seeded(&donor, &[5], &orthogonal_matching(), Some(seed_at(&[5])));
        let bytes_with_seed = cache.bytes();
        assert!(cache.near_miss(&key, &[5], 16).is_some());

        // A harmless remove revalidates the entry to version 6 — the
        // matching is served, but the seed (pinned to the version-5
        // epoch) is gone and its bytes are released.
        log.record(6, MutationEvent::Remove { oid: 3 });
        assert!(cache.get_with_log(&donor, 6, &log).is_some());
        assert!(cache.near_miss(&key, &[6], 16).is_none());
        assert!(cache.bytes() < bytes_with_seed);
    }

    #[test]
    fn eviction_unindexes_the_donor() {
        let mut cache = ResultCache::new(1, 1 << 20);
        cache.insert_vec_seeded(
            &key_excluding(&[3]),
            &[4],
            &matching_of(1),
            Some(seed_at(&[4])),
        );
        // Capacity 1: the second insert evicts the donor.
        cache.insert_vec(&key_of(&[vec![0.5, 0.5]]), &[4], &matching_of(1));
        assert!(cache.near_miss(&key_excluding(&[3, 7]), &[4], 16).is_none());
        assert!(cache.by_fns.len() <= 1 && cache.by_excl.len() <= 1);
    }
}
