//! Cross-request result caching: a canonical request key and a bounded,
//! inventory-versioned LRU over finished [`Matching`]s.
//!
//! The paper's premise is that *many* users' preference queries arrive
//! against one shared inventory — and real multi-user traffic is
//! repeat-heavy: identical function sets recur constantly (the same
//! search form resubmitted, the same default weights, polling clients).
//! Evaluation is deterministic and the engine's index is immutable, so
//! an identical request against the same inventory **must** produce the
//! bit-identical matching — which makes the pair `(request key,
//! inventory version)` a sound cache key with no staleness hazard
//! beyond inventory replacement.
//!
//! Two layers use this module:
//!
//! * [`ResultCache`] — the bounded LRU itself (entry- and byte-capped),
//!   usable standalone. Every entry is stamped with the
//!   [`Engine::inventory_version`](crate::Engine::inventory_version) it
//!   was computed against; a lookup under a different version is a miss
//!   (and drops the stale entry), so a cache outliving an engine rebuild
//!   can never serve results from the old inventory. [`ResultCache::invalidate`]
//!   clears everything at once.
//! * the [`service`](crate::service) layer — consults a `ResultCache`
//!   before enqueueing and adds **in-flight dedupe** on top: a second
//!   identical submission attaches to the first job instead of paying a
//!   queue slot and a duplicate evaluation.
//!
//! The key ([`RequestKey`]) is *canonical*: it covers the function-set
//! rows (weight bits, in function-id order, with tombstone flags), the
//! [`Algorithm`] and every evaluation knob of the
//! request, the exclusion set (**order-insensitively** — `HashSet`
//! iteration order never leaks into the key), and the capacity vector.
//! Equality compares the full key material, not just the 64-bit hash,
//! so a hash collision can never surface a wrong cached matching — the
//! bit-identical guarantee survives adversarial inputs.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use mpq_ta::FunctionSet;

use crate::engine::{Algorithm, RequestOptions};
use crate::matching::Matching;
use crate::sb::{BestPairMode, MaintenanceMode};

/// A canonical, collision-proof identity of one evaluation request:
/// everything that can change the resulting [`Matching`], and nothing
/// that cannot.
///
/// Build one with [`MatchRequest::cache_key`](crate::MatchRequest::cache_key).
/// Two requests have equal keys **iff** evaluating them against the same
/// inventory is guaranteed to produce bit-identical matchings: the
/// function rows (bit-exact weights, in function-id order, including
/// tombstones), the algorithm and all its knobs, the exclusion set
/// (compared as a set — insertion order is irrelevant) and the capacity
/// vector all agree. Equality compares the full material, so the
/// precomputed hash only accelerates lookups — it can never cause a
/// false hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestKey {
    hash: u64,
    material: Box<[u64]>,
}

impl std::hash::Hash for RequestKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

impl RequestKey {
    /// The precomputed 64-bit FNV-1a digest of the key material
    /// (diagnostic; equality does not trust it).
    pub fn hash64(&self) -> u64 {
        self.hash
    }

    /// Approximate heap footprint of the key, for cache byte accounting.
    pub(crate) fn approx_bytes(&self) -> usize {
        std::mem::size_of::<RequestKey>() + self.material.len() * std::mem::size_of::<u64>()
    }
}

/// Build the canonical key of `(functions, options)` — see
/// [`RequestKey`] for what it covers. The inventory version is *not*
/// part of the key; it stamps cache entries instead
/// ([`ResultCache::insert`]), so one cache can safely span engine
/// rebuilds.
pub(crate) fn request_key(functions: &FunctionSet, options: &RequestOptions) -> RequestKey {
    let mut m: Vec<u64> = Vec::with_capacity(8 + functions.len() * (functions.dim() + 1));

    // Function rows, in function-id order: ids are semantic (a matching
    // names them), so row order is part of the identity — but exclusion
    // order below is not.
    m.push(functions.dim() as u64);
    m.push(functions.len() as u64);
    for fid in 0..functions.len() as u32 {
        m.push(u64::from(functions.is_alive(fid)));
        m.extend(functions.weights(fid).iter().map(|w| w.to_bits()));
    }

    // Every evaluation knob of RequestOptions.
    m.push(match options.algorithm {
        Algorithm::Sb => 0,
        Algorithm::BruteForce => 1,
        Algorithm::Chain => 2,
    });
    m.push(match options.best_pair {
        BestPairMode::Ta => 0,
        BestPairMode::TaNaiveThreshold => 1,
        BestPairMode::Scan => 2,
    });
    m.push(match options.maintenance {
        MaintenanceMode::Incremental => 0,
        MaintenanceMode::Rescan => 1,
    });
    m.push(u64::from(options.multi_pair));
    m.push(match options.bf_strategy {
        crate::brute_force::BfStrategy::Incremental => 0,
        crate::brute_force::BfStrategy::Restart => 1,
    });

    // Exclusions are a set: sort so HashSet iteration order cannot make
    // two identical requests key differently.
    let mut excluded: Vec<u64> = options.exclude.iter().copied().collect();
    excluded.sort_unstable();
    m.push(excluded.len() as u64);
    m.extend(excluded);

    match &options.capacities {
        None => m.push(0),
        Some(caps) => {
            m.push(1);
            m.push(caps.len() as u64);
            m.extend(caps.iter().map(|&c| u64::from(c)));
        }
    }

    // FNV-1a over the material words: deterministic across processes
    // (unlike SipHash's random keys), so keys are stable for logging and
    // cross-run comparison.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for word in &m {
        for byte in word.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    RequestKey {
        hash,
        material: m.into_boxed_slice(),
    }
}

/// Rolling counters of one cache (embedded in
/// [`ServiceMetrics::cache`](crate::service::ServiceMetrics)).
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheMetrics {
    /// `false` when the service runs with caching disabled
    /// (`cache_capacity == 0`); all counters stay zero.
    pub enabled: bool,
    /// Lookups served straight from the cache.
    pub hits: u64,
    /// Lookups that found nothing (or a stale inventory version) and had
    /// to evaluate. In-flight dedupe attaches are misses at the cache
    /// level (counted in `attaches` too).
    pub misses: u64,
    /// Submissions that attached to an identical in-flight job instead
    /// of enqueueing a duplicate evaluation (service layer only).
    pub attaches: u64,
    /// Results stored.
    pub insertions: u64,
    /// Entries dropped to respect the entry/byte bounds (stale-version
    /// entries dropped on lookup count here too).
    pub evictions: u64,
    /// Current number of cached entries.
    pub entries: usize,
    /// Current approximate heap footprint of the cached entries.
    pub bytes: usize,
}

impl CacheMetrics {
    /// `hits / (hits + misses)`, guarded (the same stance as
    /// [`safe_rate`](crate::service::ServiceMetrics::requests_per_sec)):
    /// no lookups yet yields `0.0`, never NaN.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

/// One cached result plus its bookkeeping.
struct CacheEntry {
    matching: Matching,
    /// Inventory version the result was computed against; a lookup under
    /// any other version treats the entry as absent.
    version: u64,
    /// Approximate heap footprint (key + matching).
    bytes: usize,
    /// Recency tick (key into the LRU index).
    tick: u64,
}

/// A bounded LRU of finished [`Matching`]s keyed by [`RequestKey`] and
/// stamped with the inventory version they were computed against.
///
/// Capacity is double-bounded: at most `max_entries` results and at most
/// `max_bytes` of approximate heap footprint — whichever bound is hit
/// first evicts the least-recently-used entry. Both bounds are clamped
/// to sane minimums so a cache that exists can always hold one entry
/// (construct via [`ServiceConfig`](crate::service::ServiceConfig) with
/// `cache_capacity == 0` to disable caching entirely instead).
///
/// ```
/// use mpq_core::{Engine, ResultCache};
/// use mpq_rtree::PointSet;
/// use mpq_ta::FunctionSet;
///
/// let mut objects = PointSet::new(2);
/// for p in [[0.9_f64, 0.2], [0.2, 0.9], [0.7, 0.7]] { objects.push(&p); }
/// let engine = Engine::builder().objects(&objects).build().unwrap();
/// let functions = FunctionSet::from_rows(2, &[vec![0.5, 0.5]]);
///
/// let mut cache = ResultCache::new(64, 1 << 20);
/// let request = engine.request(&functions);
/// let key = request.cache_key();
/// let fresh = request.evaluate().unwrap();
/// cache.insert(&key, engine.inventory_version(), &fresh);
///
/// // Same inventory: hit, bit-identical.
/// let hit = cache.get(&key, engine.inventory_version()).unwrap();
/// assert_eq!(hit.sorted_pairs(), fresh.sorted_pairs());
///
/// // A rebuilt engine has a new inventory version: the stale entry is
/// // a miss (and is dropped), never served.
/// let rebuilt = Engine::builder().objects(&objects).build().unwrap();
/// assert!(cache.get(&key, rebuilt.inventory_version()).is_none());
/// ```
pub struct ResultCache {
    max_entries: usize,
    max_bytes: usize,
    entries: HashMap<Arc<RequestKey>, CacheEntry>,
    /// Recency index: tick → key, oldest first. Ticks are unique (one
    /// per touch), so this is a faithful LRU order.
    lru: BTreeMap<u64, Arc<RequestKey>>,
    next_tick: u64,
    bytes: usize,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache")
            .field("entries", &self.entries.len())
            .field("bytes", &self.bytes)
            .field("max_entries", &self.max_entries)
            .field("max_bytes", &self.max_bytes)
            .finish()
    }
}

impl ResultCache {
    /// An empty cache bounded to `max_entries` results and `max_bytes`
    /// of approximate footprint (each clamped to at least 1 entry /
    /// 4 KiB).
    pub fn new(max_entries: usize, max_bytes: usize) -> ResultCache {
        ResultCache {
            max_entries: max_entries.max(1),
            max_bytes: max_bytes.max(4096),
            entries: HashMap::new(),
            lru: BTreeMap::new(),
            next_tick: 0,
            bytes: 0,
            hits: 0,
            misses: 0,
            insertions: 0,
            evictions: 0,
        }
    }

    /// Look up `key` under inventory `version`. A hit returns a clone of
    /// the cached matching (pairs bit-identical to the original
    /// evaluation; the [`RunMetrics`](crate::RunMetrics) are the
    /// *original run's* — a hit does no I/O of its own) and refreshes
    /// recency. An entry stamped with a different version is dropped and
    /// reported as a miss: the inventory it was computed against no
    /// longer exists.
    pub fn get(&mut self, key: &RequestKey, version: u64) -> Option<Matching> {
        let Some(entry) = self.entries.get(key) else {
            self.misses += 1;
            return None;
        };
        if entry.version != version {
            self.misses += 1;
            self.evictions += 1;
            let tick = entry.tick;
            let bytes = entry.bytes;
            self.entries.remove(key);
            self.lru.remove(&tick);
            self.bytes -= bytes;
            return None;
        }
        self.hits += 1;
        // Refresh recency: move the entry to the newest tick.
        let tick = self.next_tick;
        self.next_tick += 1;
        let entry = self.entries.get_mut(key).expect("entry just found");
        let old = std::mem::replace(&mut entry.tick, tick);
        let matching = entry.matching.clone();
        let key = self.lru.remove(&old).expect("lru tracks every entry");
        self.lru.insert(tick, key);
        Some(matching)
    }

    /// Store `matching` for `key` under inventory `version`, evicting
    /// least-recently-used entries until both bounds hold. A result too
    /// large to ever fit the byte bound is not stored (the cache is an
    /// accelerator, not a spill).
    pub fn insert(&mut self, key: &RequestKey, version: u64, matching: &Matching) {
        let bytes = key.approx_bytes() + matching.approx_bytes();
        if bytes > self.max_bytes {
            return;
        }
        // Replace any stale entry for this key first so the bounds see
        // consistent accounting.
        if let Some(old) = self.entries.remove(key) {
            self.lru.remove(&old.tick);
            self.bytes -= old.bytes;
        }
        while self.entries.len() + 1 > self.max_entries || self.bytes + bytes > self.max_bytes {
            let Some((&oldest, _)) = self.lru.iter().next() else {
                break;
            };
            let victim = self.lru.remove(&oldest).expect("just observed");
            let dropped = self.entries.remove(&victim).expect("lru tracks entries");
            self.bytes -= dropped.bytes;
            self.evictions += 1;
        }
        let tick = self.next_tick;
        self.next_tick += 1;
        let key = Arc::new(key.clone());
        self.lru.insert(tick, Arc::clone(&key));
        self.entries.insert(
            key,
            CacheEntry {
                matching: matching.clone(),
                version,
                bytes,
                tick,
            },
        );
        self.bytes += bytes;
        self.insertions += 1;
    }

    /// Drop every entry (e.g. the engine behind the cache was rebuilt
    /// and the stale versions should stop occupying space). Counters
    /// survive; dropped entries count as evictions.
    pub fn invalidate(&mut self) {
        self.evictions += self.entries.len() as u64;
        self.entries.clear();
        self.lru.clear();
        self.bytes = 0;
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate heap footprint of the cached entries.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Snapshot the rolling counters. `attaches` is always 0 here — the
    /// service layer owns that counter and merges it into its
    /// [`ServiceMetrics`](crate::service::ServiceMetrics) snapshot.
    pub fn metrics(&self) -> CacheMetrics {
        CacheMetrics {
            enabled: true,
            hits: self.hits,
            misses: self.misses,
            attaches: 0,
            insertions: self.insertions,
            evictions: self.evictions,
            entries: self.entries.len(),
            bytes: self.bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::{Pair, RunMetrics};

    fn matching_of(n: usize) -> Matching {
        let pairs = (0..n)
            .map(|i| Pair {
                fid: i as u32,
                oid: i as u64,
                score: 1.0 - i as f64 * 0.01,
            })
            .collect();
        Matching::new(pairs, RunMetrics::default())
    }

    fn key_of(rows: &[Vec<f64>]) -> RequestKey {
        let functions = FunctionSet::from_rows(2, rows);
        request_key(&functions, &RequestOptions::default())
    }

    #[test]
    fn key_is_order_insensitive_over_exclusions_only() {
        let functions = FunctionSet::from_rows(2, &[vec![0.5, 0.5], vec![0.9, 0.1]]);
        let mut a = RequestOptions::default();
        a.exclude.extend([3u64, 7, 11]);
        let mut b = RequestOptions::default();
        b.exclude.extend([11u64, 3, 7]);
        assert_eq!(request_key(&functions, &a), request_key(&functions, &b));

        // ...but function row order is semantic (fids name the rows).
        let swapped = FunctionSet::from_rows(2, &[vec![0.9, 0.1], vec![0.5, 0.5]]);
        assert_ne!(
            request_key(&functions, &RequestOptions::default()),
            request_key(&swapped, &RequestOptions::default())
        );
    }

    #[test]
    fn key_covers_every_knob() {
        let functions = FunctionSet::from_rows(2, &[vec![0.5, 0.5]]);
        let base = request_key(&functions, &RequestOptions::default());
        let o = RequestOptions {
            algorithm: Algorithm::Chain,
            ..RequestOptions::default()
        };
        assert_ne!(base, request_key(&functions, &o));
        let o = RequestOptions {
            multi_pair: false,
            ..RequestOptions::default()
        };
        assert_ne!(base, request_key(&functions, &o));
        let o = RequestOptions {
            capacities: Some(vec![1, 2, 3]),
            ..RequestOptions::default()
        };
        assert_ne!(base, request_key(&functions, &o));
        let mut o = RequestOptions::default();
        o.exclude.insert(5);
        assert_ne!(base, request_key(&functions, &o));
        // tombstones are part of the identity
        let mut dead = FunctionSet::from_rows(2, &[vec![0.5, 0.5], vec![0.9, 0.1]]);
        dead.remove(1);
        let alive = FunctionSet::from_rows(2, &[vec![0.5, 0.5], vec![0.9, 0.1]]);
        assert_ne!(
            request_key(&dead, &RequestOptions::default()),
            request_key(&alive, &RequestOptions::default())
        );
    }

    #[test]
    fn lru_evicts_by_recency_and_respects_entry_bound() {
        let mut cache = ResultCache::new(2, 1 << 20);
        let (ka, kb, kc) = (
            key_of(&[vec![0.1, 0.9]]),
            key_of(&[vec![0.2, 0.8]]),
            key_of(&[vec![0.3, 0.7]]),
        );
        cache.insert(&ka, 1, &matching_of(1));
        cache.insert(&kb, 1, &matching_of(1));
        assert!(cache.get(&ka, 1).is_some()); // refresh a: b is now LRU
        cache.insert(&kc, 1, &matching_of(1)); // evicts b
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&ka, 1).is_some());
        assert!(cache.get(&kb, 1).is_none(), "b was least recently used");
        assert!(cache.get(&kc, 1).is_some());
        assert_eq!(cache.metrics().evictions, 1);
    }

    #[test]
    fn byte_bound_evicts_and_oversize_results_are_not_stored() {
        // Entries big enough that the byte bound (not the entry bound)
        // is what binds: ~24 KiB of pairs each, bound at ~2 entries.
        let bulky = matching_of(1000);
        let per_entry = key_of(&[vec![0.1, 0.9]]).approx_bytes() + bulky.approx_bytes();
        let mut cache = ResultCache::new(1024, per_entry * 2);
        let keys: Vec<RequestKey> = (0..4)
            .map(|i| key_of(&[vec![0.1 + i as f64 * 0.05, 0.5]]))
            .collect();
        for k in &keys {
            cache.insert(k, 1, &bulky);
        }
        assert!(
            cache.bytes() <= cache.max_bytes,
            "byte bound must hold after inserts"
        );
        assert!(cache.len() < 4, "byte bound must have evicted something");

        let huge = matching_of(100_000);
        let before = cache.len();
        cache.insert(&key_of(&[vec![0.9, 0.1]]), 1, &huge);
        assert_eq!(cache.len(), before, "oversize result must not be stored");
    }

    #[test]
    fn version_mismatch_is_a_miss_and_drops_the_stale_entry() {
        let mut cache = ResultCache::new(8, 1 << 20);
        let key = key_of(&[vec![0.4, 0.6]]);
        cache.insert(&key, 7, &matching_of(3));
        assert!(cache.get(&key, 7).is_some());
        assert!(cache.get(&key, 8).is_none(), "stale version must miss");
        assert!(
            cache.get(&key, 7).is_none(),
            "the stale entry is gone, not resurrected"
        );
        let m = cache.metrics();
        assert_eq!((m.hits, m.misses), (1, 2));
    }

    #[test]
    fn invalidate_clears_everything() {
        let mut cache = ResultCache::new(8, 1 << 20);
        for i in 0..3 {
            cache.insert(
                &key_of(&[vec![0.1 * (i + 1) as f64, 0.5]]),
                1,
                &matching_of(1),
            );
        }
        assert_eq!(cache.len(), 3);
        cache.invalidate();
        assert!(cache.is_empty());
        assert_eq!(cache.bytes(), 0);
        assert_eq!(cache.metrics().evictions, 3);
    }

    #[test]
    fn hit_rate_is_guarded() {
        let cache = ResultCache::new(8, 1 << 20);
        assert_eq!(cache.metrics().hit_rate(), 0.0);
        let mut cache = cache;
        let key = key_of(&[vec![0.5, 0.5]]);
        cache.insert(&key, 1, &matching_of(1));
        let _ = cache.get(&key, 1);
        let _ = cache.get(&key_of(&[vec![0.6, 0.4]]), 1);
        let rate = cache.metrics().hit_rate();
        assert!((rate - 0.5).abs() < 1e-12, "{rate}");
    }
}
