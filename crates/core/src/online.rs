//! Online (batched) evaluation: query batches arrive over time against
//! a persistent inventory.
//!
//! The paper's motivating deployment (§I) is a popular reservation site
//! where preference queries arrive *continuously*. The offline model
//! matches one fixed `F` against `O`; the engine keeps the expensive
//! state — the R-tree and the incrementally-maintained skyline with its
//! plists — alive across batches, so each arriving batch only pays for
//! its own best-pair search plus the skyline maintenance its
//! assignments cause. This is precisely where §IV-B's plist design
//! shines: the alternative would re-run BBS for every batch.
//!
//! This module is a thin veneer over [`crate::Engine::session`], which
//! owns the implementation ([`MatchSession`]):
//!
//! ```
//! use mpq_core::Engine;
//! use mpq_ta::FunctionSet;
//! use mpq_rtree::PointSet;
//!
//! let mut inventory = PointSet::new(2);
//! for p in [[0.9_f64, 0.2], [0.2, 0.9], [0.7, 0.7], [0.4, 0.4]] {
//!     inventory.push(&p);
//! }
//! let engine = Engine::builder().objects(&inventory).build().unwrap();
//! let mut session = engine.session();
//!
//! // first customer batch takes the best matches...
//! let b1 = session
//!     .submit(&FunctionSet::from_rows(2, &[vec![0.5, 0.5]]))
//!     .unwrap();
//! assert_eq!(b1.pairs()[0].oid, 2); // (0.7, 0.7) wins for balanced weights
//!
//! // ...the next batch sees only what is left
//! let b2 = session
//!     .submit(&FunctionSet::from_rows(2, &[vec![0.5, 0.5]]))
//!     .unwrap();
//! assert_ne!(b2.pairs()[0].oid, 2);
//! assert_eq!(session.objects_remaining(), 2);
//! ```
//!
//! Each batch is matched greedily against the *remaining* inventory
//! (earlier batches hold their reservations); within a batch the result
//! is the same stable matching the offline SB computes, which the tests
//! assert against a reference with the consumed objects excluded.

pub use crate::engine::MatchSession;

/// Deprecated name for [`MatchSession`]. Open sessions with
/// [`crate::Engine::session`].
#[deprecated(
    since = "0.2.0",
    note = "renamed to MatchSession; open one with Engine::session()"
)]
pub type OnlineSession<'e> = MatchSession<'e>;

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    use crate::engine::Engine;
    use crate::matching::{IndexConfig, Pair};
    use crate::reference::reference_matching_excluding;
    use crate::sb::SkylineMatcher;
    use crate::Matcher;
    use mpq_datagen::{Distribution, WorkloadBuilder};
    use mpq_ta::FunctionSet;

    fn tiny_index() -> IndexConfig {
        IndexConfig {
            page_size: 256,
            buffer_fraction: 0.1,
            min_buffer_pages: 4,
        }
    }

    fn engine(objects: &mpq_rtree::PointSet) -> Engine {
        Engine::builder()
            .index(tiny_index())
            .objects(objects)
            .build()
            .unwrap()
    }

    fn sorted(pairs: &[Pair]) -> Vec<(u32, u64)> {
        let mut v: Vec<(u32, u64)> = pairs.iter().map(|p| (p.fid, p.oid)).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn single_batch_equals_offline_sb() {
        let w = WorkloadBuilder::new()
            .objects(300)
            .functions(40)
            .dim(3)
            .seed(91)
            .build();
        let eng = engine(&w.objects);
        let offline = SkylineMatcher {
            index: tiny_index(),
            ..Default::default()
        }
        .run_on(&eng, &w.functions)
        .unwrap();

        let mut session = eng.session();
        let online = session.submit(&w.functions).unwrap();
        assert_eq!(sorted(online.pairs()), sorted(offline.pairs()));
    }

    #[test]
    fn batches_consume_inventory_sequentially() {
        let w = WorkloadBuilder::new()
            .objects(400)
            .functions(60)
            .dim(2)
            .distribution(Distribution::AntiCorrelated)
            .seed(92)
            .build();
        // split the 60 functions into 3 batches of 20
        let rows: Vec<Vec<f64>> = w
            .functions
            .iter_alive()
            .map(|(_, weights)| weights.to_vec())
            .collect();
        let batches: Vec<FunctionSet> = rows
            .chunks(20)
            .map(|c| FunctionSet::from_rows(2, c))
            .collect();

        let eng = engine(&w.objects);
        let mut session = eng.session();
        let mut consumed: HashSet<u64> = HashSet::new();
        for batch in &batches {
            let got = session.submit(batch).unwrap();
            // ground truth: reference matching over the remaining objects
            let expect =
                reference_matching_excluding(&w.objects, batch, &|o| consumed.contains(&o));
            assert_eq!(sorted(got.pairs()), sorted(&expect));
            for p in got.pairs() {
                assert!(consumed.insert(p.oid), "object reserved twice");
            }
        }
        assert_eq!(consumed.len(), 60);
        assert_eq!(session.objects_remaining(), 340);
        assert_eq!(session.batches_processed(), 3);
    }

    #[test]
    fn inventory_exhaustion_across_batches() {
        let w = WorkloadBuilder::new()
            .objects(15)
            .functions(30)
            .dim(2)
            .seed(93)
            .build();
        let rows: Vec<Vec<f64>> = w
            .functions
            .iter_alive()
            .map(|(_, weights)| weights.to_vec())
            .collect();
        let eng = engine(&w.objects);
        let mut session = eng.session();
        let first = session
            .submit(&FunctionSet::from_rows(2, &rows[..10]))
            .unwrap();
        assert_eq!(first.len(), 10);
        let second = session
            .submit(&FunctionSet::from_rows(2, &rows[10..]))
            .unwrap();
        assert_eq!(second.len(), 5, "only 5 objects remain for 20 users");
        assert_eq!(session.objects_remaining(), 0);
        let third = session
            .submit(&FunctionSet::from_rows(2, &rows[..3]))
            .unwrap();
        assert!(third.is_empty(), "an empty inventory matches nobody");
    }

    #[test]
    fn later_batches_cost_less_io_than_the_initial_skyline() {
        let w = WorkloadBuilder::new()
            .objects(5_000)
            .functions(100)
            .dim(3)
            .seed(94)
            .build();
        let rows: Vec<Vec<f64>> = w
            .functions
            .iter_alive()
            .map(|(_, weights)| weights.to_vec())
            .collect();
        let eng = engine(&w.objects);
        let mut session = eng.session();
        let init_io = session.io_stats().logical; // initial BBS

        let b1 = session
            .submit(&FunctionSet::from_rows(3, &rows[..50]))
            .unwrap();
        let b2 = session
            .submit(&FunctionSet::from_rows(3, &rows[50..]))
            .unwrap();
        assert_eq!(b1.len() + b2.len(), 100);
        // each batch's own I/O is small relative to the initial skyline
        // computation: the point of keeping the session alive
        assert!(b1.metrics().io.logical < init_io);
        assert!(b2.metrics().io.logical < init_io);
    }

    #[test]
    fn session_rejects_mismatched_batches() {
        let w = WorkloadBuilder::new()
            .objects(30)
            .functions(5)
            .dim(2)
            .seed(95)
            .build();
        let eng = engine(&w.objects);
        let mut session = eng.session();
        let err = session.submit(&FunctionSet::new(3)).unwrap_err();
        assert_eq!(err, crate::MpqError::EmptyFunctions);
        let err = session
            .submit(&FunctionSet::from_rows(3, &[vec![0.3, 0.3, 0.4]]))
            .unwrap_err();
        assert!(matches!(err, crate::MpqError::DimensionMismatch { .. }));
    }
}
