//! Online (batched) evaluation: query batches arrive over time against
//! a persistent inventory.
//!
//! The paper's motivating deployment (§I) is a popular reservation site
//! where preference queries arrive *continuously*. The offline model
//! matches one fixed `F` against `O`; this module keeps the expensive
//! state — the R-tree and the incrementally-maintained skyline with its
//! plists — alive across batches, so each arriving batch only pays for
//! its own best-pair search plus the skyline maintenance its
//! assignments cause. This is precisely where §IV-B's plist design
//! shines: the alternative would re-run BBS for every batch.
//!
//! Each batch is matched greedily against the *remaining* inventory
//! (earlier batches hold their reservations); within a batch the result
//! is the same stable matching the offline SB computes, which the tests
//! assert against a reference with the consumed objects excluded.

use std::collections::{HashMap, HashSet};
use std::time::Instant;

use mpq_rtree::RTree;
use mpq_skyline::SkylineMaintainer;
use mpq_ta::{FunctionSet, ReverseTopOne};

use crate::matching::{Matching, Pair, RunMetrics};
use crate::sb::{best_functions, finalize_loop_pairs, fold_promotion, insert_ranked, BestPairMode};

const OBEST_RANKS: usize = 8;

/// A long-lived matching session over one object inventory.
///
/// ```
/// use mpq_core::online::OnlineSession;
/// use mpq_core::IndexConfig;
/// use mpq_ta::FunctionSet;
/// use mpq_rtree::PointSet;
///
/// let mut inventory = PointSet::new(2);
/// for p in [[0.9_f64, 0.2], [0.2, 0.9], [0.7, 0.7], [0.4, 0.4]] {
///     inventory.push(&p);
/// }
/// let tree = IndexConfig::default().build_tree(&inventory);
/// let mut session = OnlineSession::new(&tree);
///
/// // first customer batch takes the best matches...
/// let b1 = session.submit(&FunctionSet::from_rows(2, &[vec![0.5, 0.5]]));
/// assert_eq!(b1.pairs()[0].oid, 2); // (0.7, 0.7) wins for balanced weights
///
/// // ...the next batch sees only what is left
/// let b2 = session.submit(&FunctionSet::from_rows(2, &[vec![0.5, 0.5]]));
/// assert_ne!(b2.pairs()[0].oid, 2);
/// assert_eq!(session.objects_remaining(), 2);
/// ```
pub struct OnlineSession<'t> {
    tree: &'t RTree,
    maintainer: SkylineMaintainer<'t>,
    assigned: u64,
    batches: u64,
}

impl<'t> OnlineSession<'t> {
    /// Open a session: computes the initial skyline of the inventory.
    pub fn new(tree: &'t RTree) -> OnlineSession<'t> {
        OnlineSession {
            maintainer: SkylineMaintainer::build(tree),
            tree,
            assigned: 0,
            batches: 0,
        }
    }

    /// Objects not yet reserved by any earlier batch.
    pub fn objects_remaining(&self) -> u64 {
        self.tree.len() - self.assigned
    }

    /// Number of batches processed so far.
    pub fn batches_processed(&self) -> u64 {
        self.batches
    }

    /// Current skyline size (diagnostic).
    pub fn skyline_len(&self) -> usize {
        self.maintainer.len()
    }

    /// Match one arriving batch against the remaining inventory.
    /// Returns the batch's stable matching; the assigned objects stay
    /// reserved for subsequent batches.
    pub fn submit(&mut self, functions: &FunctionSet) -> Matching {
        assert_eq!(
            functions.dim(),
            self.tree.dim(),
            "batch dimensionality must match the inventory"
        );
        self.batches += 1;
        let start = Instant::now();
        let io_start = self.tree.io_stats();
        let mut metrics = RunMetrics::default();

        let mut fs = functions.clone();
        let mut rt1 = Some(ReverseTopOne::build(&fs));
        let mut fbest: HashMap<u64, Vec<(u32, f64)>> = HashMap::new();
        let mut obest: HashMap<u32, Vec<(u64, f64)>> = HashMap::new();
        let mut pairs: Vec<Pair> = Vec::new();

        while fs.n_alive() > 0 && !self.maintainer.is_empty() {
            metrics.loops += 1;

            // fbest rank lists (fresh for this batch's functions)
            for e in self.maintainer.iter() {
                let list = fbest.entry(e.oid).or_default();
                while let Some(&(fid, _)) = list.first() {
                    if fs.is_alive(fid) {
                        break;
                    }
                    list.remove(0);
                }
                if list.is_empty() {
                    metrics.reverse_top1_calls += 1;
                    *list = best_functions(&mut rt1, &fs, e.point, BestPairMode::Ta);
                    debug_assert!(!list.is_empty());
                }
            }

            // obest rank lists
            let fbest_fns: HashSet<u32> =
                self.maintainer.iter().map(|e| fbest[&e.oid][0].0).collect();
            for &fid in &fbest_fns {
                let list = obest.entry(fid).or_default();
                while let Some(&(oid, _)) = list.first() {
                    if self.maintainer.contains(oid) {
                        break;
                    }
                    list.remove(0);
                }
                if list.is_empty() {
                    for e in self.maintainer.iter() {
                        let s = fs.score(fid, e.point);
                        insert_ranked(list, OBEST_RANKS, e.oid, s);
                    }
                }
            }

            // mutually-best pairs
            let mut loop_pairs = Vec::new();
            for &fid in &fbest_fns {
                let (oid, score) = obest[&fid][0];
                if fbest[&oid][0].0 == fid {
                    loop_pairs.push(Pair { fid, oid, score });
                }
            }
            let loop_pairs = finalize_loop_pairs(loop_pairs, true);
            assert!(!loop_pairs.is_empty(), "global best pair is mutually best");

            let removed_fids: HashSet<u32> = loop_pairs.iter().map(|p| p.fid).collect();
            let removed_oids: Vec<u64> = loop_pairs.iter().map(|p| p.oid).collect();
            for &fid in &removed_fids {
                fs.remove(fid);
            }
            let removed_oid_set: HashSet<u64> = removed_oids.iter().copied().collect();
            fbest.retain(|oid, _| !removed_oid_set.contains(oid));
            for fid in &removed_fids {
                obest.remove(fid);
            }

            self.assigned += removed_oids.len() as u64;
            let promoted = self.maintainer.remove(&removed_oids);
            for (oid, point) in &promoted {
                for (fid, list) in obest.iter_mut() {
                    let s = fs.score(*fid, point);
                    fold_promotion(list, OBEST_RANKS, *oid, s);
                }
            }
            pairs.extend(loop_pairs);
        }

        metrics.elapsed = start.elapsed();
        metrics.io = self.tree.io_stats().since(io_start);
        metrics.skyline = Some(self.maintainer.stats());
        if let Some(rt1) = &rt1 {
            metrics.ta = Some(rt1.stats());
        }
        Matching::new(pairs, metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::{IndexConfig, Matcher};
    use crate::reference::reference_matching_excluding;
    use crate::SkylineMatcher;
    use mpq_datagen::{Distribution, WorkloadBuilder};

    fn tiny_index() -> IndexConfig {
        IndexConfig {
            page_size: 256,
            buffer_fraction: 0.1,
            min_buffer_pages: 4,
        }
    }

    fn sorted(pairs: &[Pair]) -> Vec<(u32, u64)> {
        let mut v: Vec<(u32, u64)> = pairs.iter().map(|p| (p.fid, p.oid)).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn single_batch_equals_offline_sb() {
        let w = WorkloadBuilder::new()
            .objects(300)
            .functions(40)
            .dim(3)
            .seed(91)
            .build();
        let offline = SkylineMatcher {
            index: tiny_index(),
            ..Default::default()
        }
        .run(&w.objects, &w.functions);

        let tree = tiny_index().build_tree(&w.objects);
        let mut session = OnlineSession::new(&tree);
        let online = session.submit(&w.functions);
        assert_eq!(sorted(online.pairs()), sorted(offline.pairs()));
    }

    #[test]
    fn batches_consume_inventory_sequentially() {
        let w = WorkloadBuilder::new()
            .objects(400)
            .functions(60)
            .dim(2)
            .distribution(Distribution::AntiCorrelated)
            .seed(92)
            .build();
        // split the 60 functions into 3 batches of 20
        let rows: Vec<Vec<f64>> = w
            .functions
            .iter_alive()
            .map(|(_, weights)| weights.to_vec())
            .collect();
        let batches: Vec<FunctionSet> = rows
            .chunks(20)
            .map(|c| FunctionSet::from_rows(2, c))
            .collect();

        let tree = tiny_index().build_tree(&w.objects);
        let mut session = OnlineSession::new(&tree);
        let mut consumed: HashSet<u64> = HashSet::new();
        for batch in &batches {
            let got = session.submit(batch);
            // ground truth: reference matching over the remaining objects
            let expect =
                reference_matching_excluding(&w.objects, batch, &|o| consumed.contains(&o));
            assert_eq!(sorted(got.pairs()), sorted(&expect));
            for p in got.pairs() {
                assert!(consumed.insert(p.oid), "object reserved twice");
            }
        }
        assert_eq!(consumed.len(), 60);
        assert_eq!(session.objects_remaining(), 340);
        assert_eq!(session.batches_processed(), 3);
    }

    #[test]
    fn inventory_exhaustion_across_batches() {
        let w = WorkloadBuilder::new()
            .objects(15)
            .functions(30)
            .dim(2)
            .seed(93)
            .build();
        let rows: Vec<Vec<f64>> = w
            .functions
            .iter_alive()
            .map(|(_, weights)| weights.to_vec())
            .collect();
        let tree = tiny_index().build_tree(&w.objects);
        let mut session = OnlineSession::new(&tree);
        let first = session.submit(&FunctionSet::from_rows(2, &rows[..10]));
        assert_eq!(first.len(), 10);
        let second = session.submit(&FunctionSet::from_rows(2, &rows[10..]));
        assert_eq!(second.len(), 5, "only 5 objects remain for 20 users");
        assert_eq!(session.objects_remaining(), 0);
        let third = session.submit(&FunctionSet::from_rows(2, &rows[..3]));
        assert!(third.is_empty(), "an empty inventory matches nobody");
    }

    #[test]
    fn later_batches_cost_less_io_than_a_fresh_session() {
        let w = WorkloadBuilder::new()
            .objects(5_000)
            .functions(100)
            .dim(3)
            .seed(94)
            .build();
        let rows: Vec<Vec<f64>> = w
            .functions
            .iter_alive()
            .map(|(_, weights)| weights.to_vec())
            .collect();
        let tree = tiny_index().build_tree(&w.objects);
        let mut session = OnlineSession::new(&tree);
        let init_io = tree.io_stats().logical; // initial BBS

        let b1 = session.submit(&FunctionSet::from_rows(3, &rows[..50]));
        let b2 = session.submit(&FunctionSet::from_rows(3, &rows[50..]));
        assert_eq!(b1.len() + b2.len(), 100);
        // each batch's own I/O is small relative to the initial skyline
        // computation: the point of keeping the session alive
        assert!(b1.metrics().io.logical < init_io);
        assert!(b2.metrics().io.logical < init_io);
    }
}
