//! Stable matching for **arbitrary monotone** preference functions.
//!
//! §II of the paper: "*F may contain any monotone function; for ease of
//! presentation, however, we focus on linear functions*". This module
//! implements the general case. The skyline observation holds for any
//! monotone (non-decreasing per attribute) scoring function — the top-1
//! object of every such function is a skyline object — so the SB loop
//! carries over verbatim. What changes is the best-pair module: the
//! sorted coefficient lists of the TA (§IV-A) exist only for linear
//! functions, so the best function for a skyline object is found by a
//! scan of `F`, exactly the fallback the paper's TA replaces.
//!
//! Functions are supplied as implementations of [`MonotoneFunction`];
//! ready-made forms cover the common non-linear preference shapes:
//! weighted L^p norms ([`WeightedPower`]), minimum/fairness scoring
//! ([`MinAttribute`]), and Cobb–Douglas / weighted geometric means
//! ([`CobbDouglas`]).

use std::collections::HashMap;
use std::time::Instant;

use mpq_rtree::PointSet;
use mpq_skyline::SkylineMaintainer;

use crate::matching::{IndexConfig, Matching, Pair, RunMetrics};

/// A preference function that is monotone non-decreasing in every
/// attribute.
///
/// # Contract
/// If `a[i] >= b[i]` for every `i`, then `eval(a) >= eval(b)`. The
/// skyline-based matcher silently relies on this; a non-monotone
/// function yields an arbitrary (non-stable) result.
pub trait MonotoneFunction {
    /// Score of an object (larger is better).
    fn eval(&self, point: &[f64]) -> f64;
}

impl<F: Fn(&[f64]) -> f64> MonotoneFunction for F {
    fn eval(&self, point: &[f64]) -> f64 {
        self(point)
    }
}

/// Weighted power mean score `Σᵢ wᵢ·pᵢ^k` (for `k > 0`); `k = 1` is the
/// paper's linear function, `k > 1` emphasizes strong attributes,
/// `0 < k < 1` rewards balance.
#[derive(Debug, Clone)]
pub struct WeightedPower {
    /// Non-negative attribute weights.
    pub weights: Vec<f64>,
    /// Positive exponent.
    pub k: f64,
}

impl MonotoneFunction for WeightedPower {
    fn eval(&self, point: &[f64]) -> f64 {
        debug_assert_eq!(point.len(), self.weights.len());
        self.weights
            .iter()
            .zip(point.iter())
            .map(|(&w, &p)| w * p.powf(self.k))
            .sum()
    }
}

/// Fairness scoring: the minimum attribute value (maximin preference).
#[derive(Debug, Clone, Copy)]
pub struct MinAttribute;

impl MonotoneFunction for MinAttribute {
    fn eval(&self, point: &[f64]) -> f64 {
        point.iter().cloned().fold(f64::INFINITY, f64::min)
    }
}

/// Cobb–Douglas utility `Πᵢ (pᵢ + ε)^{wᵢ}` with non-negative exponents
/// (a weighted geometric mean; `ε` keeps zero attributes from
/// annihilating the product).
#[derive(Debug, Clone)]
pub struct CobbDouglas {
    /// Non-negative exponents.
    pub exponents: Vec<f64>,
    /// Smoothing added to every attribute (default 1e-3).
    pub epsilon: f64,
}

impl MonotoneFunction for CobbDouglas {
    fn eval(&self, point: &[f64]) -> f64 {
        debug_assert_eq!(point.len(), self.exponents.len());
        self.exponents
            .iter()
            .zip(point.iter())
            .map(|(&e, &p)| (p + self.epsilon).powf(e))
            .product()
    }
}

/// Skyline-based stable matcher for arbitrary monotone functions.
///
/// Same loop as [`crate::SkylineMatcher`] with a scan-based best-pair
/// module (no TA lists exist for non-linear functions). Outputs follow
/// the canonical `(score desc, fid asc, oid asc)` tie-break.
#[derive(Debug, Clone, Default)]
pub struct MonotoneSkylineMatcher {
    /// Object R-tree construction/buffering parameters.
    pub index: IndexConfig,
    /// Report all mutually-best pairs per loop (§IV-C).
    pub multi_pair: bool,
}

impl MonotoneSkylineMatcher {
    /// Compute the stable matching between `objects` and the monotone
    /// `functions` (function ids are the slice indices).
    pub fn run(&self, objects: &PointSet, functions: &[&dyn MonotoneFunction]) -> Matching {
        let tree = self.index.build_tree(objects);
        let start = Instant::now();
        let mut metrics = RunMetrics::default();
        let mut maintainer = SkylineMaintainer::build(&tree);

        let mut alive: Vec<bool> = vec![true; functions.len()];
        let mut n_alive = functions.len();
        let budget = n_alive.min(objects.len());
        let mut pairs: Vec<Pair> = Vec::with_capacity(budget);
        // oid -> (fid, score): valid until the function is assigned
        let mut fbest: HashMap<u64, (u32, f64)> = HashMap::new();

        while n_alive > 0 && !maintainer.is_empty() {
            metrics.loops += 1;

            // best alive function per skyline object (scan; no TA for
            // general monotone functions)
            for e in maintainer.iter() {
                let stale = fbest
                    .get(&e.oid)
                    .is_none_or(|(fid, _)| !alive[*fid as usize]);
                if stale {
                    metrics.reverse_top1_calls += 1;
                    let mut best: Option<(u32, f64)> = None;
                    for (fid, f) in functions.iter().enumerate() {
                        if !alive[fid] {
                            continue;
                        }
                        let s = f.eval(e.point);
                        if best.is_none_or(|(_, bs)| s > bs) {
                            best = Some((fid as u32, s));
                        }
                    }
                    fbest.insert(e.oid, best.expect("n_alive > 0"));
                }
            }

            // best skyline object per candidate function
            let mut obest: HashMap<u32, (u64, f64)> = HashMap::new();
            for e in maintainer.iter() {
                let (fid, _) = fbest[&e.oid];
                if obest.contains_key(&fid) {
                    continue;
                }
                let f = functions[fid as usize];
                let mut best: Option<(u64, f64)> = None;
                for o in maintainer.iter() {
                    let s = f.eval(o.point);
                    let better = match best {
                        None => true,
                        Some((bo, bs)) => s > bs || (s == bs && o.oid < bo),
                    };
                    if better {
                        best = Some((o.oid, s));
                    }
                }
                obest.insert(fid, best.expect("skyline non-empty"));
            }

            // mutually-best pairs (Property 1)
            let mut loop_pairs: Vec<Pair> = Vec::new();
            for (&fid, &(oid, score)) in &obest {
                if fbest[&oid].0 == fid {
                    loop_pairs.push(Pair { fid, oid, score });
                }
            }
            loop_pairs.sort_unstable();
            if !self.multi_pair {
                loop_pairs.truncate(1);
            }
            assert!(!loop_pairs.is_empty(), "global best pair is mutually best");

            let removed_oids: Vec<u64> = loop_pairs.iter().map(|p| p.oid).collect();
            for p in &loop_pairs {
                alive[p.fid as usize] = false;
                n_alive -= 1;
                fbest.remove(&p.oid);
            }
            maintainer.remove(&removed_oids, &tree);
            pairs.extend(loop_pairs);
        }

        metrics.elapsed = start.elapsed();
        metrics.io = tree.io_stats();
        metrics.skyline = Some(maintainer.stats());
        Matching::new(pairs, metrics)
    }
}

/// Exact reference for monotone matching (greedy over all pairs).
pub fn reference_monotone_matching(
    objects: &PointSet,
    functions: &[&dyn MonotoneFunction],
) -> Vec<Pair> {
    let mut all: Vec<Pair> = Vec::with_capacity(objects.len() * functions.len());
    for (fid, f) in functions.iter().enumerate() {
        for (i, p) in objects.iter() {
            all.push(Pair {
                fid: fid as u32,
                oid: i as u64,
                score: f.eval(p),
            });
        }
    }
    all.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then_with(|| a.fid.cmp(&b.fid))
            .then_with(|| a.oid.cmp(&b.oid))
    });
    let budget = functions.len().min(objects.len());
    let mut out = Vec::with_capacity(budget);
    let mut f_taken = vec![false; functions.len()];
    let mut o_taken = vec![false; objects.len()];
    for p in all {
        if out.len() == budget {
            break;
        }
        if f_taken[p.fid as usize] || o_taken[p.oid as usize] {
            continue;
        }
        f_taken[p.fid as usize] = true;
        o_taken[p.oid as usize] = true;
        out.push(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpq_datagen::WorkloadBuilder;

    fn tiny_index() -> IndexConfig {
        IndexConfig {
            page_size: 256,
            buffer_fraction: 0.1,
            min_buffer_pages: 4,
        }
    }

    fn matcher() -> MonotoneSkylineMatcher {
        MonotoneSkylineMatcher {
            index: tiny_index(),
            multi_pair: true,
        }
    }

    fn sorted(pairs: &[Pair]) -> Vec<(u32, u64)> {
        let mut v: Vec<(u32, u64)> = pairs.iter().map(|p| (p.fid, p.oid)).collect();
        v.sort_unstable();
        v
    }

    fn objects(n: usize, dim: usize, seed: u64) -> PointSet {
        WorkloadBuilder::new()
            .objects(n)
            .functions(1)
            .dim(dim)
            .seed(seed)
            .build()
            .objects
    }

    #[test]
    fn mixed_monotone_functions_match_reference() {
        let ps = objects(300, 3, 41);
        let f1 = WeightedPower {
            weights: vec![0.5, 0.3, 0.2],
            k: 2.0,
        };
        let f2 = WeightedPower {
            weights: vec![0.2, 0.2, 0.6],
            k: 0.5,
        };
        let f3 = MinAttribute;
        let f4 = CobbDouglas {
            exponents: vec![0.5, 0.25, 0.25],
            epsilon: 1e-3,
        };
        let f5 = |p: &[f64]| 0.9 * p[0] + 0.1 * p[2].sqrt();
        let fns: Vec<&dyn MonotoneFunction> = vec![&f1, &f2, &f3, &f4, &f5];

        let got = matcher().run(&ps, &fns);
        let expect = reference_monotone_matching(&ps, &fns);
        assert_eq!(sorted(got.pairs()), sorted(&expect));
        assert_eq!(got.len(), 5);
    }

    #[test]
    fn linear_special_case_agrees_with_linear_matcher() {
        use crate::matching::Matcher;
        use mpq_ta::FunctionSet;
        let ps = objects(200, 2, 43);
        let rows = [vec![0.7, 0.3], vec![0.4, 0.6], vec![0.55, 0.45]];
        let fs = FunctionSet::from_rows(2, rows.as_ref());
        let engine = crate::Engine::builder()
            .index(tiny_index())
            .objects(&ps)
            .build()
            .unwrap();
        let linear = crate::SkylineMatcher {
            index: tiny_index(),
            ..Default::default()
        }
        .run_on(&engine, &fs)
        .unwrap();

        // the same functions as monotone closures, using the normalized
        // weights so scores are bitwise identical
        let w0 = fs.weights(0).to_vec();
        let w1 = fs.weights(1).to_vec();
        let w2 = fs.weights(2).to_vec();
        let c0 = move |p: &[f64]| w0[0] * p[0] + w0[1] * p[1];
        let c1 = move |p: &[f64]| w1[0] * p[0] + w1[1] * p[1];
        let c2 = move |p: &[f64]| w2[0] * p[0] + w2[1] * p[1];
        let fns: Vec<&dyn MonotoneFunction> = vec![&c0, &c1, &c2];
        let general = matcher().run(&ps, &fns);
        assert_eq!(sorted(general.pairs()), sorted(linear.pairs()).clone());
    }

    #[test]
    fn min_attribute_prefers_balanced_objects() {
        let mut ps = PointSet::new(2);
        ps.push(&[0.95, 0.1]); // extreme
        ps.push(&[0.6, 0.55]); // balanced
        ps.push(&[0.1, 0.95]); // extreme
        let f = MinAttribute;
        let fns: Vec<&dyn MonotoneFunction> = vec![&f];
        let got = matcher().run(&ps, &fns);
        assert_eq!(got.pairs()[0].oid, 1, "maximin picks the balanced object");
    }

    #[test]
    fn more_monotone_functions_than_objects() {
        let ps = objects(4, 2, 47);
        let f1 = MinAttribute;
        let f2 = WeightedPower {
            weights: vec![1.0, 0.0],
            k: 1.0,
        };
        let f3 = WeightedPower {
            weights: vec![0.0, 1.0],
            k: 1.0,
        };
        let f4 = CobbDouglas {
            exponents: vec![1.0, 1.0],
            epsilon: 1e-3,
        };
        let f5 = MinAttribute;
        let f6 = MinAttribute;
        let fns: Vec<&dyn MonotoneFunction> = vec![&f1, &f2, &f3, &f4, &f5, &f6];
        let got = matcher().run(&ps, &fns);
        assert_eq!(got.len(), 4, "objects are the scarce side");
        let expect = reference_monotone_matching(&ps, &fns);
        assert_eq!(sorted(got.pairs()), sorted(&expect));
    }

    #[test]
    fn single_pair_mode_is_greedy_sequence() {
        let ps = objects(150, 3, 53);
        let f1 = WeightedPower {
            weights: vec![0.4, 0.4, 0.2],
            k: 3.0,
        };
        let f2 = MinAttribute;
        let fns: Vec<&dyn MonotoneFunction> = vec![&f1, &f2];
        let got = MonotoneSkylineMatcher {
            index: tiny_index(),
            multi_pair: false,
        }
        .run(&ps, &fns);
        let expect = reference_monotone_matching(&ps, &fns);
        assert_eq!(got.pairs(), &expect[..]);
    }
}
