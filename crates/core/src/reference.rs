//! Exact reference matcher: sort all `|F|·|O|` pairs by the canonical
//! order and sweep greedily. Quadratic space — test-sized inputs only.

use mpq_rtree::PointSet;
use mpq_ta::FunctionSet;

use crate::matching::Pair;

/// The unique stable matching under the canonical tie-broken order,
/// computed exactly. Pairs are returned in assignment (descending) order.
///
/// Complexity: `O(|F|·|O| log(|F|·|O|))` time and `O(|F|·|O|)` space —
/// this is ground truth for tests, not a competitor algorithm.
pub fn reference_matching(objects: &PointSet, functions: &FunctionSet) -> Vec<Pair> {
    reference_matching_excluding(objects, functions, &|_| false)
}

/// [`reference_matching`] over the objects for which `excluded(oid)` is
/// `false` (ground truth for online/batched sessions where earlier
/// batches consumed part of the inventory).
pub fn reference_matching_excluding(
    objects: &PointSet,
    functions: &FunctionSet,
    excluded: &dyn Fn(u64) -> bool,
) -> Vec<Pair> {
    let mut all: Vec<Pair> = Vec::with_capacity(objects.len() * functions.n_alive());
    let mut n_objects = 0usize;
    for (i, _) in objects.iter() {
        if !excluded(i as u64) {
            n_objects += 1;
        }
    }
    for (fid, _) in functions.iter_alive() {
        for (i, p) in objects.iter() {
            if excluded(i as u64) {
                continue;
            }
            all.push(Pair {
                fid,
                oid: i as u64,
                score: functions.score(fid, p),
            });
        }
    }
    all.sort_unstable();

    let budget = functions.n_alive().min(n_objects);
    let mut out = Vec::with_capacity(budget);
    let mut f_taken = vec![false; functions.len()];
    let mut o_taken = vec![false; objects.len()];
    for p in all {
        if out.len() == budget {
            break;
        }
        if f_taken[p.fid as usize] || o_taken[p.oid as usize] {
            continue;
        }
        f_taken[p.fid as usize] = true;
        o_taken[p.oid as usize] = true;
        out.push(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn objects(pts: &[[f64; 2]]) -> PointSet {
        let mut ps = PointSet::new(2);
        for p in pts {
            ps.push(p);
        }
        ps
    }

    #[test]
    fn single_function_gets_its_top_object() {
        let ps = objects(&[[0.1, 0.1], [0.9, 0.9], [0.5, 0.5]]);
        let fs = FunctionSet::from_rows(2, &[vec![0.5, 0.5]]);
        let m = reference_matching(&ps, &fs);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].oid, 1);
    }

    #[test]
    fn competing_functions_get_first_and_second_best() {
        let ps = objects(&[[0.9, 0.9], [0.8, 0.8], [0.1, 0.1]]);
        // both want object 0; fid 0 wins the tie-free higher score...
        let fs = FunctionSet::from_rows(2, &[vec![0.6, 0.4], vec![0.5, 0.5]]);
        let m = reference_matching(&ps, &fs);
        assert_eq!(m.len(), 2);
        // f0(o0) = 0.9, f1(o0) = 0.9 (tie) -> f0 takes o0, f1 takes o1
        assert_eq!((m[0].fid, m[0].oid), (0, 0));
        assert_eq!((m[1].fid, m[1].oid), (1, 1));
    }

    #[test]
    fn matching_size_is_min_of_sides() {
        let ps = objects(&[[0.5, 0.5], [0.4, 0.4]]);
        let fs = FunctionSet::from_rows(
            2,
            &[
                vec![0.5, 0.5],
                vec![0.3, 0.7],
                vec![0.9, 0.1],
                vec![0.2, 0.8],
            ],
        );
        let m = reference_matching(&ps, &fs);
        assert_eq!(m.len(), 2, "only two objects exist");
        // objects each appear once
        assert_ne!(m[0].oid, m[1].oid);
    }

    #[test]
    fn scores_are_non_increasing() {
        let ps = objects(&[[0.9, 0.1], [0.1, 0.9], [0.6, 0.6], [0.3, 0.2]]);
        let fs = FunctionSet::from_rows(
            2,
            &[
                vec![0.8, 0.2],
                vec![0.2, 0.8],
                vec![0.5, 0.5],
                vec![0.4, 0.6],
            ],
        );
        let m = reference_matching(&ps, &fs);
        assert!(m.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn removed_functions_are_ignored() {
        let ps = objects(&[[0.9, 0.9]]);
        let mut fs = FunctionSet::from_rows(2, &[vec![0.5, 0.5], vec![0.6, 0.4]]);
        fs.remove(0);
        let m = reference_matching(&ps, &fs);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].fid, 1);
    }

    #[test]
    fn empty_inputs_give_empty_matching() {
        let ps = PointSet::new(2);
        let fs = FunctionSet::from_rows(2, &[vec![0.5, 0.5]]);
        assert!(reference_matching(&ps, &fs).is_empty());
        let ps2 = objects(&[[0.5, 0.5]]);
        let fs2 = FunctionSet::new(2);
        assert!(reference_matching(&ps2, &fs2).is_empty());
    }
}
