//! The Chain matcher — adaptation of Wong et al., "On Efficient Spatial
//! Matching" (VLDB 2007), as described in §V of the paper.
//!
//! The functions are indexed by a **main-memory R-tree built on their
//! weight vectors**; the nearest-neighbor module of the spatial chain
//! algorithm is replaced by top-1 ranked search in the corresponding
//! tree (for a function, the best object; for an object, the best
//! function — both are linear maximizations, because
//! `f(o) = Σ αᵢ·oᵢ` is linear in `α` for fixed `o` too).
//!
//! A *chain* grows from an arbitrary unassigned function: each element's
//! best partner is stacked until two consecutive elements are each
//! other's best — a mutually-best, hence stable, pair. The pair is
//! emitted, both elements are removed, and the chain resumes from the
//! element below.
//!
//! The object index is the engine's **shared** tree, so assigned objects
//! are masked from the ranked searches rather than physically deleted
//! (the paper's standalone variant deleted them). The function tree is
//! request-local and still shrinks by deletion, keeping its searches
//! cheap as the batch drains.
//!
//! Chain performs even more top-1 searches than Brute Force (every chain
//! step is a search, and the function R-tree is ineffective because
//! normalized weights are inherently anti-correlated), which is why the
//! paper shows it losing on both I/O and CPU.

use std::collections::HashSet;
use std::time::Instant;

use mpq_rtree::{LinearScorerRef, NodeSource, PointSet, RTree, RTreeParams, RankedIter};
use mpq_ta::FunctionSet;

use crate::brute_force::masked_top1;
use crate::engine::{Algorithm, Engine};
use crate::error::MpqError;
use crate::matching::{IndexConfig, Matcher, Matching, Pair, RunMetrics};
use crate::scratch::Scratch;

/// A chain element: a function or an object (with its point, needed for
/// searching the function tree).
#[derive(Debug, Clone)]
enum Elem {
    F(u32),
    O(u64, Box<[f64]>),
}

/// Chain stable matcher (adapted competitor of §V).
#[derive(Debug, Clone, Default)]
pub struct ChainMatcher {
    /// Object R-tree construction/buffering parameters.
    pub index: IndexConfig,
}

impl Matcher for ChainMatcher {
    fn name(&self) -> &'static str {
        "Chain"
    }

    fn index_config(&self) -> &IndexConfig {
        &self.index
    }

    fn run_on(&self, engine: &Engine, functions: &FunctionSet) -> Result<Matching, MpqError> {
        engine
            .request(functions)
            .algorithm(Algorithm::Chain)
            .evaluate()
    }
}

/// Chain matching over any node source. Objects in `excluded` are
/// invisible (masked from every object-side search). Both sides' top-1
/// search storms reuse the scratch's frontier storage; the working
/// function set and assigned-object set come from the scratch too.
pub(crate) fn run_chain_on<R: NodeSource>(
    index: &IndexConfig,
    src: &R,
    functions: &FunctionSet,
    excluded: &HashSet<u64>,
    scratch: &mut Scratch,
) -> Matching {
    scratch.fs.copy_from(functions);
    scratch.seed_assigned(excluded);
    let fs = &mut scratch.fs;
    let search = &mut scratch.search;
    let mut metrics = RunMetrics::default();
    let start = Instant::now();
    let io_start = src.io_snapshot();

    // The function R-tree lives in main memory: same page structure,
    // but the buffer holds the whole tree, so it contributes CPU and
    // `fun_io` counters, not paper-metric I/O.
    let mut fun_points = PointSet::new(fs.dim());
    let mut fid_of_row: Vec<u32> = Vec::with_capacity(fs.n_alive());
    for (fid, w) in fs.iter_alive() {
        fun_points.push(w);
        fid_of_row.push(fid);
    }
    let fun_tree = RTree::bulk_load(
        &fun_points,
        RTreeParams {
            page_size: index.page_size,
            min_fill_ratio: 0.4,
            buffer_capacity: 64,
        },
    );
    fun_tree.set_buffer_capacity(fun_tree.page_count() + 16);

    let available = (src.len() as usize).saturating_sub(excluded.len());
    let budget = fs.n_alive().min(available);
    let mut pairs: Vec<Pair> = Vec::with_capacity(budget);
    let assigned = &mut scratch.assigned;
    let mut stack: Vec<Elem> = Vec::new();

    'outer: for start_row in 0..fid_of_row.len() {
        let start_fid = fid_of_row[start_row];
        if !fs.is_alive(start_fid) {
            continue;
        }
        debug_assert!(stack.is_empty());
        stack.push(Elem::F(start_fid));

        while let Some(top) = stack.last().cloned() {
            metrics.loops += 1;
            match top {
                Elem::F(fid) => {
                    let hit = masked_top1(src, fs.weights(fid), assigned, search, &mut metrics);
                    let Some(hit) = hit else {
                        // objects exhausted: remaining functions stay
                        // unmatched
                        break 'outer;
                    };
                    let mutual = matches!(
                        stack.len().checked_sub(2).map(|i| &stack[i]),
                        Some(Elem::O(oid, _)) if *oid == hit.oid
                    );
                    if mutual {
                        pairs.push(Pair {
                            fid,
                            oid: hit.oid,
                            score: hit.score,
                        });
                        stack.pop(); // the function
                        stack.pop(); // its partner object
                        fs.remove(fid);
                        let row = fid_of_row.iter().position(|&f| f == fid).unwrap();
                        fun_tree.delete(fun_points.get(row), fid as u64);
                        assigned.insert(hit.oid);
                    } else {
                        stack.push(Elem::O(hit.oid, hit.point));
                    }
                }
                Elem::O(oid, ref opoint) => {
                    metrics.fun_top1_searches += 1;
                    let hit = {
                        let mut it = RankedIter::over_reusing(
                            &fun_tree,
                            LinearScorerRef::new(opoint),
                            std::mem::take(search),
                        );
                        let hit = it.next();
                        *search = it.recycle();
                        hit
                    };
                    let Some(hit) = hit else {
                        // no functions left: abandon the chain
                        stack.clear();
                        break;
                    };
                    let best_fid = hit.oid as u32;
                    let mutual = matches!(
                        stack.len().checked_sub(2).map(|i| &stack[i]),
                        Some(Elem::F(f)) if *f == best_fid
                    );
                    if mutual {
                        pairs.push(Pair {
                            fid: best_fid,
                            oid,
                            score: hit.score,
                        });
                        stack.pop(); // the object
                        stack.pop(); // its partner function
                        fs.remove(best_fid);
                        fun_tree.delete(&hit.point, best_fid as u64);
                        assigned.insert(oid);
                    } else {
                        stack.push(Elem::F(best_fid));
                    }
                }
            }
        }
    }

    metrics.elapsed = start.elapsed();
    metrics.io = src.io_snapshot().since(io_start);
    metrics.fun_io = fun_tree.io_stats();
    Matching::new(pairs, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_matching;
    use crate::verify::verify_stable;
    use mpq_datagen::{Distribution, WorkloadBuilder};

    fn tiny_index() -> IndexConfig {
        IndexConfig {
            page_size: 256,
            buffer_fraction: 0.1,
            min_buffer_pages: 4,
        }
    }

    fn run(objects: &PointSet, functions: &FunctionSet) -> Matching {
        let engine = Engine::builder()
            .index(tiny_index())
            .objects(objects)
            .build()
            .unwrap();
        ChainMatcher {
            index: tiny_index(),
        }
        .run_on(&engine, functions)
        .unwrap()
    }

    fn sorted(pairs: &[Pair]) -> Vec<(u32, u64)> {
        let mut v: Vec<(u32, u64)> = pairs.iter().map(|p| (p.fid, p.oid)).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn matches_reference_pair_set() {
        let w = WorkloadBuilder::new()
            .objects(250)
            .functions(40)
            .dim(3)
            .seed(17)
            .build();
        let m = run(&w.objects, &w.functions);
        let expect = reference_matching(&w.objects, &w.functions);
        // Chain emits pairs in chain order, not score order: compare sets
        assert_eq!(sorted(m.pairs()), sorted(&expect));
        verify_stable(&w.objects, &w.functions, m.pairs()).unwrap();
    }

    #[test]
    fn anticorrelated_workload_is_stable_too() {
        let w = WorkloadBuilder::new()
            .objects(200)
            .functions(60)
            .dim(4)
            .distribution(Distribution::AntiCorrelated)
            .seed(23)
            .build();
        let m = run(&w.objects, &w.functions);
        verify_stable(&w.objects, &w.functions, m.pairs()).unwrap();
        assert_eq!(
            sorted(m.pairs()),
            sorted(&reference_matching(&w.objects, &w.functions))
        );
    }

    #[test]
    fn more_functions_than_objects() {
        let w = WorkloadBuilder::new()
            .objects(15)
            .functions(40)
            .dim(2)
            .seed(31)
            .build();
        let m = run(&w.objects, &w.functions);
        assert_eq!(m.len(), 15);
        verify_stable(&w.objects, &w.functions, m.pairs()).unwrap();
    }

    #[test]
    fn chain_uses_both_trees_and_never_writes_the_shared_one() {
        let w = WorkloadBuilder::new()
            .objects(300)
            .functions(50)
            .dim(2)
            .seed(37)
            .build();
        let m = run(&w.objects, &w.functions);
        let met = m.metrics();
        assert!(met.top1_searches >= 50);
        assert!(met.fun_top1_searches >= 50);
        assert!(met.io.physical_reads > 0);
        assert_eq!(
            met.io.physical_writes, 0,
            "the shared object index is read-only; assignment masks, not deletes"
        );
        // the function tree is fully buffered: reads happen only on the
        // cold first touch of each page
        assert!(met.fun_io.logical > 0);
    }

    #[test]
    fn tie_heavy_grid_matches_reference() {
        // integer grid coordinates create many exact score ties
        let mut ps = PointSet::new(2);
        for x in 0..6 {
            for y in 0..6 {
                ps.push(&[x as f64 / 5.0, y as f64 / 5.0]);
            }
        }
        let fs = FunctionSet::from_rows(
            2,
            &[
                vec![0.5, 0.5],
                vec![0.5, 0.5],
                vec![0.25, 0.75],
                vec![0.75, 0.25],
                vec![0.4, 0.6],
            ],
        );
        let m = run(&ps, &fs);
        assert_eq!(sorted(m.pairs()), sorted(&reference_matching(&ps, &fs)));
        verify_stable(&ps, &fs, m.pairs()).unwrap();
    }
}
