//! Stability verification (Property 1 of the paper).
//!
//! A matching is the greedy stable assignment iff it is maximal
//! (`min(|F|, |O|)` pairs) and admits no *blocking pair*: an unmatched
//! combination `(f, o)` that both sides strictly prefer — under the
//! canonical tie-broken preference order — to their assigned partners.
//! With preferences derived from one global pair order, the stable
//! matching is unique, so this check certifies a matcher's output
//! without re-running a reference algorithm.

use std::collections::HashMap;

use mpq_rtree::PointSet;
use mpq_ta::FunctionSet;

use crate::matching::Pair;

/// Verify that `pairs` is the stable matching of `(objects, functions)`.
///
/// Checks, in order:
/// 1. every pair references an alive function and an existing object,
///    each at most once (1-1 property);
/// 2. stored scores equal the recomputed `f(o)` bit-for-bit;
/// 3. the matching is maximal: `min(|F|, |O|)` pairs;
/// 4. no blocking pair exists.
///
/// Returns a human-readable description of the first violation.
pub fn verify_stable(
    objects: &PointSet,
    functions: &FunctionSet,
    pairs: &[Pair],
) -> Result<(), String> {
    let mut f_match: HashMap<u32, &Pair> = HashMap::with_capacity(pairs.len());
    let mut o_match: HashMap<u64, &Pair> = HashMap::with_capacity(pairs.len());

    for p in pairs {
        if !functions.is_alive(p.fid) {
            return Err(format!("pair uses unknown/removed function {}", p.fid));
        }
        if p.oid as usize >= objects.len() {
            return Err(format!("pair uses unknown object {}", p.oid));
        }
        if f_match.insert(p.fid, p).is_some() {
            return Err(format!("function {} assigned twice", p.fid));
        }
        if o_match.insert(p.oid, p).is_some() {
            return Err(format!("object {} assigned twice", p.oid));
        }
        let expect = functions.score(p.fid, objects.get(p.oid as usize));
        if expect.to_bits() != p.score.to_bits() {
            return Err(format!(
                "pair ({}, {}) stores score {} but f(o) = {}",
                p.fid, p.oid, p.score, expect
            ));
        }
    }

    let budget = functions.n_alive().min(objects.len());
    if pairs.len() != budget {
        return Err(format!(
            "matching has {} pairs but min(|F|, |O|) = {budget}",
            pairs.len()
        ));
    }

    // Blocking-pair scan. `f` strictly prefers `o` to its partner iff the
    // candidate pair beats the assigned pair in the canonical order;
    // an unmatched side prefers anything.
    for (fid, _) in functions.iter_alive() {
        for (i, point) in objects.iter() {
            let oid = i as u64;
            let cand = Pair {
                fid,
                oid,
                score: functions.score(fid, point),
            };
            let f_prefers = match f_match.get(&fid) {
                None => true,
                Some(assigned) => cand.beats(assigned),
            };
            if !f_prefers {
                continue;
            }
            let o_prefers = match o_match.get(&oid) {
                None => true,
                Some(assigned) => cand.beats(assigned),
            };
            if o_prefers {
                return Err(format!(
                    "blocking pair: function {fid} and object {oid} (score {}) both \
                     prefer each other to their assignments",
                    cand.score
                ));
            }
        }
    }
    Ok(())
}

/// Verify *weak* (score-only) stability: no unmatched combination
/// `(f, o)` strictly improves the score of **both** sides.
///
/// This is the right notion for degenerate inputs with duplicate points
/// or zero weights, where the skyline-based matcher may pick a different
/// — but score-identical — member of a duplicate group than the global
/// id-order tie-break would (see the duplicate-semantics note in
/// `mpq_skyline::maintain`). [`verify_stable`] additionally enforces the
/// canonical id tie-breaks and should be used whenever all weights are
/// strictly positive and no exact score ties are expected.
pub fn verify_weakly_stable(
    objects: &PointSet,
    functions: &FunctionSet,
    pairs: &[Pair],
) -> Result<(), String> {
    let mut f_score: HashMap<u32, f64> = HashMap::with_capacity(pairs.len());
    let mut o_score: HashMap<u64, f64> = HashMap::with_capacity(pairs.len());
    for p in pairs {
        if f_score.insert(p.fid, p.score).is_some() {
            return Err(format!("function {} assigned twice", p.fid));
        }
        if o_score.insert(p.oid, p.score).is_some() {
            return Err(format!("object {} assigned twice", p.oid));
        }
    }
    let budget = functions.n_alive().min(objects.len());
    if pairs.len() != budget {
        return Err(format!(
            "matching has {} pairs but min(|F|, |O|) = {budget}",
            pairs.len()
        ));
    }
    for (fid, _) in functions.iter_alive() {
        for (i, point) in objects.iter() {
            let oid = i as u64;
            let s = functions.score(fid, point);
            let f_better = f_score.get(&fid).is_none_or(|&a| s > a);
            let o_better = o_score.get(&oid).is_none_or(|&a| s > a);
            if f_better && o_better {
                return Err(format!(
                    "weak blocking pair: function {fid} and object {oid} (score {s})"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_matching;

    fn objects(pts: &[[f64; 2]]) -> PointSet {
        let mut ps = PointSet::new(2);
        for p in pts {
            ps.push(p);
        }
        ps
    }

    fn funcs(rows: &[[f64; 2]]) -> FunctionSet {
        FunctionSet::from_rows(2, &rows.iter().map(|r| r.to_vec()).collect::<Vec<_>>())
    }

    #[test]
    fn reference_matching_verifies() {
        let ps = objects(&[[0.9, 0.1], [0.1, 0.9], [0.6, 0.6], [0.2, 0.2]]);
        let fs = funcs(&[[0.8, 0.2], [0.2, 0.8], [0.5, 0.5]]);
        let m = reference_matching(&ps, &fs);
        verify_stable(&ps, &fs, &m).expect("reference must be stable");
    }

    #[test]
    fn swapped_partners_are_blocking() {
        let ps = objects(&[[0.9, 0.9], [0.5, 0.5]]);
        let fs = funcs(&[[0.6, 0.4], [0.4, 0.6]]);
        let good = reference_matching(&ps, &fs);
        // swap the object assignments
        let bad = vec![
            Pair {
                fid: good[0].fid,
                oid: good[1].oid,
                score: fs.score(good[0].fid, ps.get(good[1].oid as usize)),
            },
            Pair {
                fid: good[1].fid,
                oid: good[0].oid,
                score: fs.score(good[1].fid, ps.get(good[0].oid as usize)),
            },
        ];
        let err = verify_stable(&ps, &fs, &bad).unwrap_err();
        assert!(err.contains("blocking pair"), "got: {err}");
    }

    #[test]
    fn incomplete_matching_is_rejected() {
        let ps = objects(&[[0.9, 0.9], [0.5, 0.5]]);
        let fs = funcs(&[[0.6, 0.4], [0.4, 0.6]]);
        let m = reference_matching(&ps, &fs);
        let err = verify_stable(&ps, &fs, &m[..1]).unwrap_err();
        assert!(err.contains("pairs but min"), "got: {err}");
    }

    #[test]
    fn duplicate_assignment_is_rejected() {
        let ps = objects(&[[0.9, 0.9], [0.5, 0.5]]);
        let fs = funcs(&[[0.6, 0.4], [0.4, 0.6]]);
        let m = reference_matching(&ps, &fs);
        let dup = vec![m[0], m[0]];
        let err = verify_stable(&ps, &fs, &dup).unwrap_err();
        assert!(err.contains("assigned twice"), "got: {err}");
    }

    #[test]
    fn wrong_score_is_rejected() {
        let ps = objects(&[[0.9, 0.9]]);
        let fs = funcs(&[[0.5, 0.5]]);
        let bad = vec![Pair {
            fid: 0,
            oid: 0,
            score: 0.123,
        }];
        let err = verify_stable(&ps, &fs, &bad).unwrap_err();
        assert!(err.contains("stores score"), "got: {err}");
    }

    #[test]
    fn weak_verifier_accepts_duplicate_substitution() {
        // two duplicate objects; assigning either is weakly stable, but
        // only the smaller id passes the canonical verifier
        let ps = objects(&[[0.8, 0.8], [0.8, 0.8]]);
        let fs = funcs(&[[0.5, 0.5]]);
        let canonical = vec![Pair {
            fid: 0,
            oid: 0,
            score: fs.score(0, ps.get(0)),
        }];
        let substituted = vec![Pair {
            fid: 0,
            oid: 1,
            score: fs.score(0, ps.get(1)),
        }];
        verify_stable(&ps, &fs, &canonical).unwrap();
        verify_weakly_stable(&ps, &fs, &canonical).unwrap();
        assert!(verify_stable(&ps, &fs, &substituted).is_err());
        verify_weakly_stable(&ps, &fs, &substituted).unwrap();
    }

    #[test]
    fn weak_verifier_rejects_score_blocking() {
        let ps = objects(&[[0.9, 0.9], [0.2, 0.2]]);
        let fs = funcs(&[[0.5, 0.5]]);
        let bad = vec![Pair {
            fid: 0,
            oid: 1,
            score: fs.score(0, ps.get(1)),
        }];
        let err = verify_weakly_stable(&ps, &fs, &bad).unwrap_err();
        assert!(err.contains("weak blocking"), "got: {err}");
    }

    #[test]
    fn tie_heavy_reference_still_verifies() {
        // all scores identical: stability must hold via id tie-breaks
        let ps = objects(&[[0.5, 0.5], [0.5, 0.5], [0.5, 0.5]]);
        let fs = funcs(&[[0.5, 0.5], [0.5, 0.5]]);
        let m = reference_matching(&ps, &fs);
        verify_stable(&ps, &fs, &m).expect("tie-broken matching must be stable");
        // and the canonical assignment is (f0,o0), (f1,o1)
        assert_eq!((m[0].fid, m[0].oid), (0, 0));
        assert_eq!((m[1].fid, m[1].oid), (1, 1));
    }
}
