//! Capacity extension: objects that can serve more than one user.
//!
//! The paper's model assigns each object to at most one function. Real
//! booking inventories often have *types* — a hotel lists one "deluxe
//! double" object with 7 identical rooms. This module generalizes the
//! stable assignment to per-object capacities (the hospitals/residents
//! variant with symmetric score preferences): the greedy process picks
//! the globally best `(f, o)` pair among unassigned functions and
//! objects with remaining capacity, and an object leaves the skyline
//! bookkeeping only when its capacity is exhausted.
//!
//! With every capacity equal to 1 this reduces exactly to the 1-1
//! matching (asserted by tests).

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::time::Instant;

use mpq_rtree::{NodeSource, PointSet};
use mpq_skyline::SkylineMaintainer;
use mpq_ta::{FunctionSet, ReverseTopOne};

use crate::engine::Engine;
use crate::matching::{IndexConfig, Matching, Pair, RunMetrics};

/// Result of a capacitated run: assignment pairs in emission order and
/// the per-object resident lists.
#[derive(Debug, Clone, Default)]
pub struct CapacityMatching {
    /// Pairs in assignment (descending canonical) order.
    pub pairs: Vec<Pair>,
    /// For each object id, the functions assigned to it.
    pub residents: HashMap<u64, Vec<u32>>,
    /// Cost metrics.
    pub metrics: RunMetrics,
}

/// Stable many-to-one matcher with per-object capacities.
#[derive(Debug, Clone, Default)]
pub struct CapacityMatcher {
    /// Object R-tree construction/buffering parameters.
    pub index: IndexConfig,
}

impl CapacityMatcher {
    /// Run the capacitated assignment. `capacities[i]` is the capacity
    /// of object `i`; it must cover every object.
    ///
    /// Builds a single-use engine; to amortize the index over many
    /// requests, prefer `engine.request(functions).capacities(caps)`.
    ///
    /// # Panics
    /// Panics if `capacities.len() != objects.len()` or the inputs are
    /// otherwise invalid (the engine path reports [`crate::MpqError`]
    /// values instead).
    pub fn run(
        &self,
        objects: &PointSet,
        functions: &FunctionSet,
        capacities: &[u32],
    ) -> CapacityMatching {
        assert_eq!(
            capacities.len(),
            objects.len(),
            "one capacity per object required"
        );
        let engine = Engine::builder()
            .index(self.index.clone())
            .objects(objects)
            .build()
            .unwrap_or_else(|e| panic!("invalid capacity-matcher input: {e}"));
        let matching = engine
            .request(functions)
            .capacities(capacities)
            .evaluate()
            .unwrap_or_else(|e| panic!("invalid capacity-matcher input: {e}"));
        CapacityMatching::from_matching(matching)
    }
}

impl CapacityMatching {
    /// Reconstruct the per-object resident lists from a pair list in
    /// assignment order (as produced by the engine's capacity path).
    pub fn from_matching(matching: Matching) -> CapacityMatching {
        let metrics = *matching.metrics();
        let pairs = matching.pairs().to_vec();
        let mut residents: HashMap<u64, Vec<u32>> = HashMap::new();
        for p in &pairs {
            residents.entry(p.oid).or_default().push(p.fid);
        }
        CapacityMatching {
            pairs,
            residents,
            metrics,
        }
    }
}

/// Capacitated matching over any node source. Objects in `excluded` are
/// treated as having zero capacity.
pub(crate) fn run_capacity_on<R: NodeSource>(
    src: &R,
    functions: &FunctionSet,
    capacities: &[u32],
    excluded: &HashSet<u64>,
) -> Matching {
    let start = Instant::now();
    let io_start = src.io_snapshot();
    let mut fs = functions.clone();
    let mut rt1 = ReverseTopOne::build(&fs);
    let mut maintainer = SkylineMaintainer::build(src);
    let mut metrics = RunMetrics::default();

    let mut remaining: Vec<u32> = capacities.to_vec();
    for &oid in excluded {
        if let Some(slot) = remaining.get_mut(oid as usize) {
            *slot = 0;
        }
    }
    // objects with zero initial capacity are unavailable from the start
    let zero_cap: Vec<u64> = maintainer
        .iter()
        .filter(|e| remaining[e.oid as usize] == 0)
        .map(|e| e.oid)
        .collect();
    // removing them may promote other zero-capacity objects; iterate
    let mut to_remove = zero_cap;
    while !to_remove.is_empty() {
        let promoted = maintainer.remove(&to_remove, src);
        to_remove = promoted
            .iter()
            .filter(|(oid, _)| remaining[*oid as usize] == 0)
            .map(|(oid, _)| *oid)
            .collect();
    }

    let mut fbest: HashMap<u64, (u32, f64)> = HashMap::new();
    let mut pairs: Vec<Pair> = Vec::new();

    while fs.n_alive() > 0 && !maintainer.is_empty() {
        metrics.loops += 1;
        // refresh cached best functions
        for e in maintainer.iter() {
            if let Entry::Vacant(slot) = fbest.entry(e.oid) {
                metrics.reverse_top1_calls += 1;
                let best = rt1.best_for(&fs, e.point).expect("functions remain");
                slot.insert(best);
            }
        }
        // globally best pair in canonical order
        let mut best: Option<Pair> = None;
        for e in maintainer.iter() {
            let (fid, score) = fbest[&e.oid];
            let cand = Pair {
                fid,
                oid: e.oid,
                score,
            };
            if best.is_none() || cand.beats(best.as_ref().unwrap()) {
                best = Some(cand);
            }
        }
        let pair = best.expect("skyline non-empty");

        fs.remove(pair.fid);
        pairs.push(pair);
        remaining[pair.oid as usize] -= 1;

        if remaining[pair.oid as usize] == 0 {
            fbest.remove(&pair.oid);
            let mut to_remove = vec![pair.oid];
            while !to_remove.is_empty() {
                let promoted = maintainer.remove(&to_remove, src);
                to_remove = promoted
                    .iter()
                    .filter(|(oid, _)| remaining[*oid as usize] == 0)
                    .map(|(oid, _)| *oid)
                    .collect();
            }
        }
        // entries whose best function was just assigned are stale
        fbest.retain(|_, (fid, _)| *fid != pair.fid);
    }

    metrics.elapsed = start.elapsed();
    metrics.io = src.io_snapshot().since(io_start);
    metrics.skyline = Some(maintainer.stats());
    metrics.ta = Some(rt1.stats());
    Matching::new(pairs, metrics)
}

/// Exact reference for the capacitated matching: greedy over all pairs.
pub fn reference_capacity_matching(
    objects: &PointSet,
    functions: &FunctionSet,
    capacities: &[u32],
) -> Vec<Pair> {
    assert_eq!(capacities.len(), objects.len());
    let mut all: Vec<Pair> = Vec::new();
    for (fid, _) in functions.iter_alive() {
        for (i, p) in objects.iter() {
            all.push(Pair {
                fid,
                oid: i as u64,
                score: functions.score(fid, p),
            });
        }
    }
    all.sort_unstable();
    let mut remaining = capacities.to_vec();
    let mut f_taken = vec![false; functions.len()];
    let mut out = Vec::new();
    for p in all {
        if f_taken[p.fid as usize] || remaining[p.oid as usize] == 0 {
            continue;
        }
        f_taken[p.fid as usize] = true;
        remaining[p.oid as usize] -= 1;
        out.push(p);
    }
    out
}

/// Verify capacitated stability: no function strictly prefers an object
/// that either has spare capacity or hosts a strictly worse resident.
pub fn verify_capacity_stable(
    objects: &PointSet,
    functions: &FunctionSet,
    capacities: &[u32],
    pairs: &[Pair],
) -> Result<(), String> {
    let mut f_match: HashMap<u32, &Pair> = HashMap::new();
    let mut residents: HashMap<u64, Vec<&Pair>> = HashMap::new();
    for p in pairs {
        if f_match.insert(p.fid, p).is_some() {
            return Err(format!("function {} assigned twice", p.fid));
        }
        residents.entry(p.oid).or_default().push(p);
    }
    for (&oid, rs) in &residents {
        if rs.len() > capacities[oid as usize] as usize {
            return Err(format!("object {oid} exceeds its capacity"));
        }
    }
    for (fid, _) in functions.iter_alive() {
        for (i, point) in objects.iter() {
            let oid = i as u64;
            let cand = Pair {
                fid,
                oid,
                score: functions.score(fid, point),
            };
            let f_prefers = match f_match.get(&fid) {
                None => true,
                Some(assigned) => cand.beats(assigned),
            };
            if !f_prefers {
                continue;
            }
            let o_accepts = match residents.get(&oid) {
                None => capacities[oid as usize] > 0,
                Some(rs) => {
                    rs.len() < capacities[oid as usize] as usize || rs.iter().any(|r| cand.beats(r))
                }
            };
            if o_accepts {
                return Err(format!(
                    "blocking pair: function {fid} and object {oid} (score {})",
                    cand.score
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_matching;
    use mpq_datagen::WorkloadBuilder;

    fn tiny_index() -> IndexConfig {
        IndexConfig {
            page_size: 256,
            buffer_fraction: 0.1,
            min_buffer_pages: 4,
        }
    }

    fn sorted(pairs: &[Pair]) -> Vec<(u32, u64)> {
        let mut v: Vec<(u32, u64)> = pairs.iter().map(|p| (p.fid, p.oid)).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn unit_capacities_reduce_to_one_to_one() {
        let w = WorkloadBuilder::new()
            .objects(150)
            .functions(30)
            .dim(3)
            .seed(81)
            .build();
        let caps = vec![1u32; w.objects.len()];
        let m = CapacityMatcher {
            index: tiny_index(),
        }
        .run(&w.objects, &w.functions, &caps);
        let expect = reference_matching(&w.objects, &w.functions);
        assert_eq!(m.pairs, expect, "capacity-1 must equal the 1-1 matching");
    }

    #[test]
    fn matches_capacity_reference_and_is_stable() {
        let w = WorkloadBuilder::new()
            .objects(60)
            .functions(40)
            .dim(2)
            .seed(83)
            .build();
        let caps: Vec<u32> = (0..w.objects.len()).map(|i| (i % 3) as u32).collect();
        let m = CapacityMatcher {
            index: tiny_index(),
        }
        .run(&w.objects, &w.functions, &caps);
        let expect = reference_capacity_matching(&w.objects, &w.functions, &caps);
        assert_eq!(sorted(&m.pairs), sorted(&expect));
        verify_capacity_stable(&w.objects, &w.functions, &caps, &m.pairs).unwrap();
    }

    #[test]
    fn popular_object_fills_to_capacity() {
        let mut ps = PointSet::new(2);
        ps.push(&[0.95, 0.95]); // everyone's favourite
        ps.push(&[0.3, 0.3]);
        let fs = FunctionSet::from_rows(2, &[vec![0.5, 0.5], vec![0.6, 0.4], vec![0.4, 0.6]]);
        let m = CapacityMatcher {
            index: tiny_index(),
        }
        .run(&ps, &fs, &[2, 5]);
        assert_eq!(m.residents[&0].len(), 2, "object 0 fills its 2 slots");
        assert_eq!(m.residents[&1].len(), 1, "last user overflows to object 1");
    }

    #[test]
    fn zero_capacity_objects_are_never_assigned() {
        let w = WorkloadBuilder::new()
            .objects(40)
            .functions(10)
            .dim(2)
            .seed(87)
            .build();
        let mut caps = vec![1u32; 40];
        for c in caps.iter_mut().take(20) {
            *c = 0;
        }
        let m = CapacityMatcher {
            index: tiny_index(),
        }
        .run(&w.objects, &w.functions, &caps);
        assert!(m.pairs.iter().all(|p| p.oid >= 20));
        verify_capacity_stable(&w.objects, &w.functions, &caps, &m.pairs).unwrap();
    }

    #[test]
    fn capacity_exhaustion_limits_assignments() {
        let w = WorkloadBuilder::new()
            .objects(5)
            .functions(30)
            .dim(2)
            .seed(89)
            .build();
        let caps = vec![2u32; 5]; // 10 slots for 30 users
        let m = CapacityMatcher {
            index: tiny_index(),
        }
        .run(&w.objects, &w.functions, &caps);
        assert_eq!(m.pairs.len(), 10);
        verify_capacity_stable(&w.objects, &w.functions, &caps, &m.pairs).unwrap();
    }
}
