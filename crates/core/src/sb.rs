//! The Skyline-Based (SB) stable matcher — the paper's contribution
//! (§III-B, implemented with the optimizations of §IV).
//!
//! Key facts exploited:
//!
//! 1. The top-1 object of every monotone preference function lies in the
//!    **skyline** of the remaining objects, so the best-pair search only
//!    has to look at skyline objects (§III-B).
//! 2. The skyline can be maintained **incrementally** under removals via
//!    pruned-entry lists, instead of recomputed per loop (§IV-B,
//!    [`mpq_skyline::SkylineMaintainer`]).
//! 3. The best function for a skyline object is found by a **reverse
//!    top-1 TA scan with tight thresholds** instead of scanning `F`
//!    (§IV-A, [`mpq_ta::ReverseTopOne`]).
//! 4. *All* mutually-best pairs of a loop can be reported at once,
//!    reducing the number of maintenance rounds (§IV-C).
//!
//! Beyond the paper's text, this implementation memoizes across loops
//! with *rank-list caches*:
//!
//! * per skyline object, the certified top-`M` functions from one TA
//!   scan ([`mpq_ta::ReverseTopOne::top_m_for`]). Functions are only
//!   ever removed from `F`, so after dropping dead prefix entries the
//!   first alive entry is the current reverse top-1 — one scan survives
//!   up to `M` invalidations;
//! * per function, the top-`K` skyline objects. Skyline objects are
//!   removed (assigned) or promoted; removals delete prefix ranks (the
//!   surviving head remains the true maximum), and promotions are folded
//!   in by insertion, so a full skyline rescan is needed only when all
//!   `K` entries die.
//!
//! Neither cache changes the output (asserted by tests); they only
//! remove redundant reverse-top-1 calls and skyline scans.
//!
//! [`SbStream`] exposes the algorithm *progressively*: stable pairs are
//! yielded as soon as they are identified, which is the paper's
//! motivating deployment (a booking site confirming reservations while
//! the rest of the batch is still being matched).

use std::collections::{HashMap, HashSet, VecDeque};
use std::time::Instant;

use mpq_rtree::{IoStats, NodeSource, RTree};
use mpq_skyline::bbs::compute_skyline_excluding_with;
use mpq_skyline::SkylineMaintainer;
use mpq_ta::{FunctionSet, ReverseTopOne, ThresholdMode};

use crate::engine::{Algorithm, Engine};
use crate::error::MpqError;
use crate::matching::{IndexConfig, Matcher, Matching, Pair, RunMetrics};
use crate::scratch::Scratch;
use crate::seed::{PeeledLog, SeedPart};

/// Certified reverse-top-`M` cached per skyline object. Deeper lists
/// amortize one TA scan over more function removals; the marginal scan
/// depth is small because the threshold, not the rank count, dominates
/// termination (measured sweet spot on the paper's workloads: 8).
const FBEST_RANKS: usize = 8;
/// Top-`K` skyline objects cached per function.
const OBEST_RANKS: usize = 8;

/// How the best function for a skyline object is located (ablation A3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BestPairMode {
    /// Reverse top-1 TA scan over sorted coefficient lists (§IV-A).
    #[default]
    Ta,
    /// TA with the classic (loose) threshold instead of the tight one.
    TaNaiveThreshold,
    /// Linear scan of all alive functions (the brute-force inner loop
    /// the paper's TA replaces).
    Scan,
}

/// How the skyline is kept current across loops (ablation A2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MaintenanceMode {
    /// Incremental maintenance with plists (§IV-B).
    #[default]
    Incremental,
    /// Recompute BBS from scratch every loop — the strawman the paper
    /// calls "unacceptably expensive".
    Rescan,
}

/// The paper's SB algorithm with configurable ablations.
#[derive(Debug, Clone)]
pub struct SkylineMatcher {
    /// Object R-tree construction/buffering parameters.
    pub index: IndexConfig,
    /// Report all mutually-best pairs per loop (§IV-C) instead of one.
    pub multi_pair: bool,
    /// Best-function search strategy.
    pub best_pair: BestPairMode,
    /// Skyline currency strategy.
    pub maintenance: MaintenanceMode,
}

impl Default for SkylineMatcher {
    fn default() -> Self {
        SkylineMatcher {
            index: IndexConfig::default(),
            multi_pair: true,
            best_pair: BestPairMode::Ta,
            maintenance: MaintenanceMode::Incremental,
        }
    }
}

impl Matcher for SkylineMatcher {
    fn name(&self) -> &'static str {
        match self.maintenance {
            MaintenanceMode::Incremental => "SB",
            MaintenanceMode::Rescan => "SB-rescan",
        }
    }

    fn index_config(&self) -> &IndexConfig {
        &self.index
    }

    fn run_on(&self, engine: &Engine, functions: &FunctionSet) -> Result<Matching, MpqError> {
        engine
            .request(functions)
            .algorithm(Algorithm::Sb)
            .best_pair(self.best_pair)
            .maintenance(self.maintenance)
            .multi_pair(self.multi_pair)
            .evaluate()
    }
}

impl SkylineMatcher {
    /// Progressive evaluation over a caller-provided tree: pairs are
    /// yielded as soon as they are identified. Prefer
    /// [`Engine::stream`](crate::Engine::stream), which reads a shared
    /// engine index through a run-scoped I/O session.
    ///
    /// # Panics
    /// Panics if configured with [`MaintenanceMode::Rescan`] (streaming
    /// is only meaningful for the incremental algorithm) or if the tree
    /// and function dimensionalities disagree.
    pub fn stream<'a>(
        &self,
        tree: &'a RTree,
        functions: &FunctionSet,
    ) -> SbStream<'static, &'a RTree> {
        stream_on(
            self,
            tree,
            functions,
            &HashSet::new(),
            ScratchLease::fresh(),
        )
    }
}

/// How an [`SbStream`] holds its per-run working state: a private
/// freshly-allocated [`Scratch`], or a lease on a caller-owned one
/// ([`crate::MatchRequest::stream_with`]) whose warm buffers make the
/// stream's rounds as allocation-light as
/// [`crate::MatchRequest::evaluate_with`]. The lease never changes
/// which pairs are yielded — only how often the allocator is hit.
#[derive(Debug)]
pub(crate) enum ScratchLease<'s> {
    /// Stream-private state, allocated at construction.
    Owned(Box<Scratch>),
    /// Caller-owned state, borrowed for the stream's lifetime.
    Leased(&'s mut Scratch),
}

impl ScratchLease<'static> {
    /// A stream-private scratch (the non-leased path).
    pub(crate) fn fresh() -> ScratchLease<'static> {
        ScratchLease::Owned(Box::default())
    }
}

impl ScratchLease<'_> {
    fn get_mut(&mut self) -> &mut Scratch {
        match self {
            ScratchLease::Owned(s) => s,
            ScratchLease::Leased(s) => s,
        }
    }

    fn get(&self) -> &Scratch {
        match self {
            ScratchLease::Owned(s) => s,
            ScratchLease::Leased(s) => s,
        }
    }
}

/// Round-local buffers of the SB matching loop, reused across rounds
/// (and, through [`Scratch`], across runs) so a round allocates nothing.
///
/// Every field is cleared before use; the buffers carry capacity, never
/// state, between rounds.
#[derive(Debug, Default)]
pub(crate) struct RoundBufs {
    /// This round's mutually-best pairs — the round's *output*, read by
    /// the caller after [`sb_loop_round`] returns.
    pub(crate) pairs: Vec<Pair>,
    /// Functions that are some skyline object's current best.
    fbest_fns: HashSet<u32>,
    /// Functions assigned this round.
    removed_fids: HashSet<u32>,
    /// Objects assigned this round (in pair order).
    removed_oids: Vec<u64>,
    /// Same objects as a set, for the cache retain pass.
    removed_oid_set: HashSet<u64>,
    /// Masked promotions peeled during skyline maintenance.
    masked: Vec<u64>,
    /// Per-loop best function per skyline object (SB-rescan only).
    rescan_best: HashMap<u64, (u32, f64)>,
}

/// Remove every masked (`excluded`) object from the maintained skyline.
/// Peeling can promote further masked objects — their dominator just
/// left — so iterate until the skyline is clean. `buf` is scratch
/// storage for the per-wave removal list. When `peeled` is provided,
/// every removed object is logged with its point — the seed-capture
/// journal that lets a later request re-admit it without a tree read.
fn peel_masked<R: NodeSource>(
    maintainer: &mut SkylineMaintainer,
    src: &R,
    excluded: &HashSet<u64>,
    buf: &mut Vec<u64>,
    mut peeled: Option<&mut PeeledLog>,
) {
    if excluded.is_empty() {
        return;
    }
    buf.clear();
    buf.extend(
        maintainer
            .iter()
            .filter(|e| excluded.contains(&e.oid))
            .map(|e| e.oid),
    );
    if let Some(log) = peeled.as_deref_mut() {
        for &oid in buf.iter() {
            let point = maintainer.get(oid).expect("member being peeled");
            log.push((oid, point.into()));
        }
    }
    while !buf.is_empty() {
        let promoted = maintainer.remove(buf, src);
        buf.clear();
        for (oid, point) in promoted {
            if excluded.contains(&oid) {
                buf.push(oid);
                if let Some(log) = peeled.as_deref_mut() {
                    log.push((oid, point));
                }
            }
        }
    }
}

/// Prime a maintainer for a run: cold (BBS over the whole tree) or
/// resumed from a [`SeedPart`] — clone the snapshot, re-admit the
/// objects the seed had peeled that this request no longer excludes,
/// then peel this request's own exclusions. Either way the returned
/// maintainer holds exactly the skyline of the non-excluded inventory,
/// so the matching loop downstream cannot tell the histories apart.
/// When `peeled` is provided (seed capture), it receives the exact
/// removed-object journal for the returned state.
fn prime_maintainer<R: NodeSource>(
    src: &R,
    excluded: &HashSet<u64>,
    seed: Option<&SeedPart>,
    buf: &mut Vec<u64>,
    mut peeled: Option<&mut PeeledLog>,
) -> SkylineMaintainer {
    let mut maintainer = match seed {
        None => SkylineMaintainer::build(src),
        Some(part) => {
            let mut m = part.sky.clone();
            for (oid, point) in &part.peeled {
                if excluded.contains(oid) {
                    // Still excluded: stays peeled, carries over into
                    // the capture journal.
                    if let Some(log) = peeled.as_deref_mut() {
                        log.push((*oid, point.clone()));
                    }
                } else {
                    m.insert(*oid, point.clone());
                }
            }
            m
        }
    };
    peel_masked(&mut maintainer, src, excluded, buf, peeled);
    maintainer
}

/// Build a progressive SB stream over any node source (a bare tree or a
/// run-scoped I/O session, which the source *owns*). Objects in
/// `excluded` are invisible: removed from the initial skyline along with
/// every excluded promotion they uncover. The stream's whole per-run
/// state lives in `lease` — a fresh private scratch, or a caller-owned
/// one whose warm buffers are reused instead of reallocated.
///
/// # Panics
/// Panics if `cfg` uses [`MaintenanceMode::Rescan`] or dimensionalities
/// disagree (the engine request path validates these up front).
pub(crate) fn stream_on<'s, R: NodeSource>(
    cfg: &SkylineMatcher,
    src: R,
    functions: &FunctionSet,
    excluded: &HashSet<u64>,
    mut lease: ScratchLease<'s>,
) -> SbStream<'s, R> {
    assert_eq!(
        cfg.maintenance,
        MaintenanceMode::Incremental,
        "streaming requires incremental maintenance"
    );
    assert_eq!(
        src.dim(),
        functions.dim(),
        "tree and functions must share dimensionality"
    );
    let io_start = src.io_snapshot();
    let scratch = lease.get_mut();
    scratch.fs.copy_from(functions);
    scratch.seed_assigned(excluded);
    scratch.fbest.clear();
    scratch.obest.clear();
    let rt1 = match cfg.best_pair {
        BestPairMode::Scan => None,
        _ => Some(ReverseTopOne::build(&scratch.fs)),
    };
    let maintainer = prime_maintainer(
        &src,
        &scratch.assigned,
        None,
        &mut scratch.round.masked,
        None,
    );
    SbStream {
        src,
        rt1,
        maintainer,
        best_pair: cfg.best_pair,
        multi_pair: cfg.multi_pair,
        scratch: lease,
        pending: VecDeque::new(),
        metrics: RunMetrics::default(),
        io_start,
        done: false,
    }
}

/// Non-streaming SB evaluation over any node source, serving its entire
/// per-run state — working function set, rank-list caches, round
/// buffers — from a reusable [`Scratch`]. This is the engine's
/// [`evaluate`](crate::MatchRequest::evaluate) path: after the first
/// request on a warm scratch, a run makes no per-round allocations and
/// no per-run `FunctionSet`/exclusion-set clones (the request's
/// `excluded` set is borrowed for the whole run instead of copied).
///
/// Produces exactly the pairs the progressive [`SbStream`] would, in the
/// same order (asserted by tests).
///
/// Seed-capable: `seed`
/// resumes from a prior request's post-peel skyline snapshot instead of
/// running BBS from scratch, and a `capture` slot receives this run's
/// own snapshot (taken after priming, before the matching loop consumes
/// the skyline) so refinement chains keep seeding. Pass `None, None`
/// for a plain cold run. Both paths run the identical round body over
/// content-identical skylines, so seeded matchings are
/// score-bit-identical to cold ones (pinned by `tests/seed_identity.rs`).
pub(crate) fn run_sb_seeded<R: NodeSource>(
    cfg: &SkylineMatcher,
    src: &R,
    functions: &FunctionSet,
    excluded: &HashSet<u64>,
    scratch: &mut Scratch,
    seed: Option<&SeedPart>,
    capture: Option<&mut Option<SeedPart>>,
) -> Matching {
    assert_eq!(
        cfg.maintenance,
        MaintenanceMode::Incremental,
        "run_sb_seeded implements the incremental algorithm"
    );
    let start = Instant::now();
    let io_start = src.io_snapshot();
    let mut metrics = RunMetrics::default();
    scratch.fs.copy_from(functions);
    let mut rt1 = match cfg.best_pair {
        BestPairMode::Scan => None,
        _ => Some(ReverseTopOne::build(&scratch.fs)),
    };
    let mut peeled_log = PeeledLog::new();
    let capturing = capture.is_some();
    let mut maintainer = prime_maintainer(
        src,
        excluded,
        seed,
        &mut scratch.round.masked,
        capturing.then_some(&mut peeled_log),
    );
    if let Some(slot) = capture {
        *slot = Some(SeedPart {
            sky: maintainer.clone(),
            peeled: peeled_log,
        });
    }
    scratch.fbest.clear();
    scratch.obest.clear();

    let budget = scratch.fs.n_alive().min(src.len() as usize);
    let mut pairs: Vec<Pair> = Vec::with_capacity(budget);
    while scratch.fs.n_alive() > 0 && !maintainer.is_empty() {
        sb_loop_round(
            src,
            &mut maintainer,
            &mut scratch.fs,
            &mut rt1,
            &mut scratch.fbest,
            &mut scratch.obest,
            &mut scratch.round,
            excluded,
            cfg.best_pair,
            cfg.multi_pair,
            &mut metrics,
        );
        pairs.extend_from_slice(&scratch.round.pairs);
    }

    metrics.elapsed = start.elapsed();
    metrics.io = src.io_snapshot().since(io_start);
    metrics.skyline = Some(maintainer.stats());
    if let Some(rt1) = &rt1 {
        metrics.ta = Some(rt1.stats());
    }
    Matching::new(pairs, metrics)
}

/// The §IV-B strawman: full BBS recomputation per loop, no rank-list
/// caches — but still scratch-served, so the per-loop BBS heap, skyline
/// buffer, and pair buffers are reused instead of reallocated. Objects
/// in `excluded` are invisible throughout.
pub(crate) fn run_rescan_on<R: NodeSource>(
    cfg: &SkylineMatcher,
    src: &R,
    functions: &FunctionSet,
    excluded: &HashSet<u64>,
    scratch: &mut Scratch,
) -> Matching {
    let start = Instant::now();
    let io_start = src.io_snapshot();
    scratch.fs.copy_from(functions);
    scratch.seed_assigned(excluded);
    let fs = &mut scratch.fs;
    let assigned = &mut scratch.assigned;
    let bufs = &mut scratch.round;
    let mut rt1 = match cfg.best_pair {
        BestPairMode::Scan => None,
        _ => Some(ReverseTopOne::build(fs)),
    };
    let mut metrics = RunMetrics::default();
    let mut pairs: Vec<Pair> = Vec::new();

    while fs.n_alive() > 0 {
        compute_skyline_excluding_with(
            src,
            |o| assigned.contains(&o),
            &mut scratch.bbs,
            &mut scratch.sky,
        );
        let sky = &scratch.sky;
        if sky.is_empty() {
            break;
        }
        metrics.loops += 1;

        // best function per skyline object
        bufs.rescan_best.clear();
        for (oid, point) in sky {
            metrics.reverse_top1_calls += 1;
            let best =
                best_function(&mut rt1, fs, point, cfg.best_pair).expect("functions remain alive");
            bufs.rescan_best.insert(*oid, best);
        }
        mutual_pairs(
            sky,
            &bufs.rescan_best,
            fs,
            cfg.multi_pair,
            &mut bufs.fbest_fns,
            &mut bufs.pairs,
        );
        debug_assert!(!bufs.pairs.is_empty(), "each loop must emit a pair");
        for p in &bufs.pairs {
            fs.remove(p.fid);
            assigned.insert(p.oid);
        }
        pairs.extend_from_slice(&bufs.pairs);
    }

    metrics.elapsed = start.elapsed();
    metrics.io = src.io_snapshot().since(io_start);
    if let Some(rt1) = &rt1 {
        metrics.ta = Some(rt1.stats());
    }
    Matching::new(pairs, metrics)
}

/// Best alive function for `point` under the configured mode.
fn best_function(
    rt1: &mut Option<ReverseTopOne>,
    fs: &FunctionSet,
    point: &[f64],
    mode: BestPairMode,
) -> Option<(u32, f64)> {
    match mode {
        BestPairMode::Ta => rt1.as_mut().expect("TA mode has an index").best_for_with(
            fs,
            point,
            ThresholdMode::Tight,
        ),
        BestPairMode::TaNaiveThreshold => rt1
            .as_mut()
            .expect("TA mode has an index")
            .best_for_with(fs, point, ThresholdMode::Naive),
        BestPairMode::Scan => fs.scan_best(point),
    }
}

/// Certified top-`M` alive functions for `point` (rank-list cache fill).
/// Scan mode certifies only the top-1, so its lists hold one entry.
pub(crate) fn best_functions(
    rt1: &mut Option<ReverseTopOne>,
    fs: &FunctionSet,
    point: &[f64],
    mode: BestPairMode,
) -> Vec<(u32, f64)> {
    match mode {
        BestPairMode::Ta => rt1.as_mut().expect("TA mode has an index").top_m_for(
            fs,
            point,
            FBEST_RANKS,
            ThresholdMode::Tight,
        ),
        BestPairMode::TaNaiveThreshold => rt1.as_mut().expect("TA mode has an index").top_m_for(
            fs,
            point,
            FBEST_RANKS,
            ThresholdMode::Naive,
        ),
        BestPairMode::Scan => fs.scan_best(point).into_iter().collect(),
    }
}

/// Given the current skyline and each skyline object's best function,
/// compute the mutually-best pairs of this loop (Property 1): for every
/// function `f` that is the best of some object, find its best skyline
/// object `f.obest`; report `(f, f.obest)` iff `fbest(f.obest) == f`.
/// With `multi_pair == false`, only the canonical best pair is kept.
/// `fbest_fns` is scratch storage; the pairs are written into `out`
/// (cleared first).
fn mutual_pairs(
    sky: &[(u64, Box<[f64]>)],
    fbest: &HashMap<u64, (u32, f64)>,
    fs: &FunctionSet,
    multi_pair: bool,
    fbest_fns: &mut HashSet<u32>,
    out: &mut Vec<Pair>,
) {
    fbest_fns.clear();
    fbest_fns.extend(fbest.values().map(|&(f, _)| f));
    out.clear();
    for &fid in fbest_fns.iter() {
        // obest by full scan (the rescan path has no caches)
        let mut best: Option<(u64, f64)> = None;
        for (oid, point) in sky {
            let s = fs.score(fid, point);
            let better = match best {
                None => true,
                Some((bo, bs)) => s > bs || (s == bs && *oid < bo),
            };
            if better {
                best = Some((*oid, s));
            }
        }
        let (oid, score) = best.expect("skyline is non-empty");
        if fbest[&oid].0 == fid {
            out.push(Pair { fid, oid, score });
        }
    }
    finalize_loop_pairs(out, multi_pair);
}

/// Sort a loop's pairs canonically in place (the [`Pair`] `Ord`);
/// truncate to the single best pair when multi-pair reporting is
/// disabled.
pub(crate) fn finalize_loop_pairs(pairs: &mut Vec<Pair>, multi_pair: bool) {
    pairs.sort_unstable();
    if !multi_pair {
        pairs.truncate(1);
    }
}

/// Progressive SB evaluation (see [`SkylineMatcher::stream`] and
/// [`crate::MatchRequest::stream`]).
///
/// Implements [`Iterator`]: each item is the next stable pair. Pairs
/// within one internal loop are yielded in canonical order; across loops
/// scores are non-increasing.
///
/// Generic over the node source it *owns*: `&RTree` for the legacy
/// direct path, or an [`mpq_rtree::IoSession`] when streaming from a
/// shared [`Engine`] (per-run I/O attribution).
pub struct SbStream<'s, R: NodeSource> {
    src: R,
    rt1: Option<ReverseTopOne>,
    maintainer: SkylineMaintainer,
    best_pair: BestPairMode,
    multi_pair: bool,
    /// The run's working state — working function-set copy, masked
    /// objects (`assigned`, peeled from the initial skyline and every
    /// mid-run promotion wave), fbest/obest rank-list caches, and the
    /// round-local buffers — either stream-private or leased from a
    /// caller-owned reusable [`Scratch`].
    scratch: ScratchLease<'s>,
    pending: VecDeque<Pair>,
    metrics: RunMetrics,
    io_start: IoStats,
    done: bool,
}

impl<R: NodeSource> SbStream<'_, R> {
    /// Metrics accumulated so far (typically read after exhaustion).
    /// `elapsed` is not populated by the stream — callers time their own
    /// consumption (see [`crate::MatchRequest::evaluate`]).
    pub fn metrics(&self) -> RunMetrics {
        let mut m = self.metrics;
        m.io = self.src.io_snapshot().since(self.io_start);
        m.skyline = Some(self.maintainer.stats());
        if let Some(rt1) = &self.rt1 {
            m.ta = Some(rt1.stats());
        }
        m
    }

    /// Consume the stream, returning the final metrics.
    pub fn into_metrics(self) -> RunMetrics {
        self.metrics()
    }

    /// Number of objects currently on the maintained skyline.
    pub fn skyline_len(&self) -> usize {
        self.maintainer.len()
    }

    /// Number of functions still awaiting assignment.
    pub fn unassigned_functions(&self) -> usize {
        self.scratch.get().fs.n_alive()
    }

    /// One SB loop (Algorithm 1 lines 3–9): refresh caches, find the
    /// mutually-best pairs, apply the removals, and queue the pairs.
    fn loop_once(&mut self) {
        let scratch = self.scratch.get_mut();
        if scratch.fs.n_alive() == 0 || self.maintainer.is_empty() {
            self.done = true;
            return;
        }
        sb_loop_round(
            &self.src,
            &mut self.maintainer,
            &mut scratch.fs,
            &mut self.rt1,
            &mut scratch.fbest,
            &mut scratch.obest,
            &mut scratch.round,
            &scratch.assigned,
            self.best_pair,
            self.multi_pair,
            &mut self.metrics,
        );
        self.pending.extend(scratch.round.pairs.iter().copied());

        #[cfg(debug_assertions)]
        if std::env::var("MPQ_SB_CHECK").is_ok() {
            self.check_obest_invariant();
        }
    }

    /// Debug-only invariant check: every current skyline object scoring
    /// above an obest list's stored minimum must be in that list.
    #[cfg(debug_assertions)]
    fn check_obest_invariant(&self) {
        let scratch = self.scratch.get();
        for (fid, list) in &scratch.obest {
            if list.is_empty() {
                continue;
            }
            let (mo, ms) = *list.last().unwrap();
            for e in self.maintainer.iter() {
                let s = scratch.fs.score(*fid, e.point);
                let better = s > ms || (s == ms && e.oid < mo);
                if better && !list.iter().any(|&(o, _)| o == e.oid) {
                    panic!(
                        "loop {}: J violated for fid={fid}: skyline oid={} score={s} \
                         beats stored min ({mo}, {ms}) but is missing; list={list:?}",
                        self.metrics.loops, e.oid
                    );
                }
            }
        }
    }
}

/// One SB matching round (Algorithm 1 lines 3–9) over shared cache
/// state: refresh the fbest/obest rank lists, report this round's
/// mutually-best pairs (canonically sorted, left in `bufs.pairs` for the
/// caller), and apply the removals — function tombstones, cache drops,
/// and skyline maintenance with masked-promotion peeling. The single
/// implementation behind the progressive [`SbStream`], the scratch-based
/// [`run_sb_seeded`] evaluation, and the engine's persistent
/// [`crate::MatchSession`] batches.
///
/// All round-local collections live in `bufs`, so a round performs no
/// heap allocation once the buffers are warm.
///
/// Preconditions: `fs.n_alive() > 0` and a non-empty skyline.
#[allow(clippy::too_many_arguments)]
pub(crate) fn sb_loop_round<R: NodeSource>(
    src: &R,
    maintainer: &mut SkylineMaintainer,
    fs: &mut FunctionSet,
    rt1: &mut Option<ReverseTopOne>,
    fbest: &mut HashMap<u64, Vec<(u32, f64)>>,
    obest: &mut HashMap<u32, Vec<(u64, f64)>>,
    bufs: &mut RoundBufs,
    excluded: &HashSet<u64>,
    best_pair: BestPairMode,
    multi_pair: bool,
    metrics: &mut RunMetrics,
) {
    metrics.loops += 1;

    // 1. Every skyline object needs a valid best function: drain dead
    // prefix entries from its rank list; if the list empties, re-run
    // the (top-M) reverse search. A surviving head entry is the true
    // reverse top-1 because removals can only have deleted
    // better-ranked functions.
    for e in maintainer.iter() {
        let list = fbest.entry(e.oid).or_default();
        while let Some(&(fid, _)) = list.first() {
            if fs.is_alive(fid) {
                break;
            }
            list.remove(0);
        }
        if list.is_empty() {
            metrics.reverse_top1_calls += 1;
            *list = best_functions(rt1, fs, e.point, best_pair);
            debug_assert!(!list.is_empty(), "fs.n_alive() > 0");
        }
    }

    // 2. For each function that is some object's best, ensure a valid
    // best-object rank list: drain entries that left the skyline; a
    // surviving head is the true maximum (better-ranked objects were
    // all assigned, and promotions were folded in); empty ⇒ full
    // skyline rescan.
    bufs.fbest_fns.clear();
    bufs.fbest_fns
        .extend(maintainer.iter().map(|e| fbest[&e.oid][0].0));
    for &fid in &bufs.fbest_fns {
        let list = obest.entry(fid).or_default();
        while let Some(&(oid, _)) = list.first() {
            if maintainer.contains(oid) {
                break;
            }
            list.remove(0);
        }
        if list.is_empty() {
            for e in maintainer.iter() {
                let s = fs.score(fid, e.point);
                insert_ranked(list, OBEST_RANKS, e.oid, s);
            }
            debug_assert!(!list.is_empty(), "skyline is non-empty");
        }
    }

    // 3. Mutually-best pairs (Property 1).
    bufs.pairs.clear();
    for &fid in &bufs.fbest_fns {
        let (oid, score) = obest[&fid][0];
        if fbest[&oid][0].0 == fid {
            bufs.pairs.push(Pair { fid, oid, score });
        }
    }
    finalize_loop_pairs(&mut bufs.pairs, multi_pair);
    assert!(
        !bufs.pairs.is_empty(),
        "SB invariant violated: the globally best remaining pair is always \
         mutually best, so every loop must emit at least one pair"
    );

    // 4. Apply removals and maintain the caches.
    bufs.removed_fids.clear();
    bufs.removed_fids.extend(bufs.pairs.iter().map(|p| p.fid));
    bufs.removed_oids.clear();
    bufs.removed_oids.extend(bufs.pairs.iter().map(|p| p.oid));
    for &fid in &bufs.removed_fids {
        fs.remove(fid);
    }
    bufs.removed_oid_set.clear();
    bufs.removed_oid_set
        .extend(bufs.removed_oids.iter().copied());

    // Assigned objects never return: drop their fbest lists. Dead
    // functions inside surviving lists are drained lazily in step 1.
    let removed_oid_set = &bufs.removed_oid_set;
    fbest.retain(|oid, _| !removed_oid_set.contains(oid));
    // Assigned functions never return: drop their obest lists. Dead
    // objects inside surviving lists are drained lazily in step 2.
    for fid in &bufs.removed_fids {
        obest.remove(fid);
    }

    // Skyline maintenance (§IV-B): promotions are folded into every
    // cached obest rank list to preserve its "nothing better than the
    // stored minimum is missing" invariant. An assignment can promote a
    // *masked* object (its dominator just left); peel those immediately
    // — each peel wave can surface further masked objects — so they
    // never reach the caches or the skyline.
    let mut promoted = maintainer.remove(&bufs.removed_oids, src);
    while !excluded.is_empty() {
        bufs.masked.clear();
        bufs.masked.extend(
            promoted
                .iter()
                .filter(|(oid, _)| excluded.contains(oid))
                .map(|(oid, _)| *oid),
        );
        if bufs.masked.is_empty() {
            break;
        }
        promoted.retain(|(oid, _)| !excluded.contains(oid));
        promoted.extend(maintainer.remove(&bufs.masked, src));
    }
    for (oid, point) in &promoted {
        for (fid, list) in obest.iter_mut() {
            let s = fs.score(*fid, point);
            fold_promotion(list, OBEST_RANKS, *oid, s);
        }
    }
}

/// Insert `(oid, s)` into a rank list sorted by `(score desc, oid asc)`,
/// keeping at most `k` entries. Used only while *building* a list by a
/// full scan, where lowering the current minimum is correct.
#[inline]
pub(crate) fn insert_ranked(list: &mut Vec<(u64, f64)>, k: usize, oid: u64, s: f64) {
    if list.len() == k {
        let (wo, ws) = list[k - 1];
        if s < ws || (s == ws && oid > wo) {
            return;
        }
    }
    let pos = list
        .iter()
        .position(|&(o, v)| s > v || (s == v && oid < o))
        .unwrap_or(list.len());
    list.insert(pos, (oid, s));
    list.truncate(k);
}

/// Fold a *promotion* into an existing rank list. Unlike
/// [`insert_ranked`], the stored minimum acts as the list's **coverage
/// bound**: objects canonically below it may have been excluded when the
/// list was built, so accepting a new entry below the minimum would
/// silently widen the list's claimed coverage and make a stale head look
/// authoritative (the very bug that truncated matchings on tie-heavy
/// Zillow data). A promotion is therefore inserted only if it beats the
/// stored minimum; the minimum never decreases.
#[inline]
pub(crate) fn fold_promotion(list: &mut Vec<(u64, f64)>, k: usize, oid: u64, s: f64) {
    let Some(&(mo, ms)) = list.last() else {
        return; // empty ⇒ the next access rescans anyway
    };
    if s < ms || (s == ms && oid > mo) {
        return;
    }
    let pos = list
        .iter()
        .position(|&(o, v)| s > v || (s == v && oid < o))
        .unwrap_or(list.len());
    list.insert(pos, (oid, s));
    list.truncate(k);
}

impl<R: NodeSource> Iterator for SbStream<'_, R> {
    type Item = Pair;

    fn next(&mut self) -> Option<Pair> {
        loop {
            if let Some(p) = self.pending.pop_front() {
                return Some(p);
            }
            if self.done {
                return None;
            }
            self.loop_once();
            if self.pending.is_empty() && !self.done {
                // loop_once always emits or finishes; defensive guard
                self.done = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_matching;
    use crate::verify::verify_stable;
    use mpq_datagen::{Distribution, WorkloadBuilder};
    use mpq_rtree::PointSet;

    fn tiny_index() -> IndexConfig {
        IndexConfig {
            page_size: 256,
            buffer_fraction: 0.1,
            min_buffer_pages: 4,
        }
    }

    fn sb() -> SkylineMatcher {
        SkylineMatcher {
            index: tiny_index(),
            ..SkylineMatcher::default()
        }
    }

    /// Evaluate through the engine path (index built once per call here;
    /// the engine tests cover multi-request sharing).
    fn run(m: &SkylineMatcher, objects: &PointSet, functions: &FunctionSet) -> Matching {
        let engine = Engine::builder()
            .index(m.index.clone())
            .objects(objects)
            .build()
            .unwrap();
        m.run_on(&engine, functions).unwrap()
    }

    fn sorted(pairs: &[Pair]) -> Vec<(u32, u64)> {
        let mut v: Vec<(u32, u64)> = pairs.iter().map(|p| (p.fid, p.oid)).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn matches_reference_on_random_workload() {
        for (dist, seed) in [
            (Distribution::Independent, 41),
            (Distribution::AntiCorrelated, 42),
            (Distribution::Correlated, 43),
            (Distribution::Clustered { clusters: 4 }, 44),
        ] {
            let w = WorkloadBuilder::new()
                .objects(300)
                .functions(45)
                .dim(3)
                .distribution(dist)
                .seed(seed)
                .build();
            let m = run(&sb(), &w.objects, &w.functions);
            let expect = reference_matching(&w.objects, &w.functions);
            assert_eq!(sorted(m.pairs()), sorted(&expect), "distribution {dist:?}");
            verify_stable(&w.objects, &w.functions, m.pairs()).unwrap();
        }
    }

    #[test]
    fn single_pair_mode_reproduces_exact_greedy_sequence() {
        let w = WorkloadBuilder::new()
            .objects(200)
            .functions(30)
            .dim(2)
            .seed(51)
            .build();
        let m = run(
            &SkylineMatcher {
                multi_pair: false,
                ..sb()
            },
            &w.objects,
            &w.functions,
        );
        let expect = reference_matching(&w.objects, &w.functions);
        assert_eq!(m.pairs(), &expect[..], "single-pair SB is exactly greedy");
    }

    #[test]
    fn all_ablation_configs_agree() {
        let w = WorkloadBuilder::new()
            .objects(250)
            .functions(35)
            .dim(3)
            .distribution(Distribution::AntiCorrelated)
            .seed(53)
            .build();
        let baseline = run(&sb(), &w.objects, &w.functions);
        for cfg in [
            SkylineMatcher {
                best_pair: BestPairMode::Scan,
                ..sb()
            },
            SkylineMatcher {
                best_pair: BestPairMode::TaNaiveThreshold,
                ..sb()
            },
            SkylineMatcher {
                maintenance: MaintenanceMode::Rescan,
                ..sb()
            },
            SkylineMatcher {
                multi_pair: false,
                ..sb()
            },
        ] {
            let m = run(&cfg, &w.objects, &w.functions);
            assert_eq!(
                sorted(m.pairs()),
                sorted(baseline.pairs()),
                "config {cfg:?} diverged"
            );
        }
    }

    #[test]
    fn streaming_yields_pairs_progressively() {
        let w = WorkloadBuilder::new()
            .objects(300)
            .functions(25)
            .dim(2)
            .seed(57)
            .build();
        let matcher = sb();
        let tree = matcher.index.build_tree(&w.objects);
        let mut stream = matcher.stream(&tree, &w.functions);
        let first = stream.next().expect("at least one pair");
        // the very first pair is the global best
        let expect = reference_matching(&w.objects, &w.functions);
        assert_eq!((first.fid, first.oid), (expect[0].fid, expect[0].oid));
        assert!(stream.unassigned_functions() < 25);
        let rest: Vec<Pair> = stream.collect();
        assert_eq!(rest.len(), 24);
    }

    #[test]
    fn multi_pair_reduces_loop_count() {
        let w = WorkloadBuilder::new()
            .objects(400)
            .functions(60)
            .dim(3)
            .seed(61)
            .build();
        let multi = run(&sb(), &w.objects, &w.functions);
        let single = run(
            &SkylineMatcher {
                multi_pair: false,
                ..sb()
            },
            &w.objects,
            &w.functions,
        );
        assert!(multi.metrics().loops <= single.metrics().loops);
        assert_eq!(single.metrics().loops, 60, "one loop per pair");
    }

    #[test]
    fn sb_does_not_write_to_the_tree() {
        let w = WorkloadBuilder::new()
            .objects(500)
            .functions(40)
            .dim(2)
            .seed(67)
            .build();
        let m = run(&sb(), &w.objects, &w.functions);
        assert_eq!(
            m.metrics().io.physical_writes,
            0,
            "SB never deletes from the R-tree"
        );
    }

    #[test]
    fn more_functions_than_objects_exhausts_objects() {
        let w = WorkloadBuilder::new()
            .objects(12)
            .functions(30)
            .dim(2)
            .seed(71)
            .build();
        let m = run(&sb(), &w.objects, &w.functions);
        assert_eq!(m.len(), 12);
        verify_stable(&w.objects, &w.functions, m.pairs()).unwrap();
    }

    #[test]
    fn duplicate_objects_resolve_canonically() {
        let mut ps = PointSet::new(2);
        for _ in 0..5 {
            ps.push(&[0.8, 0.8]);
        }
        ps.push(&[0.2, 0.9]);
        let fs = FunctionSet::from_rows(2, &[vec![0.5, 0.5], vec![0.6, 0.4], vec![0.4, 0.6]]);
        let m = run(&sb(), &ps, &fs);
        let expect = reference_matching(&ps, &fs);
        assert_eq!(sorted(m.pairs()), sorted(&expect));
        verify_stable(&ps, &fs, m.pairs()).unwrap();
    }

    #[test]
    fn tie_heavy_grid_with_positive_weights_matches_reference() {
        let mut ps = PointSet::new(2);
        for x in 0..5 {
            for y in 0..5 {
                ps.push(&[x as f64 / 4.0, y as f64 / 4.0]);
            }
        }
        let fs = FunctionSet::from_rows(
            2,
            &[
                vec![0.5, 0.5],
                vec![0.5, 0.5],
                vec![0.3, 0.7],
                vec![0.7, 0.3],
            ],
        );
        let m = run(&sb(), &ps, &fs);
        assert_eq!(sorted(m.pairs()), sorted(&reference_matching(&ps, &fs)));
        verify_stable(&ps, &fs, m.pairs()).unwrap();
    }

    #[test]
    fn zillow_tie_heavy_data_regression() {
        // Regression for a coverage bug in the obest rank-list fold:
        // on the skewed, tie-heavy Zillow surrogate the stream used to
        // terminate after a fraction of the pairs. The full matching
        // must come out and equal the reference.
        use mpq_datagen::functions::uniform_weights;
        use mpq_datagen::zillow_preference_space;
        let objects = zillow_preference_space(800, 1234);
        let functions = uniform_weights(120, 5, 99);
        let m = run(&sb(), &objects, &functions);
        assert_eq!(m.len(), 120, "every buyer must be assigned");
        let expect = reference_matching(&objects, &functions);
        assert_eq!(sorted(m.pairs()), sorted(&expect));
        verify_stable(&objects, &functions, m.pairs()).unwrap();
    }

    #[test]
    fn metrics_are_populated() {
        let w = WorkloadBuilder::new()
            .objects(300)
            .functions(30)
            .dim(3)
            .seed(73)
            .build();
        let m = run(&sb(), &w.objects, &w.functions);
        let met = m.metrics();
        assert!(met.loops >= 1);
        assert!(met.reverse_top1_calls >= 30);
        assert!(met.skyline.is_some());
        assert!(met.ta.is_some());
        assert!(met.io.logical > 0);
        assert!(met.elapsed.as_nanos() > 0);
    }
}
