//! Reusable per-run working state for engine evaluations.
//!
//! Every matcher run needs private mutable state: a working copy of the
//! request's [`FunctionSet`] (functions are tombstoned as they are
//! assigned), the set of assigned/masked objects, the SB rank-list
//! caches, and the per-round buffers of the matching loop. Allocating
//! all of that from scratch per request is invisible for one request and
//! dominant for a high-throughput batch: under
//! [`Engine::evaluate_batch`](crate::Engine::evaluate_batch) each worker
//! thread owns one [`Scratch`] and serves its entire request stream from
//! it, so after the first request the per-run state is built by reuse —
//! `clear()` + `copy_from` on warm buffers — instead of fresh heap
//! allocations.
//!
//! A `Scratch` carries **no results**: it never affects what a run
//! computes (asserted by the determinism tests), only how often the
//! allocator is hit. Reuse it across any sequence of requests, engines,
//! and algorithms; it is `Send`, so it can hop worker threads, but it is
//! deliberately not shared (`&mut` everywhere) — one scratch per thread.

use std::collections::{HashMap, HashSet};

use mpq_rtree::SearchBuf;
use mpq_skyline::BbsScratch;
use mpq_ta::FunctionSet;

use crate::sb::RoundBufs;

/// Reusable working state for [`MatchRequest::evaluate_with`]
/// (see the [module docs](self)).
///
/// [`MatchRequest::evaluate_with`]: crate::MatchRequest::evaluate_with
#[derive(Debug)]
pub struct Scratch {
    /// Working copy of the request's functions, refreshed per run with
    /// [`FunctionSet::copy_from`].
    pub(crate) fs: FunctionSet,
    /// Objects invisible to the run: the request's exclusions plus the
    /// assignments made so far (Brute Force, Chain, SB-rescan).
    pub(crate) assigned: HashSet<u64>,
    /// Frontier storage for the short ranked searches of the Brute Force
    /// restart and Chain matchers.
    pub(crate) search: SearchBuf,
    /// BBS traversal heap for SB-rescan's per-loop skyline recomputation.
    pub(crate) bbs: BbsScratch,
    /// Per-loop skyline buffer for SB-rescan.
    pub(crate) sky: Vec<(u64, Box<[f64]>)>,
    /// SB rank-list cache: oid → certified top-`M` alive functions.
    pub(crate) fbest: HashMap<u64, Vec<(u32, f64)>>,
    /// SB rank-list cache: fid → top-`K` current skyline objects.
    pub(crate) obest: HashMap<u32, Vec<(u64, f64)>>,
    /// Round-local buffers of the SB matching loop.
    pub(crate) round: RoundBufs,
}

impl Scratch {
    /// An empty scratch. Buffers grow to the workload's size on first
    /// use and are reused afterwards.
    pub fn new() -> Scratch {
        Scratch {
            // placeholder dimensionality; copy_from adopts the source's
            fs: FunctionSet::new(1),
            assigned: HashSet::new(),
            search: SearchBuf::new(),
            bbs: BbsScratch::default(),
            sky: Vec::new(),
            fbest: HashMap::new(),
            obest: HashMap::new(),
            round: RoundBufs::default(),
        }
    }

    /// Seed the assigned-set with a run's exclusions, reusing the table.
    pub(crate) fn seed_assigned(&mut self, excluded: &HashSet<u64>) {
        self.assigned.clear();
        self.assigned.extend(excluded.iter().copied());
    }
}

impl Default for Scratch {
    fn default() -> Scratch {
        Scratch::new()
    }
}
