//! Evaluation seeds: resumable skyline state for incremental reuse
//! across similar requests (Chomicki-style query *modification*).
//!
//! A cold SB evaluation spends most of its budget computing the initial
//! skyline (BBS over the whole tree) and peeling the request's excluded
//! objects. Two requests whose exclusion sets differ by a handful of
//! objects repeat almost all of that work. An [`EvalSeed`] captures the
//! reusable part — the post-peel [`SkylineMaintainer`] snapshot plus the
//! exact set of objects that were peeled out of it — so a later request
//! at small delta can *resume*: clone the snapshot, re-admit the peeled
//! objects it no longer excludes ([`SkylineMaintainer::insert`]), peel
//! the ones it newly excludes, and run the unchanged matching loop.
//!
//! Because the loop's output is determined entirely by skyline
//! *content* (the rank-list caches are canonical under the total order
//! `(score desc, id asc)` and promotion folding is order-independent),
//! a seeded evaluation produces matchings whose scores are
//! `f64::to_bits`-identical to a cold one. With coordinate-identical
//! duplicate objects the chosen representative — and therefore the
//! reported `oid` of equal-score pairs — may differ, exactly as it
//! already does between maintenance histories (see
//! `mpq_skyline::maintain`); scores never do.
//!
//! Seeds are **pinned to the exact inventory**: the snapshot's pruned
//! entries reference R-tree pages of the version vector it was captured
//! at, so a seed is only usable while the backend's versions are
//! bit-equal to [`EvalSeed::versions`]. The result cache enforces this
//! (a revalidated entry keeps its matching but drops its seed), and the
//! evaluation path re-checks before priming.

use mpq_skyline::SkylineMaintainer;

/// A journal of objects peeled from a skyline snapshot: (oid, point)
/// in peel order, point kept so re-admission needs no tree read.
pub(crate) type PeeledLog = Vec<(u64, Box<[f64]>)>;

/// The per-shard slice of an [`EvalSeed`]: the post-peel skyline
/// snapshot and the objects peeled from it (with their points, so they
/// can be re-admitted without touching the tree).
#[derive(Clone)]
pub(crate) struct SeedPart {
    /// Maintainer state after the seed request's exclusions were peeled.
    pub(crate) sky: SkylineMaintainer,
    /// Exactly the objects removed from `sky` relative to the full
    /// inventory, in peel order.
    pub(crate) peeled: PeeledLog,
}

impl SeedPart {
    /// Approximate heap footprint, for cache byte accounting.
    pub(crate) fn approx_bytes(&self) -> usize {
        let peeled: usize = self
            .peeled
            .iter()
            .map(|(_, p)| std::mem::size_of::<(u64, Box<[f64]>)>() + p.len() * 8)
            .sum();
        self.sky.approx_bytes() + peeled
    }
}

/// A resumable evaluation state captured from one SB evaluation and
/// usable to prime another against the *same* inventory (see the
/// [module docs](self)).
///
/// Opaque by design: obtain one from
/// [`MatchRequest::evaluate_seeded`](crate::MatchRequest::evaluate_seeded)
/// (or its sharded twin), or let the serving layer capture and apply
/// seeds transparently through the result cache's near-miss lookup.
#[derive(Clone)]
pub struct EvalSeed {
    /// Per-shard inventory version vector at capture time (one
    /// component for an unsharded engine). The seed is valid only while
    /// the backend's vector is bit-equal.
    pub(crate) versions: Vec<u64>,
    /// One part per shard, in shard order.
    pub(crate) parts: Vec<SeedPart>,
}

impl std::fmt::Debug for EvalSeed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalSeed")
            .field("versions", &self.versions)
            .field("parts", &self.parts.len())
            .field("approx_bytes", &self.approx_bytes())
            .finish()
    }
}

impl EvalSeed {
    /// The per-shard inventory version vector the seed was captured at.
    pub fn versions(&self) -> &[u64] {
        &self.versions
    }

    /// Number of per-shard parts (1 for an unsharded engine).
    pub fn parts(&self) -> usize {
        self.parts.len()
    }

    /// True iff the seed may prime an evaluation against a backend
    /// currently at `versions` — requires bit-equality, because the
    /// snapshot's pruned entries reference pages of that exact epoch.
    pub fn usable_at(&self, versions: &[u64]) -> bool {
        self.versions == versions
    }

    /// Approximate heap footprint, for cache byte accounting.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<EvalSeed>()
            + self.versions.len() * 8
            + self.parts.iter().map(SeedPart::approx_bytes).sum::<usize>()
    }
}
