//! Minimal JSON value: render and parse, no external dependencies.
//!
//! Born in `mpq_bench` for the machine-readable benchmark artifacts
//! (`BENCH_pr3.json` onward) that CI validates and archives, and moved
//! down here once the network front-end needed the same machinery for
//! its wire codec and `/metrics` endpoint (`mpq_bench::json` re-exports
//! this module, so the harness call sites are unchanged). The build
//! container has no registry access, so instead of `serde_json` this is
//! the smallest JSON subset those consumers need: objects, arrays,
//! strings, finite numbers, booleans and null, with a recursive-descent
//! parser strict enough to reject the malformed documents a broken
//! harness — or a hostile network client — would produce.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number (rendered in shortest round-trip form).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are kept sorted (BTreeMap) so rendering is
    /// deterministic across runs — benchmark artifacts diff cleanly.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object constructor from `(key, value)` pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(entries: I) -> Json {
        Json::Obj(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Member of an object (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements of an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric value.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Render as compact JSON text.
    ///
    /// # Panics
    /// Panics on a non-finite number — the harness must never emit NaN
    /// or infinity into an artifact.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                assert!(n.is_finite(), "JSON numbers must be finite, got {n}");
                // integers render without a trailing ".0"
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(v) => {
                out.push('[');
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    x.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse JSON text. Rejects trailing garbage, unterminated
    /// structures, and non-finite numbers.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                map.insert(key, value);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut arr = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(arr));
            }
            loop {
                arr.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(arr));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // consume one UTF-8 code point
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    let n: f64 = text
        .parse()
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))?;
    if !n.is_finite() {
        return Err(format!("non-finite number '{text}'"));
    }
    Ok(Json::Num(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = Json::obj([
            ("schema", Json::Str("mpq.bench/1".into())),
            ("count", Json::Num(3.0)),
            ("ratio", Json::Num(2.5)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            (
                "series",
                Json::Arr(vec![
                    Json::obj([("t", Json::Num(1.0))]),
                    Json::obj([("t", Json::Num(2.0))]),
                ]),
            ),
        ]);
        let text = doc.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.get("count").unwrap().as_f64(), Some(3.0));
        assert_eq!(back.get("series").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(Json::Num(42.0).render(), "42");
        assert_eq!(Json::Num(2.5).render(), "2.5");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = Json::Str("a\"b\\c\nd".into());
        let text = s.render();
        assert_eq!(Json::parse(&text).unwrap(), s);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,2",
            "{\"a\":1} trailing",
            "nul",
            "{\"a\" 1}",
            "Infinity",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted malformed: {bad:?}");
        }
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let v = Json::parse(" { \"a\" : [ 1 , { \"b\" : false } ] } ").unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].get("b").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn object_keys_render_sorted_for_stable_diffs() {
        let mut m = BTreeMap::new();
        m.insert("z".to_string(), Json::Num(1.0));
        m.insert("a".to_string(), Json::Num(2.0));
        assert_eq!(Json::Obj(m).render(), "{\"a\":2,\"z\":1}");
    }
}
